// Streaming ingestion with drift detection and self-healing incremental
// refit (`acbm ingest`; DESIGN.md "Online adaptation"):
//
//  * SnapshotLog — an append-only, crash-safe log of hourly dataset
//    snapshots (`<dir>/snapshots.log`). Every segment is one durable.h
//    frame (`ACBMF1 ingest_segment v1 len=… crc32c=…`) appended and
//    fsynced in place. Recovery on open truncates a torn tail (a crash
//    mid-append) and quarantines interior corruption (bit rot between
//    intact segments) into `snapshots.log.corrupt-<n>`, then compacts the
//    log to its surviving segments.
//
//  * Snapshot validation policy (per-append, via trace::Dataset's
//    ValidationReport machinery):
//      accepted  — the snapshot parsed clean; stored canonically.
//      repaired  — parseable but Dataset construction repaired it
//                  (non-finite/negative durations zeroed, out-of-order
//                  starts sorted, duplicate ids reassigned); the repaired
//                  canonical form is stored.
//      rejected  — unparseable CSV, a window_start differing from the
//                  log's, or a family list that contradicts the log's
//                  (indices would silently remap). Nothing is appended;
//                  the raw bytes are quarantined under `<dir>/quarantine/`.
//      duplicate — hour at or before the log's last hour; the append is
//                  dropped (idempotent crash-retry), nothing changes.
//
//  * DriftMonitor — per-family corrected-EMA statistics (CEMA: a
//    bias-corrected exponential moving average, `value = biased/correction`
//    so early samples are not dragged toward the zero init) over three
//    channels: launch rate (attacks/hour), volume (attack magnitude), and
//    inter-arrival residual vs the fit-time interval mean. Each channel is
//    z-scored against the FamilyDriftBaseline recorded in the model
//    artifact at fit time; a family trips when any channel exceeds the
//    z-threshold for K consecutive hours. The monitor is a pure replay of
//    the log (no separate mutable state file): trips at or before the last
//    refit hour are already served and do not re-fire.
//
//  * Ingestor — the orchestration: on a trip (or --refit) it computes a
//    content hash of every checkpoint stage's actual inputs
//    (temporal/<family> ← that family's attack rows; spatial and tree ←
//    the whole cumulative dataset), invalidates exactly the stages whose
//    inputs changed via CheckpointDir::invalidate, and reruns the ordinary
//    fit with everything else cached — so the refit output is byte-
//    identical to a cold full fit on the same cumulative data while its
//    cost is proportional to what changed. Bounded retry with exponential
//    backoff; when retries are exhausted the previous model generation
//    keeps serving (never serve nothing) and the caller reports exit
//    code 6. Publication order (stages → prev-generation copy → model
//    rename → inputs.state) makes every crash window converge on retry.
//
// Fault points wired here (see robust.h FaultInjector):
//   ingest.append      key "hour=<h>"       crash before the append writes
//   ingest.torn_tail   key "hour=<h>"       write half the segment, throw
//   drift.false_trip   key "family=<name>"  force that family to trip
//   refit.fail         key "hour=<h>/attempt=<k>"  fail one refit attempt
//
// Counters: ingest.snapshots.{accepted,repaired,rejected,duplicate},
// ingest.recovered.{torn_tail,quarantined}, drift.trips,
// refit.{stages,retries,fallbacks}. Spans: ingest.recover, ingest.append,
// drift.check, ingest.refit (see OBSERVABILITY.md).
#pragma once

#include <cstdint>
#include <filesystem>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/pipeline.h"
#include "core/spatiotemporal_model.h"
#include "net/ip_space.h"
#include "trace/dataset.h"

namespace acbm::core::ingest {

// --- Corrected EMA ----------------------------------------------------------

/// Bias-corrected exponential moving average: the raw EMA initialized at
/// zero underestimates until ~1/alpha samples have arrived, so the same
/// smoothing is applied to a constant-1 signal and the ratio removes the
/// init bias exactly. Deterministic: value() is a pure function of the
/// update sequence.
class CorrectedEma {
 public:
  explicit CorrectedEma(double alpha) : alpha_(alpha) {}

  void update(double x) noexcept {
    biased_ += alpha_ * (x - biased_);
    correction_ += alpha_ * (1.0 - correction_);
  }

  /// Bias-corrected mean; 0 before the first update.
  [[nodiscard]] double value() const noexcept {
    return correction_ > 0.0 ? biased_ / correction_ : 0.0;
  }

  [[nodiscard]] bool warm() const noexcept { return correction_ > 0.0; }

 private:
  double alpha_;
  double biased_ = 0.0;
  double correction_ = 0.0;
};

// --- Snapshot log -----------------------------------------------------------

/// One surviving log segment: the hour it covers (strictly increasing along
/// the log) and its canonical snapshot CSV payload.
struct Segment {
  std::size_t hour = 0;
  std::string csv;  ///< Canonical Dataset::save_csv text of the snapshot.
};

enum class AppendStatus { kAccepted, kRepaired, kRejected, kDuplicate };

[[nodiscard]] const char* to_string(AppendStatus status) noexcept;

struct AppendOutcome {
  AppendStatus status = AppendStatus::kRejected;
  trace::ValidationReport validation;  ///< What Dataset repair did (if any).
  std::string detail;                  ///< Why a snapshot was rejected.
  std::string quarantined_to;          ///< Reject: where the raw bytes went.
};

/// What recovery did when the log was opened.
struct LogRecovery {
  std::size_t torn_tail_bytes = 0;       ///< Truncated from the tail.
  std::size_t quarantined_ranges = 0;    ///< Interior corrupt byte ranges.
  std::string quarantine_path;           ///< Where corrupt bytes went.
};

/// Append-only crash-safe snapshot log. Single-writer (the ingest CLI);
/// every append is framed, CRC'd, and fsynced before it is acknowledged.
class SnapshotLog {
 public:
  /// Opens (creating the directory if needed) and recovers the log.
  explicit SnapshotLog(std::filesystem::path dir);

  /// Validates and appends one snapshot per the policy in the file header.
  /// `hour` stamps the segment and must exceed the last segment's hour
  /// (else kDuplicate). The snapshot must carry the log's window_start and
  /// a family list consistent with the log's (equal on the common prefix;
  /// appending new families extends the list).
  AppendOutcome append(std::size_t hour, std::string_view snapshot_csv);

  /// Surviving segments in log order (base snapshot first).
  [[nodiscard]] const std::vector<Segment>& segments() const noexcept {
    return segments_;
  }

  [[nodiscard]] bool empty() const noexcept { return segments_.empty(); }

  /// Hour of the last segment (0 when the log is empty).
  [[nodiscard]] std::size_t last_hour() const noexcept {
    return segments_.empty() ? 0 : segments_.back().hour;
  }

  /// The union dataset of every segment: cumulative family list, all
  /// attacks, the log's window_start. Dataset construction re-sorts and
  /// re-validates, so the result is the canonical cumulative dataset a
  /// cold full fit would consume. Throws std::logic_error on an empty log.
  [[nodiscard]] trace::Dataset cumulative() const;

  /// What open-time recovery did.
  [[nodiscard]] const LogRecovery& recovery() const noexcept {
    return recovery_;
  }

  [[nodiscard]] const std::filesystem::path& dir() const noexcept {
    return dir_;
  }

 private:
  void recover();
  void rewrite(const std::string& bytes);
  /// The union family list across segments (append keeps lists
  /// prefix-consistent, so this is the longest list seen).
  [[nodiscard]] std::vector<std::string> cumulative_families() const;

  std::filesystem::path dir_;
  std::filesystem::path log_path_;
  std::vector<Segment> segments_;
  LogRecovery recovery_;
};

// --- Drift detection --------------------------------------------------------

struct DriftPolicy {
  double z_threshold = 3.0;   ///< Channel z-score that counts as divergent.
  int consecutive_hours = 3;  ///< K: divergent hours in a row to trip.
  double alpha = 0.2;         ///< CEMA smoothing for every channel.
};

/// One family's drift trip: the first hour at which the K-consecutive
/// condition held, the offending channel, and its z-score there.
struct DriftTrip {
  std::uint32_t family = 0;
  std::size_t hour = 0;
  double z = 0.0;
  std::string channel;  ///< "rate" | "volume" | "interval" | "injected".
};

/// Replays the cumulative dataset hour by hour through per-family CEMAs and
/// returns the families whose live statistics diverged from their fit-time
/// baseline after `served_hour` (trips at or before it were already
/// refit-served). Pure function of its inputs — recovery after a crash
/// recomputes the identical trips. The drift.false_trip fault point
/// ("family=<name>") forces a trip for that family.
[[nodiscard]] std::vector<DriftTrip> detect_drift(
    const trace::Dataset& cumulative,
    const std::vector<FamilyDriftBaseline>& baselines,
    std::size_t served_hour, std::size_t last_hour, const DriftPolicy& policy);

// --- Orchestration ----------------------------------------------------------

struct IngestorOptions {
  std::filesystem::path dir;  ///< The ingest directory.
  DriftPolicy drift;
  int refit_max_retries = 3;  ///< Extra attempts after the first failure.
  int refit_backoff_ms = 5;   ///< Base backoff; doubles per retry.
  /// Fit configuration — must match the plain `acbm fit` configuration for
  /// the published model to be byte-identical to a cold full fit.
  SpatiotemporalOptions model;
};

struct RefitResult {
  bool attempted = false;   ///< A refit was triggered (trip or force).
  bool published = false;   ///< A new model generation was published.
  std::size_t stages_invalidated = 0;  ///< Stages whose inputs changed.
  int retries = 0;          ///< Failed attempts before success/fallback.
  bool fallback = false;    ///< Retries exhausted; previous model serves.
  std::string error;        ///< Last failure detail when fallback.
  std::vector<DriftTrip> trips;  ///< What tripped (empty on --refit force).
};

/// The ingest→detect→refit orchestrator. Layout under `dir`:
///   snapshots.log          the append-only snapshot log
///   quarantine/            rejected snapshot bytes
///   ipmap.art              the IP->ASN map, fixed at init
///   checkpoint/            stage checkpoints (CheckpointDir)
///   model.art              the live model ("adversary_model" framed v4 —
///                          byte-identical to `acbm fit` on the cumulative
///                          dataset)
///   model.art.g1/.g2       previous generations (copied, not renamed, so
///                          model.art is loadable at every instant)
///   inputs.state           per-stage input hashes + last refit hour
class Ingestor {
 public:
  explicit Ingestor(IngestorOptions opts);

  /// True once init() published a first model.
  [[nodiscard]] bool initialized() const;

  /// Bootstraps the directory: stores the base dataset as segment 0,
  /// persists the IP map, runs the initial full fit, and publishes the
  /// first model generation. Throws std::logic_error when already
  /// initialized.
  void init(const trace::Dataset& base, const net::IpToAsnMap& ip_map);

  /// Validates + appends one hourly snapshot (see SnapshotLog::append).
  AppendOutcome append(std::size_t hour, std::string_view snapshot_csv);

  /// Drift check; refits when a family tripped (or `force`). Returns what
  /// happened. When RefitResult::fallback the previous generation is still
  /// live and the caller should surface exit code 6.
  RefitResult check_and_refit(bool force);

  [[nodiscard]] const SnapshotLog& log() const noexcept { return log_; }
  [[nodiscard]] SnapshotLog& log() noexcept { return log_; }

  /// Hour the published model covers (from inputs.state; 0 before init).
  [[nodiscard]] std::size_t last_refit_hour() const;

  [[nodiscard]] std::filesystem::path model_path() const {
    return opts_.dir / "model.art";
  }

 private:
  /// Stage-name -> input-content-hash for the cumulative dataset.
  [[nodiscard]] std::map<std::string, std::uint64_t> stage_input_hashes(
      const trace::Dataset& cumulative) const;
  [[nodiscard]] net::IpToAsnMap load_ipmap() const;
  [[nodiscard]] std::uint64_t checkpoint_config_hash() const;
  /// Invalidate-changed-stages + retried fit + ordered publication.
  RefitResult refit(const trace::Dataset& cumulative,
                    std::vector<DriftTrip> trips);
  void publish(const AdversaryModel& model,
               const std::map<std::string, std::uint64_t>& hashes,
               std::size_t refit_hour);
  /// Reads inputs.state; empty map + hour 0 when absent/corrupt (every
  /// stage then counts as changed — converges, never serves stale).
  struct InputsState {
    std::size_t refit_hour = 0;
    std::map<std::string, std::uint64_t> hashes;
  };
  [[nodiscard]] InputsState read_inputs_state() const;

  IngestorOptions opts_;
  SnapshotLog log_;
};

}  // namespace acbm::core::ingest
