// Durable artifact I/O shared by every writer and reader of on-disk state
// (datasets, model files, fit reports, evaluation results, checkpoints):
//
//  * a framed envelope (magic, kind, schema version, payload length,
//    CRC32C) so partial writes and bit flips are detected before parsing;
//  * atomic durable writes (write-to-temp + fsync + rename + directory
//    fsync) so a kill mid-write can never leave a half-written artifact
//    under the final name;
//  * a typed LoadError taxonomy mirroring robust.h's FitError, plus a
//    quarantine policy (`<file>.corrupt-<n>`) and a LoadReport recording
//    what recovery did.
//
// Like acbm_robust this is a dependency-free target of its own
// (acbm_durable) sitting just above the fault-injection substrate, so every
// layer that touches the filesystem can use it without a layering cycle.
//
// Fault points wired here (see robust.h FaultInjector):
//   io.write          key "path=<p>"  crash mid-write: half the payload is
//                                     written to the temp file, then throws
//   io.fsync          key "path=<p>"  fail the durability fsync
//   io.dirsync        key "path=<p>"  crash after the rename but before the
//                                     parent-directory fsync (publication
//                                     ambiguous, as after a power loss)
#pragma once

#include <cstdint>
#include <filesystem>
#include <istream>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace acbm::core::durable {

// --- Checksums and content hashes -----------------------------------------

/// CRC32C (Castagnoli) of `data`, continuing from `crc` (0 to start).
/// Uses the hardware CRC instruction when available (SSE4.2 on x86-64,
/// the CRC extension on ARMv8 — probed once at first use; ACBM_SIMD=off
/// forces the table path), falling back to a software table. Both paths
/// are bit-identical; the check value of "123456789" is 0xE3069283.
[[nodiscard]] std::uint32_t crc32c(std::string_view data,
                                   std::uint32_t crc = 0) noexcept;

/// FNV-1a 64-bit content hash, used to key checkpoint stages by the exact
/// bytes of their inputs and configuration.
[[nodiscard]] std::uint64_t fnv1a64(std::string_view data,
                                    std::uint64_t hash = 0xcbf29ce484222325ULL)
    noexcept;

/// Lower-case hex rendering (no 0x prefix) of a hash/checksum.
[[nodiscard]] std::string to_hex(std::uint64_t value);
[[nodiscard]] std::string to_hex(std::uint32_t value);

// --- Error taxonomy --------------------------------------------------------

/// Why an artifact could not be loaded. Mirrors robust.h's FitError: every
/// reader fails with one of these, never a crash or a silently wrong model.
enum class LoadError {
  kIo,                  ///< File missing/unreadable or a write failed.
  kTruncated,           ///< Fewer bytes than the frame header promised.
  kBadChecksum,         ///< Payload CRC32C mismatch (bit rot, partial write).
  kBadMagic,            ///< Not a framed artifact (and legacy not allowed).
  kVersionUnsupported,  ///< Framed, intact, but a schema we cannot read.
  kParse,               ///< Frame/payload intact but contents unparseable.
};

[[nodiscard]] const char* to_string(LoadError error) noexcept;

/// Typed load failure carrying the taxonomy code.
class LoadFailure : public std::runtime_error {
 public:
  LoadFailure(LoadError code, const std::string& detail)
      : std::runtime_error(detail), code_(code) {}

  [[nodiscard]] LoadError code() const noexcept { return code_; }

 private:
  LoadError code_;
};

/// Typed durable-write failure (also thrown by the io.write / io.fsync
/// crash-injection points).
class WriteFailure : public std::runtime_error {
 public:
  explicit WriteFailure(const std::string& detail)
      : std::runtime_error(detail) {}
};

// --- Framed envelope --------------------------------------------------------

/// Every framed artifact starts with one header line:
///   ACBMF1 <kind> v<version> len=<payload-bytes> crc32c=<8 hex>\n
/// followed by exactly `len` payload bytes. The CRC covers the payload.
inline constexpr std::string_view kFrameMagic = "ACBMF1";

struct Frame {
  std::string kind;
  int version = 0;
  std::string payload;
};

/// Wraps a payload in the framed envelope.
[[nodiscard]] std::string frame_payload(std::string_view kind, int version,
                                        std::string_view payload);

/// True when `data` begins with the frame magic (cheap pre-check used to
/// route legacy unframed artifacts to their old parser).
[[nodiscard]] bool looks_framed(std::string_view data) noexcept;

/// Parses a framed blob. Throws LoadFailure with kBadMagic / kTruncated /
/// kBadChecksum / kParse.
[[nodiscard]] Frame parse_frame(std::string_view data);

/// parse_frame without copying the payload: the returned view aliases
/// `data`, so read-only consumers (the serving daemon, `acbm pack`) can
/// CRC-validate a memory-mapped artifact in place. Same error taxonomy as
/// parse_frame.
struct FrameView {
  std::string kind;
  int version = 0;
  std::string_view payload;  ///< Aliases the input bytes.
};
[[nodiscard]] FrameView parse_frame_view(std::string_view data);

/// parse_frame plus kind/version policing: a kind mismatch is kParse, a
/// version outside [min_version, max_version] is kVersionUnsupported.
/// Returns the verified payload.
[[nodiscard]] std::string unwrap(std::string_view data, std::string_view kind,
                                 int min_version, int max_version);

// --- Durable file I/O -------------------------------------------------------

/// Read-only memory mapping of a whole file (RAII: unmapped on
/// destruction). Move-only. Construction throws LoadFailure(kIo) when the
/// file cannot be opened, stat'd, or mapped; a zero-length file maps to an
/// empty view. The mapping stays valid for the object's lifetime even if
/// the path is later renamed over (POSIX mmap semantics), which is exactly
/// what the serving daemon's generation hot-swap relies on: in-flight
/// requests keep reading the old mapping while the new one is built.
class MappedFile {
 public:
  MappedFile() = default;
  explicit MappedFile(const std::filesystem::path& path);
  MappedFile(MappedFile&& other) noexcept;
  MappedFile& operator=(MappedFile&& other) noexcept;
  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;
  ~MappedFile();

  [[nodiscard]] bool mapped() const noexcept { return mapped_; }
  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] const std::byte* data() const noexcept {
    return static_cast<const std::byte*>(addr_);
  }
  [[nodiscard]] std::string_view view() const noexcept {
    return {static_cast<const char*>(addr_), size_};
  }

 private:
  void* addr_ = nullptr;
  std::size_t size_ = 0;
  bool mapped_ = false;
};

/// A validated framed artifact whose payload still lives in the mapping —
/// the zero-copy counterpart of load_artifact for read-only consumers.
/// `payload` aliases `file`; keep the struct alive while reading it.
struct FramedView {
  MappedFile file;
  std::string kind;
  int version = 0;
  std::string_view payload;
};

/// Maps `path`, validates the frame (CRC over the mapped bytes, kind and
/// [min_version, max_version] policing exactly like unwrap) and returns the
/// payload as a view into the mapping — no payload copy is ever made.
/// Throws the same typed LoadFailures as load_artifact; never quarantines
/// (read-only consumers must not perturb the publication directory).
[[nodiscard]] FramedView load_framed_view(const std::filesystem::path& path,
                                          std::string_view kind,
                                          int min_version, int max_version);

/// Whole-file read; throws LoadFailure(kIo) when the file cannot be opened
/// or read.
[[nodiscard]] std::string read_file(const std::filesystem::path& path);

/// Drains a stream to a string (for the framed stream-based loaders).
[[nodiscard]] std::string read_stream(std::istream& is);

/// Atomic durable write: contents go to `<path>.tmp`, are fsynced, then
/// renamed over `path`, and the parent directory is fsynced (so a power
/// loss cannot roll back the publication). A crash (or an injected
/// io.write / io.fsync / io.dirsync fault) at any point leaves either the
/// old file or no file under `path` — never a partial one. A directory
/// fsync error is a WriteFailure, except EINVAL (filesystems without
/// directory fsync), where publication proceeds.
void atomic_write_file(const std::filesystem::path& path,
                       std::string_view contents);

/// frame_payload + atomic_write_file: the one call every artifact writer
/// goes through.
void save_artifact(const std::filesystem::path& path, std::string_view kind,
                   int version, std::string_view payload);

// --- Corruption-tolerant loading -------------------------------------------

/// One corrupt file encountered during a load, and where it was moved.
struct LoadEvent {
  std::string path;
  LoadError error = LoadError::kIo;
  std::string detail;
  std::string quarantined_to;  ///< Empty when the file was left in place.
};

/// What recovery did while loading an artifact (or a checkpoint run).
struct LoadReport {
  std::vector<LoadEvent> events;  ///< Corrupt files, in encounter order.
  bool legacy = false;       ///< Parsed as a legacy unframed artifact.
  int generation = 0;        ///< 0 = primary file; N = fell back N gens.

  [[nodiscard]] bool clean() const noexcept {
    return events.empty() && !legacy && generation == 0;
  }
  /// One human-readable line per event/flag.
  void write(std::ostream& os) const;
};

/// Moves a bad file aside as `<path>.corrupt-<n>` (first free n >= 1).
/// Returns the quarantine destination, or an empty path when the rename
/// failed (the caller still treats the artifact as unusable).
std::filesystem::path quarantine(const std::filesystem::path& path);

/// Shared framed-or-legacy stream loader used by every model's
/// load_framed(): unwraps a framed stream (kind policing, supported
/// [min_version, max_version]) or passes legacy unframed bytes straight
/// through, then invokes `parse(std::istream&)` on the payload. Any parse
/// exception surfaces as LoadFailure(kParse) — corruption or schema drift
/// is always a typed error, never a crash.
template <typename Parse>
auto load_framed_stream(std::istream& is, std::string_view kind,
                        int min_version, int max_version, Parse&& parse) {
  const std::string data = read_stream(is);
  const bool legacy = !looks_framed(data);
  std::istringstream body(legacy ? data
                                 : unwrap(data, kind, min_version,
                                          max_version));
  try {
    return parse(body);
  } catch (const LoadFailure&) {
    throw;
  } catch (const std::exception& e) {
    throw LoadFailure(LoadError::kParse,
                      std::string(kind) + (legacy ? " (legacy format)" : "") +
                          ": " + e.what());
  }
}

/// Reads and verifies a framed artifact file. On corruption the file is
/// quarantined, the event is recorded in `report`, and a typed LoadFailure
/// is thrown. When `legacy_ok`, unframed content is returned as-is with
/// `report->legacy` set (for pre-framing v2 artifacts); intact files with a
/// merely unsupported version are NOT quarantined. Pass
/// `quarantine_on_error = false` to leave a corrupt file in place (readers
/// that retry a possibly-transient bad read before condemning the artifact,
/// e.g. CheckpointDir::load racing a concurrent publisher).
[[nodiscard]] std::string load_artifact(const std::filesystem::path& path,
                                        std::string_view kind, int min_version,
                                        int max_version, bool legacy_ok,
                                        LoadReport* report = nullptr,
                                        bool quarantine_on_error = true);

}  // namespace acbm::core::durable
