#include "core/robust.h"

#include <array>
#include <cmath>
#include <cstdlib>
#include <ostream>

#include "core/observe.h"

namespace acbm::core {

bool all_finite(std::span<const double> xs) noexcept {
  for (double x : xs) {
    if (!std::isfinite(x)) return false;
  }
  return true;
}

std::vector<double> drop_nonfinite(std::span<const double> xs,
                                   std::size_t* dropped) {
  std::vector<double> out;
  out.reserve(xs.size());
  for (double x : xs) {
    if (std::isfinite(x)) out.push_back(x);
  }
  if (dropped != nullptr) *dropped = xs.size() - out.size();
  return out;
}

const char* to_string(FitError error) noexcept {
  switch (error) {
    case FitError::kSeriesTooShort: return "series_too_short";
    case FitError::kSingularSystem: return "singular_system";
    case FitError::kNonconvergence: return "nonconvergence";
    case FitError::kNonfiniteInput: return "nonfinite_input";
    case FitError::kWorkerFailed: return "worker_failed";
  }
  return "unknown";
}

const char* to_string(FitRung rung) noexcept {
  switch (rung) {
    case FitRung::kArima: return "arima";
    case FitRung::kAr: return "ar";
    case FitRung::kSeasonalNaive: return "seasonal-naive";
    case FitRung::kMean: return "mean";
    case FitRung::kNar: return "nar";
    case FitRung::kNarRetry: return "nar-retry";
    case FitRung::kModelTree: return "model-tree";
    case FitRung::kPooledLinear: return "pooled-linear";
  }
  return "unknown";
}

bool is_primary_rung(FitRung rung) noexcept {
  return rung == FitRung::kArima || rung == FitRung::kNar ||
         rung == FitRung::kModelTree;
}

void FitReport::add(FitRecord record) {
  if (observe::enabled()) {
    ACBM_COUNT("fit.records", 1);
    if (record.degraded()) ACBM_COUNT("fit.degraded", 1);
    observe::Metrics::instance()
        .counter(std::string("fit.rung.") + to_string(record.rung))
        .add(1);
  }
  records_.push_back(std::move(record));
}

void FitReport::merge(const std::string& prefix, const FitReport& sub) {
  records_.reserve(records_.size() + sub.records_.size());
  for (const FitRecord& record : sub.records_) {
    FitRecord copy = record;
    copy.component = prefix + copy.component;
    records_.push_back(std::move(copy));
  }
}

std::size_t FitReport::degraded_count() const noexcept {
  std::size_t count = 0;
  for (const FitRecord& record : records_) {
    if (record.degraded()) ++count;
  }
  return count;
}

std::vector<const FitRecord*> FitReport::degraded() const {
  std::vector<const FitRecord*> out;
  for (const FitRecord& record : records_) {
    if (record.degraded()) out.push_back(&record);
  }
  return out;
}

void FitReport::write(std::ostream& os) const {
  constexpr std::array<FitRung, 8> kRungs = {
      FitRung::kArima,     FitRung::kAr,       FitRung::kSeasonalNaive,
      FitRung::kMean,      FitRung::kNar,      FitRung::kNarRetry,
      FitRung::kModelTree, FitRung::kPooledLinear};
  std::array<std::size_t, kRungs.size()> counts{};
  for (const FitRecord& record : records_) {
    for (std::size_t r = 0; r < kRungs.size(); ++r) {
      if (record.rung == kRungs[r]) ++counts[r];
    }
  }
  os << "fit report: " << records_.size() << " components, "
     << degraded_count() << " degraded\n";
  os << "rungs:";
  for (std::size_t r = 0; r < kRungs.size(); ++r) {
    if (counts[r] == 0) continue;
    os << ' ' << to_string(kRungs[r]) << '=' << counts[r];
  }
  os << '\n';
  for (const FitRecord& record : records_) {
    if (!record.degraded()) continue;
    os << "degraded: " << record.component << " rung=" << to_string(record.rung)
       << " error=" << to_string(*record.error);
    if (!record.detail.empty()) os << " (" << record.detail << ")";
    os << '\n';
  }
}

FaultInjector& FaultInjector::instance() {
  static FaultInjector injector;
  return injector;
}

FaultInjector::FaultInjector() {
  if (const char* env = std::getenv("ACBM_FAULTS");
      env != nullptr && *env != '\0') {
    try {
      configure(env);
    } catch (const FaultSpecError& e) {
      // A constructor running lazily inside an instrumented call site has
      // no useful throw path; record the error for the CLI to surface.
      config_error_ = e.what();
    }
  }
}

void FaultInjector::configure(std::string_view spec) {
  std::vector<Rule> rules;
  std::size_t begin = 0;
  while (begin <= spec.size()) {
    std::size_t end = spec.find(';', begin);
    if (end == std::string_view::npos) end = spec.size();
    std::string_view entry = spec.substr(begin, end - begin);
    begin = end + 1;
    if (entry.empty()) continue;
    Rule rule;
    // Trailing '#limit' caps the entry's fire count. The split is on the
    // last '#', so '#' cannot appear inside a filter — a documented
    // limitation of the grammar.
    if (const std::size_t hash = entry.rfind('#');
        hash != std::string_view::npos) {
      const std::string_view digits = entry.substr(hash + 1);
      if (digits.empty() ||
          digits.find_first_not_of("0123456789") != std::string_view::npos) {
        throw FaultSpecError("fault spec: entry '" + std::string(entry) +
                             "' has a malformed '#limit' (need a positive "
                             "integer)");
      }
      rule.limit = std::stoull(std::string(digits));
      if (rule.limit == 0) {
        throw FaultSpecError("fault spec: entry '" + std::string(entry) +
                             "' has limit 0 (a rule that never fires; drop "
                             "the entry instead)");
      }
      entry = entry.substr(0, hash);
    }
    if (const std::size_t colon = entry.find(':');
        colon != std::string_view::npos) {
      rule.point = std::string(entry.substr(0, colon));
      rule.filter = std::string(entry.substr(colon + 1));
    } else {
      rule.point = std::string(entry);
    }
    if (rule.point.empty()) {
      throw FaultSpecError("fault spec: entry '" + std::string(entry) +
                           "' names no fault point");
    }
    rules.push_back(std::move(rule));
  }
  const std::lock_guard<std::mutex> lock(mutex_);
  rules_ = std::move(rules);
  enabled_.store(!rules_.empty(), std::memory_order_relaxed);
}

std::string FaultInjector::spec() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::string out;
  for (const Rule& rule : rules_) {
    if (!out.empty()) out += ';';
    out += rule.point;
    if (!rule.filter.empty()) {
      out += ':';
      out += rule.filter;
    }
    if (rule.limit > 0) {
      out += '#';
      out += std::to_string(rule.limit);
    }
  }
  return out;
}

bool FaultInjector::fires(std::string_view point, std::string_view key) const {
  if (!enabled()) return false;
  const std::lock_guard<std::mutex> lock(mutex_);
  for (Rule& rule : rules_) {
    if (rule.point != point) continue;
    if (rule.filter.empty() || key.find(rule.filter) != std::string_view::npos) {
      if (rule.limit > 0) {
        if (rule.fired >= rule.limit) continue;  // Budget spent: next rule.
        ++rule.fired;
      }
      if (observe::enabled()) {
        observe::Metrics::instance()
            .counter(std::string("fault.trip.") + std::string(point))
            .add(1);
      }
      return true;
    }
  }
  return false;
}

}  // namespace acbm::core
