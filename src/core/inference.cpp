#include "core/inference.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

#include "tree/cart.h"
#include "ts/arma.h"

namespace acbm::core {

std::string_view precision_name(Precision precision) noexcept {
  return precision == Precision::kF32 ? "f32" : "f64";
}

Precision parse_precision(std::string_view text) {
  if (text == "f64") return Precision::kF64;
  if (text == "f32") return Precision::kF32;
  throw std::invalid_argument("parse_precision: expected f64 or f32, got '" +
                              std::string(text) + "'");
}

ArimaF32::ArimaF32(const ts::ArimaModel& model) {
  if (!model.fitted()) {
    throw std::logic_error("ArimaF32: source model not fitted");
  }
  const ts::ArmaModel& arma = model.arma();
  d_ = model.order().d;
  phi_.reserve(arma.phi().size());
  for (double v : arma.phi()) phi_.push_back(static_cast<float>(v));
  theta_.reserve(arma.theta().size());
  for (double v : arma.theta()) theta_.push_back(static_cast<float>(v));
  intercept_ = static_cast<float>(arma.intercept());
}

double ArimaF32::forecast_one(std::span<const double> history) const {
  if (history.size() <= d_) {
    throw std::invalid_argument("ArimaF32::forecast_one: history too short");
  }
  // Difference d times in f64 (exact-ish subtractions of caller data) and
  // capture the last value at each level for the one-step integration:
  // integrating a single-step forecast adds back the last value of every
  // differencing level 0..d-1 (see ts::integrate_forecast with h == 1).
  diff_.assign(history.begin(), history.end());
  std::size_t n = diff_.size();
  double integrate_add = 0.0;
  for (std::size_t k = 0; k < d_; ++k) {
    integrate_add += diff_[n - 1];
    for (std::size_t t = 1; t < n; ++t) diff_[t - 1] = diff_[t] - diff_[t - 1];
    --n;
  }

  // f32 innovations filter conditional on zero pre-sample values, then one
  // step ahead with the future innovation at its conditional mean (zero) —
  // the same terms as ArmaModel::forecast, minus its allocations. The
  // per-t recursion e[t] = x[t] - c - Σ phi·x - Σ theta·e is split into a
  // branch-free AR sweep (one vectorizable lagged-axpy pass per phi) and a
  // tight sequential MA recurrence; only the summation order differs from
  // the f64 filter, which the rel-error bound absorbs.
  x_.resize(n);
  for (std::size_t t = 0; t < n; ++t) x_[t] = static_cast<float>(diff_[t]);
  const std::size_t p = phi_.size();
  const std::size_t q = theta_.size();
  if (q > 0) {
    e_.resize(n);
    float* const e = e_.data();
    const float* const x = x_.data();
    // AR part: e[t] = x[t] - c - Σ_i phi_i · x[t-1-i]  (zero before t = i+1).
    for (std::size_t t = 0; t < n; ++t) e[t] = x[t] - intercept_;
    for (std::size_t i = 0; i < p; ++i) {
      const float ph = phi_[i];
      for (std::size_t t = i + 1; t < n; ++t) e[t] -= ph * x[t - 1 - i];
    }
    // MA recurrence (sequential by construction).
    if (q == 1) {
      const float th = theta_[0];
      float prev = e[0];
      for (std::size_t t = 1; t < n; ++t) {
        prev = e[t] - th * prev;
        e[t] = prev;
      }
    } else {
      for (std::size_t t = 1; t < n; ++t) {
        float acc = e[t];
        for (std::size_t j = 0; j < q && t > j; ++j) {
          acc -= theta_[j] * e[t - 1 - j];
        }
        e[t] = acc;
      }
    }
  }
  // Pure AR (q == 0): the innovations never feed back into the forecast,
  // so the filter above is skipped entirely.
  float next = intercept_;
  for (std::size_t i = 0; i < p && n > i; ++i) next += phi_[i] * x_[n - 1 - i];
  for (std::size_t j = 0; j < q && n > j; ++j) next += theta_[j] * e_[n - 1 - j];
  return static_cast<double>(next) + integrate_add;
}

std::optional<TreeF32> TreeF32::from(const tree::ModelTree& tree) {
  if (!tree.fitted()) return std::nullopt;
  TreeF32 out;
  const std::vector<tree::CartNode>& nodes = tree.structure().nodes();
  const std::vector<tree::LeafModelExport> models = tree.export_leaf_models();
  out.nodes_.reserve(nodes.size());
  for (std::size_t id = 0; id < nodes.size(); ++id) {
    Node node;
    node.left = nodes[id].left;
    node.right = nodes[id].right;
    node.feature = static_cast<std::uint32_t>(nodes[id].feature);
    node.threshold = nodes[id].threshold;
    node.mean = models[id].mean;
    if (models[id].use_linear) {
      node.coef_off = static_cast<std::uint32_t>(out.coefs_.size());
      node.coef_len = static_cast<std::uint32_t>(models[id].coefficients.size());
      node.intercept = static_cast<float>(models[id].intercept);
      for (double c : models[id].coefficients) {
        out.coefs_.push_back(static_cast<float>(c));
      }
    }
    out.nodes_.push_back(node);
  }
  return out;
}

double TreeF32::predict(std::span<const double> features) const {
  std::size_t id = 0;
  while (nodes_[id].left >= 0) {
    const Node& node = nodes_[id];
    id = static_cast<std::size_t>(
        features[node.feature] <= node.threshold ? node.left : node.right);
  }
  const Node& leaf = nodes_[id];
  if (leaf.coef_len == 0) return leaf.mean;
  float acc = leaf.intercept;
  const float* coef = coefs_.data() + leaf.coef_off;
  for (std::size_t i = 0; i < leaf.coef_len; ++i) {
    acc += coef[i] * static_cast<float>(features[i]);
  }
  return static_cast<double>(acc);
}

double InferenceView::LinearF32::predict(
    std::span<const double> features) const {
  float acc = intercept;
  for (std::size_t i = 0; i < coef.size(); ++i) {
    acc += coef[i] * static_cast<float>(features[i]);
  }
  return static_cast<double>(acc);
}

InferenceView InferenceView::extract(const SpatiotemporalModel& model) {
  if (!model.fitted()) {
    throw std::logic_error("InferenceView::extract: model not fitted");
  }
  InferenceView view;
  for (const auto& [family, tm] : model.temporal_models()) {
    std::array<TemporalSlotF32, kTemporalSeriesCount> slots;
    for (std::size_t s = 0; s < kTemporalSeriesCount; ++s) {
      const auto which = static_cast<TemporalSeries>(s);
      slots[s].fallback_mean = tm.fallback_mean(which);
      slots[s].seasonal_period = tm.seasonal_period(which);
      if (tm.model(which)) slots[s].arima.emplace(*tm.model(which));
    }
    view.temporal_.emplace(family, std::move(slots));
  }
  for (const auto& [asn, sm] : model.spatial_models()) {
    std::array<SpatialSlotF32, kSpatialSeriesCount> slots;
    for (std::size_t s = 0; s < kSpatialSeriesCount; ++s) {
      const auto which = static_cast<SpatialSeries>(s);
      slots[s].fallback_mean = sm.fallback_mean(which);
      if (sm.nar(which)) slots[s].nar.emplace(*sm.nar(which));
      if (sm.ar(which)) slots[s].ar.emplace(*sm.ar(which));
    }
    view.spatial_.emplace(asn, std::move(slots));
  }
  view.hour_tree_ = TreeF32::from(model.hour_tree());
  view.day_tree_ = TreeF32::from(model.day_tree());
  const auto to_linear_f32 = [](const stats::LinearRegression& reg) {
    LinearF32 lin;
    lin.intercept = static_cast<float>(reg.intercept());
    lin.coef.reserve(reg.coefficients().size());
    for (double c : reg.coefficients()) {
      lin.coef.push_back(static_cast<float>(c));
    }
    return lin;
  };
  if (model.hour_fallback()) {
    view.hour_linear_ = to_linear_f32(*model.hour_fallback());
  }
  if (model.day_fallback()) {
    view.day_linear_ = to_linear_f32(*model.day_fallback());
  }
  return view;
}

double InferenceView::predict_hour(const StFeatures& features) const {
  double hour;
  if (hour_tree_) {
    hour = hour_tree_->predict(features.hour_row());
  } else if (hour_linear_) {
    hour = hour_linear_->predict(features.hour_row());
  } else {
    hour = 0.5 * (features.tmp_hour + features.spa_hour);
  }
  return std::clamp(hour, 0.0, 23.999);
}

double InferenceView::predict_day(const StFeatures& features) const {
  if (day_tree_) return day_tree_->predict(features.day_row());
  if (day_linear_) return day_linear_->predict(features.day_row());
  return features.prev_day + features.tmp_interval_s / 86400.0;
}

bool InferenceView::has_temporal(std::uint32_t family) const {
  return temporal_.contains(family);
}

bool InferenceView::has_spatial(net::Asn target) const {
  return spatial_.contains(target);
}

std::span<const double> InferenceView::repair(std::span<const double> history,
                                              double fill) const {
  const bool finite = std::all_of(history.begin(), history.end(),
                                  [](double x) { return std::isfinite(x); });
  if (finite) return history;
  repair_scratch_.assign(history.begin(), history.end());
  for (double& x : repair_scratch_) {
    if (!std::isfinite(x)) x = fill;
  }
  return repair_scratch_;
}

double InferenceView::temporal_forecast(std::uint32_t family,
                                        TemporalSeries which,
                                        std::span<const double> history) const {
  const auto it = temporal_.find(family);
  if (it == temporal_.end()) {
    throw std::invalid_argument("InferenceView::temporal_forecast: no model");
  }
  const TemporalSlotF32& slot = it->second[static_cast<std::size_t>(which)];
  const std::span<const double> series = repair(history, slot.fallback_mean);
  if (slot.arima && series.size() > slot.arima->d()) {
    return slot.arima->forecast_one(series);
  }
  if (slot.seasonal_period > 0 && series.size() >= slot.seasonal_period) {
    return series[series.size() - slot.seasonal_period];
  }
  return slot.fallback_mean;
}

double InferenceView::spatial_forecast(net::Asn target, SpatialSeries which,
                                       std::span<const double> history) const {
  const auto it = spatial_.find(target);
  if (it == spatial_.end()) {
    throw std::invalid_argument("InferenceView::spatial_forecast: no model");
  }
  const SpatialSlotF32& slot = it->second[static_cast<std::size_t>(which)];
  const std::span<const double> series = repair(history, slot.fallback_mean);
  if (slot.nar && series.size() >= slot.nar->delays()) {
    return slot.nar->forecast_one(series);
  }
  if (slot.ar && series.size() > slot.ar->d()) {
    return slot.ar->forecast_one(series);
  }
  return slot.fallback_mean;
}

}  // namespace acbm::core
