#include "core/arena.h"

#include <algorithm>
#include <atomic>
#include <cassert>

#include "core/observe.h"

namespace acbm::core {

namespace {

/// Process-wide high-water mark across all arenas; mirrored into the
/// `arena.bytes_peak` gauge whenever it grows.
std::atomic<std::size_t> g_process_peak{0};

void update_process_peak(std::size_t candidate) noexcept {
  std::size_t seen = g_process_peak.load(std::memory_order_relaxed);
  while (candidate > seen &&
         !g_process_peak.compare_exchange_weak(seen, candidate,
                                               std::memory_order_relaxed)) {
  }
  if (candidate > seen) {
    ACBM_GAUGE_SET("arena.bytes_peak", static_cast<double>(candidate));
  }
}

[[nodiscard]] std::size_t align_up(std::size_t n, std::size_t a) noexcept {
  return (n + a - 1) & ~(a - 1);
}

}  // namespace

Arena::Arena(std::size_t first_chunk_bytes)
    : next_size_(std::max<std::size_t>(first_chunk_bytes, kAlignment)) {}

void* Arena::allocate(std::size_t bytes) {
  const std::size_t padded = align_up(bytes, kAlignment);
  if (chunks_.empty()) add_chunk(padded);
  // Scan forward from the current chunk; earlier chunks are full by
  // construction (we only move forward, rewind moves back).
  while (true) {
    Chunk& c = chunks_[current_];
    // data.get() is new[]-aligned only; align the bump pointer explicitly.
    const auto base = reinterpret_cast<std::uintptr_t>(c.data.get());
    const std::size_t aligned_used =
        align_up(base + c.used, kAlignment) - base;
    if (aligned_used + padded <= c.size) {
      void* out = c.data.get() + aligned_used;
      c.used = aligned_used + padded;
      in_use_ += bytes;  // bytes_in_use() reports requests, not padding.
      note_usage();
      return out;
    }
    if (current_ + 1 < chunks_.size()) {
      ++current_;
      continue;
    }
    add_chunk(padded);
  }
}

void Arena::add_chunk(std::size_t min_bytes) {
  std::size_t size = std::max(next_size_, align_up(min_bytes, kAlignment));
  // Extra headroom so the explicit alignment fixup never overflows the end.
  size += kAlignment;
  Chunk c;
  c.data = std::make_unique<std::byte[]>(size);
  c.size = size;
  chunks_.push_back(std::move(c));
  current_ = chunks_.size() - 1;
  reserved_ += size;
  next_size_ = std::min(next_size_ * 2, kMaxChunkBytes);
}

void Arena::rewind(const Mark& m) noexcept {
  assert(m.chunk < chunks_.size() || chunks_.empty());
  if (chunks_.empty()) return;
  for (std::size_t i = m.chunk + 1; i <= current_; ++i) chunks_[i].used = 0;
  current_ = m.chunk;
  chunks_[current_].used = m.used;
  in_use_ = m.in_use;
}

void Arena::reset() noexcept {
  for (Chunk& c : chunks_) c.used = 0;
  current_ = 0;
  in_use_ = 0;
}

void Arena::note_usage() noexcept {
  if (in_use_ > peak_) {
    peak_ = in_use_;
    update_process_peak(peak_);
  }
}

std::size_t Arena::process_bytes_peak() noexcept {
  return g_process_peak.load(std::memory_order_relaxed);
}

}  // namespace acbm::core
