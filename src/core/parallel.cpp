#include "core/parallel.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <limits>
#include <memory>

#include "core/observe.h"
#include "core/robust.h"

namespace acbm::core {

namespace {

// Set for the lifetime of every worker thread; parallel fan-out degrades to
// a serial inline loop on these threads so nesting cannot deadlock.
thread_local bool t_pool_worker = false;

// Shared-runtime state behind num_threads()/set_num_threads()/parallel_for.
std::mutex g_runtime_mutex;
std::unique_ptr<ThreadPool> g_pool;
std::size_t g_thread_override = 0;

std::size_t env_threads() {
  const char* value = std::getenv("ACBM_THREADS");
  if (value == nullptr || *value == '\0') return 0;
  char* end = nullptr;
  const unsigned long parsed = std::strtoul(value, &end, 10);
  if (end == nullptr || *end != '\0') return 0;
  return static_cast<std::size_t>(parsed);
}

std::size_t resolve_threads_locked() {
  if (g_thread_override > 0) return g_thread_override;
  if (const std::size_t from_env = env_threads(); from_env > 0) return from_env;
  return std::max<std::size_t>(1, std::thread::hardware_concurrency());
}

}  // namespace

ThreadPool::ThreadPool(std::size_t threads) {
  const std::size_t count = std::max<std::size_t>(1, threads);
  workers_.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

bool ThreadPool::on_worker_thread() noexcept { return t_pool_worker; }

void ThreadPool::worker_loop() {
  t_pool_worker = true;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (tasks_.empty()) return;  // stop_ set and queue drained.
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
  }
}

void ThreadPool::for_each_index(std::size_t begin, std::size_t end,
                                const std::function<void(std::size_t)>& fn,
                                std::size_t grain) {
  if (begin >= end) return;
  const std::size_t chunk = std::max<std::size_t>(1, grain);
  // Serial fast paths: a single index, or a caller that is itself a pool
  // worker (nested fan-out must not wait on the queue it runs from).
  if (end - begin == 1 || t_pool_worker) {
    for (std::size_t i = begin; i < end; ++i) {
      throw_if_worker_fault(i);
      fn(i);
    }
    return;
  }

  // One batch shared by every participating worker: each grabs the next
  // `chunk` indices until the range (or the batch, on failure) is spent.
  struct Batch {
    std::atomic<std::size_t> next;
    std::atomic<bool> failed{false};
    std::size_t end;
    std::size_t grain;
    const std::function<void(std::size_t)>* fn;
    std::mutex mutex;
    std::condition_variable done;
    std::size_t pending;
    std::exception_ptr error;
    std::size_t error_index = std::numeric_limits<std::size_t>::max();
  };
  Batch batch;
  batch.next.store(begin);
  batch.end = end;
  batch.grain = chunk;
  batch.fn = &fn;

  const std::size_t spans = (end - begin + chunk - 1) / chunk;
  const std::size_t tasks = std::min(workers_.size(), spans);
  batch.pending = tasks;

  // Carry the submitting thread's innermost span into the workers: spans
  // opened inside fn() then parent identically whether fn runs inline (1
  // thread, nested fan-out) or on a pool worker — the merged span tree is
  // the same at any thread count.
  const std::uint64_t parent_span = observe::current_span();

  const auto drain = [&batch, parent_span] {
    const observe::ScopedParent inherit(parent_span);
    const bool observing = observe::enabled();
    const auto task_start = observing ? std::chrono::steady_clock::now()
                                      : std::chrono::steady_clock::time_point{};
    for (;;) {
      if (batch.failed.load(std::memory_order_relaxed)) break;
      const std::size_t start = batch.next.fetch_add(batch.grain);
      if (start >= batch.end) break;
      const std::size_t stop = std::min(batch.end, start + batch.grain);
      for (std::size_t i = start; i < stop; ++i) {
        try {
          throw_if_worker_fault(i);
          (*batch.fn)(i);
        } catch (...) {
          const std::lock_guard<std::mutex> lock(batch.mutex);
          if (i < batch.error_index) {
            batch.error_index = i;
            batch.error = std::current_exception();
          }
          batch.failed.store(true, std::memory_order_relaxed);
          break;
        }
      }
    }
    if (observing) {
      const double task_ms =
          std::chrono::duration<double, std::milli>(
              std::chrono::steady_clock::now() - task_start)
              .count();
      ACBM_COUNT("pool.tasks", 1);
      ACBM_HISTOGRAM("pool.task_ms", task_ms);
    }
    const std::lock_guard<std::mutex> lock(batch.mutex);
    if (--batch.pending == 0) batch.done.notify_all();
  };

  {
    const std::lock_guard<std::mutex> lock(mutex_);
    for (std::size_t t = 0; t < tasks; ++t) tasks_.emplace(drain);
    ACBM_GAUGE_SET("pool.queue_depth", tasks_.size());
  }
  cv_.notify_all();

  std::unique_lock<std::mutex> lock(batch.mutex);
  batch.done.wait(lock, [&batch] { return batch.pending == 0; });
  if (batch.error) std::rethrow_exception(batch.error);
}

std::size_t num_threads() {
  const std::lock_guard<std::mutex> lock(g_runtime_mutex);
  return resolve_threads_locked();
}

void set_num_threads(std::size_t n) {
  const std::lock_guard<std::mutex> lock(g_runtime_mutex);
  g_thread_override = n;
  // Drop a stale pool now so shutdown is prompt; parallel_for rebuilds.
  if (g_pool && g_pool->size() != resolve_threads_locked()) g_pool.reset();
}

void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& fn,
                  std::size_t grain) {
  if (begin >= end) return;
  if (end - begin == 1 || ThreadPool::on_worker_thread()) {
    for (std::size_t i = begin; i < end; ++i) {
      throw_if_worker_fault(i);
      fn(i);
    }
    return;
  }
  ThreadPool* pool = nullptr;
  {
    const std::lock_guard<std::mutex> lock(g_runtime_mutex);
    const std::size_t threads = resolve_threads_locked();
    if (threads > 1) {
      if (!g_pool || g_pool->size() != threads) {
        g_pool = std::make_unique<ThreadPool>(threads);
      }
      pool = g_pool.get();
    }
  }
  if (pool == nullptr) {  // Serial path: ACBM_THREADS=1 or a 1-core host.
    for (std::size_t i = begin; i < end; ++i) {
      throw_if_worker_fault(i);
      fn(i);
    }
    return;
  }
  pool->for_each_index(begin, end, fn, grain);
}

}  // namespace acbm::core
