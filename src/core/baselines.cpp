#include "core/baselines.h"

#include <stdexcept>

namespace acbm::core {

namespace {
void check_start(std::span<const double> series, std::size_t start) {
  if (start == 0 || start > series.size()) {
    throw std::invalid_argument("baseline predictions: bad start index");
  }
}
}  // namespace

std::vector<double> always_same_predictions(std::span<const double> series,
                                            std::size_t start) {
  check_start(series, start);
  std::vector<double> out;
  out.reserve(series.size() - start);
  for (std::size_t t = start; t < series.size(); ++t) {
    out.push_back(series[t - 1]);
  }
  return out;
}

std::vector<double> always_mean_predictions(std::span<const double> series,
                                            std::size_t start) {
  check_start(series, start);
  std::vector<double> out;
  out.reserve(series.size() - start);
  double sum = 0.0;
  for (std::size_t t = 0; t < start; ++t) sum += series[t];
  for (std::size_t t = start; t < series.size(); ++t) {
    out.push_back(sum / static_cast<double>(t));
    sum += series[t];
  }
  return out;
}

}  // namespace acbm::core
