// Chunked bump allocator for fit-time scratch: recursive tree building and
// MLP workspaces allocate thousands of short-lived index/scratch buffers
// whose lifetimes nest perfectly — a mark/rewind arena turns each of those
// heap round-trips into a pointer bump. Not thread-safe: one Arena per
// fitting call (or per thread), never shared concurrently. Allocation is
// limited to trivially-destructible element types; rewinding never runs
// destructors.
//
// Peak usage across all arenas in the process is exported as the
// `arena.bytes_peak` gauge (see OBSERVABILITY.md).
#pragma once

#include <cstddef>
#include <memory>
#include <span>
#include <type_traits>
#include <vector>

namespace acbm::core {

class Arena {
 public:
  /// First chunk size; later chunks double until kMaxChunkBytes. A request
  /// larger than the current chunk size gets a dedicated chunk.
  static constexpr std::size_t kDefaultChunkBytes = std::size_t{64} * 1024;
  static constexpr std::size_t kMaxChunkBytes = std::size_t{8} * 1024 * 1024;
  /// Every allocation is aligned to this (covers AVX2/NEON vector loads).
  static constexpr std::size_t kAlignment = 64;

  explicit Arena(std::size_t first_chunk_bytes = kDefaultChunkBytes);

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;
  Arena(Arena&&) noexcept = default;
  Arena& operator=(Arena&&) noexcept = default;

  /// A bump position; rewind(mark()) frees everything allocated since.
  struct Mark {
    std::size_t chunk = 0;
    std::size_t used = 0;
    std::size_t in_use = 0;
  };

  /// Uninitialized span of `n` elements (64-byte aligned). T must be
  /// trivially destructible — rewind()/reset() never run destructors.
  template <typename T>
  [[nodiscard]] std::span<T> alloc_span(std::size_t n) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "Arena only holds trivially destructible types");
    static_assert(alignof(T) <= kAlignment);
    if (n == 0) return {};
    return {static_cast<T*>(allocate(n * sizeof(T))), n};
  }

  [[nodiscard]] Mark mark() const noexcept {
    return {current_, chunks_.empty() ? 0 : chunks_[current_].used, in_use_};
  }

  /// Frees everything allocated after `m` (LIFO only: marks must be
  /// rewound in reverse order of taking them). Chunks are kept for reuse.
  void rewind(const Mark& m) noexcept;

  /// Frees everything but keeps the chunks for reuse.
  void reset() noexcept;

  /// Live bytes (requests currently allocated, excluding padding).
  [[nodiscard]] std::size_t bytes_in_use() const noexcept { return in_use_; }
  /// High-water mark of bytes_in_use() over this arena's lifetime.
  [[nodiscard]] std::size_t bytes_peak() const noexcept { return peak_; }
  /// Total bytes reserved from the heap (sum of chunk sizes).
  [[nodiscard]] std::size_t bytes_reserved() const noexcept {
    return reserved_;
  }

  /// Process-wide high-water mark across every Arena (what the
  /// `arena.bytes_peak` gauge reports).
  [[nodiscard]] static std::size_t process_bytes_peak() noexcept;

 private:
  struct Chunk {
    std::unique_ptr<std::byte[]> data;
    std::size_t size = 0;
    std::size_t used = 0;
  };

  [[nodiscard]] void* allocate(std::size_t bytes);
  void add_chunk(std::size_t min_bytes);
  void note_usage() noexcept;

  std::vector<Chunk> chunks_;
  std::size_t current_ = 0;     ///< Chunk currently bumped.
  std::size_t next_size_ = 0;   ///< Size of the next chunk to add.
  std::size_t in_use_ = 0;
  std::size_t peak_ = 0;
  std::size_t reserved_ = 0;
};

}  // namespace acbm::core
