// Shared, immutable cache of extracted feature series for one dataset.
// Feature extraction (features.h) walks every attack of a family or target
// per call, and the fitting pipeline historically re-extracted the same
// series in each stage: the temporal stage per family, the spatial stage
// per target, and row assembly for the combining tree re-extracting both.
// A FeatureCache computes each series once and hands out shared_ptrs to the
// immutable result, so the three stages share one extraction pass.
//
// Thread-safety contract: family()/target() are safe to call concurrently
// from any thread (the fitting stages fan out over families/targets).
// Entries are built outside the lock and inserted first-writer-wins; a
// losing duplicate build is byte-identical to the winner because
// extraction is a pure function of the dataset, so concurrency never
// changes results. hits()/misses() are approximate under concurrency
// (each is read under the lock, but a racing miss may be counted before
// its entry lands). When observability is enabled (core/observe.h) every
// lookup also bumps the global feature_cache.hit / feature_cache.miss
// counters.
//
// Invalidation contract: the cache holds references to the dataset/IP map
// it was built over and must not outlive them. If the underlying dataset
// mutates, call invalidate() while no other thread is using the cache —
// it drops every cached series, but shared_ptrs already handed out stay
// valid (they keep the old extraction alive and go stale, by design).
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>

#include "core/features.h"

namespace acbm::core {

class FeatureCache {
 public:
  /// `distance` may be null (unit inter-AS distance), matching
  /// extract_family_series; it applies to every family extraction served
  /// by this cache.
  FeatureCache(const trace::Dataset& dataset, const net::IpToAsnMap& ip_map,
               net::ValleyFreeDistance* distance = nullptr)
      : dataset_(dataset), ip_map_(ip_map), distance_(distance) {}

  FeatureCache(const FeatureCache&) = delete;
  FeatureCache& operator=(const FeatureCache&) = delete;

  /// The family series for `family`, extracting on first use.
  [[nodiscard]] std::shared_ptr<const FamilySeries> family(
      std::uint32_t family);

  /// The target series for `asn`, extracting on first use.
  [[nodiscard]] std::shared_ptr<const TargetSeries> target(net::Asn asn);

  /// Drops every cached series (e.g. if the underlying dataset mutated).
  /// Outstanding shared_ptrs stay valid.
  void invalidate();

  [[nodiscard]] std::size_t hits() const;
  [[nodiscard]] std::size_t misses() const;

 private:
  const trace::Dataset& dataset_;
  const net::IpToAsnMap& ip_map_;
  net::ValleyFreeDistance* distance_;

  mutable std::mutex mutex_;
  std::map<std::uint32_t, std::shared_ptr<const FamilySeries>> families_;
  std::map<net::Asn, std::shared_ptr<const TargetSeries>> targets_;
  std::size_t hits_ = 0;
  std::size_t misses_ = 0;
};

}  // namespace acbm::core
