#include "core/observe.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <ostream>
#include <stdexcept>
#include <unordered_map>

#if defined(__linux__)
#include <ctime>
#endif

namespace acbm::core::observe {

namespace detail {
std::atomic<bool> g_enabled{false};
}  // namespace detail

namespace {

// Process-global span-open sequence. fetch_add gives every span a unique,
// totally ordered id; sorting drained events by it reproduces the open
// order, which is the deterministic merge key across rings.
std::atomic<std::uint64_t> g_seq{0};

// Innermost-open-span stack of the current thread. ScopedParent pushes an
// inherited seq so spans opened inside a pool task parent correctly.
thread_local std::vector<std::uint64_t> t_span_stack;

std::int64_t wall_now_ns() noexcept {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::int64_t cpu_now_ns() noexcept {
#if defined(__linux__)
  timespec ts{};
  if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) == 0) {
    return static_cast<std::int64_t>(ts.tv_sec) * 1'000'000'000 + ts.tv_nsec;
  }
#endif
  return 0;
}

std::size_t round_up_pow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

std::string json_escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Prometheus metric name: acbm_ prefix, [a-zA-Z0-9_] alphabet.
std::string prometheus_name(std::string_view name) {
  std::string out = "acbm_";
  for (char c : name) {
    const bool safe = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                      (c >= '0' && c <= '9');
    out += safe ? c : '_';
  }
  return out;
}

void atomic_add_double(std::atomic<double>& target, double delta) noexcept {
  double cur = target.load(std::memory_order_relaxed);
  while (!target.compare_exchange_weak(cur, cur + delta,
                                       std::memory_order_relaxed)) {
  }
}

}  // namespace

void set_enabled(bool on) noexcept {
  detail::g_enabled.store(on, std::memory_order_relaxed);
}

// --- Histogram ------------------------------------------------------------

Histogram::Histogram(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds)) {
  if (bounds_.empty()) {
    throw std::invalid_argument("Histogram: needs at least one bucket bound");
  }
  for (std::size_t i = 1; i < bounds_.size(); ++i) {
    if (!(bounds_[i - 1] < bounds_[i])) {
      throw std::invalid_argument("Histogram: bounds must strictly increase");
    }
  }
  buckets_ = std::make_unique<std::atomic<std::uint64_t>[]>(bounds_.size() + 1);
  for (std::size_t i = 0; i <= bounds_.size(); ++i) buckets_[i].store(0);
}

void Histogram::observe(double value) noexcept {
  // Linear scan: bucket lists are a dozen entries; the scan is cheaper
  // than a branch-heavy binary search at this size.
  std::size_t idx = bounds_.size();
  for (std::size_t i = 0; i < bounds_.size(); ++i) {
    if (value <= bounds_[i]) {
      idx = i;
      break;
    }
  }
  buckets_[idx].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  atomic_add_double(sum_, value);
}

std::vector<std::uint64_t> Histogram::bucket_counts() const {
  std::vector<std::uint64_t> out(bounds_.size() + 1);
  for (std::size_t i = 0; i <= bounds_.size(); ++i) {
    out[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return out;
}

void Histogram::reset() noexcept {
  for (std::size_t i = 0; i <= bounds_.size(); ++i) {
    buckets_[i].store(0, std::memory_order_relaxed);
  }
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
}

std::vector<double> default_latency_bounds_ms() {
  return {0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 50.0, 100.0, 500.0, 1000.0,
          5000.0};
}

// --- Metrics --------------------------------------------------------------

Metrics& Metrics::instance() {
  // Leaked singleton: worker threads may still touch cached metric
  // references during static destruction, so the registry must outlive
  // every other static.
  static Metrics* metrics = new Metrics();
  return *metrics;
}

Counter& Metrics::counter(std::string_view name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = counters_.find(name);
  if (it != counters_.end()) return *it->second;
  return *counters_.emplace(std::string(name), std::make_unique<Counter>())
              .first->second;
}

Gauge& Metrics::gauge(std::string_view name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = gauges_.find(name);
  if (it != gauges_.end()) return *it->second;
  return *gauges_.emplace(std::string(name), std::make_unique<Gauge>())
              .first->second;
}

Histogram& Metrics::histogram(std::string_view name,
                              std::span<const double> upper_bounds) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = histograms_.find(name);
  if (it != histograms_.end()) return *it->second;
  std::vector<double> bounds =
      upper_bounds.empty()
          ? default_latency_bounds_ms()
          : std::vector<double>(upper_bounds.begin(), upper_bounds.end());
  return *histograms_
              .emplace(std::string(name),
                       std::make_unique<Histogram>(std::move(bounds)))
              .first->second;
}

std::uint64_t Metrics::counter_value(std::string_view name) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second->value();
}

std::vector<std::pair<std::string, std::uint64_t>> Metrics::counters_snapshot()
    const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::pair<std::string, std::uint64_t>> out;
  out.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) {
    out.emplace_back(name, counter->value());
  }
  return out;
}

void Metrics::write_prometheus(std::ostream& os) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [name, counter] : counters_) {
    const std::string prom = prometheus_name(name) + "_total";
    os << "# TYPE " << prom << " counter\n"
       << prom << ' ' << counter->value() << '\n';
  }
  for (const auto& [name, gauge] : gauges_) {
    const std::string prom = prometheus_name(name);
    os << "# TYPE " << prom << " gauge\n"
       << prom << ' ' << gauge->value() << '\n';
  }
  for (const auto& [name, histogram] : histograms_) {
    const std::string prom = prometheus_name(name);
    os << "# TYPE " << prom << " histogram\n";
    const std::vector<std::uint64_t> counts = histogram->bucket_counts();
    const std::vector<double>& bounds = histogram->bounds();
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < bounds.size(); ++i) {
      cumulative += counts[i];
      os << prom << "_bucket{le=\"" << bounds[i] << "\"} " << cumulative
         << '\n';
    }
    cumulative += counts[bounds.size()];
    os << prom << "_bucket{le=\"+Inf\"} " << cumulative << '\n'
       << prom << "_sum " << histogram->sum() << '\n'
       << prom << "_count " << histogram->count() << '\n';
  }
}

void Metrics::reset() {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [name, counter] : counters_) counter->reset();
  for (const auto& [name, gauge] : gauges_) gauge->reset();
  for (const auto& [name, histogram] : histograms_) histogram->reset();
}

// --- SpanRing -------------------------------------------------------------

SpanRing::SpanRing(std::size_t capacity)
    : slots_(round_up_pow2(std::max<std::size_t>(capacity, 2))),
      mask_(slots_.size() - 1) {}

bool SpanRing::push(SpanEvent&& event) noexcept {
  const std::uint64_t head = head_.load(std::memory_order_relaxed);
  if (head - tail_.load(std::memory_order_acquire) >= slots_.size()) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  slots_[head & mask_] = std::move(event);
  head_.store(head + 1, std::memory_order_release);
  return true;
}

std::size_t SpanRing::drain(std::vector<SpanEvent>& out) {
  const std::uint64_t head = head_.load(std::memory_order_acquire);
  std::uint64_t tail = tail_.load(std::memory_order_relaxed);
  const std::size_t drained = static_cast<std::size_t>(head - tail);
  out.reserve(out.size() + drained);
  while (tail != head) {
    out.push_back(std::move(slots_[tail & mask_]));
    ++tail;
  }
  tail_.store(tail, std::memory_order_release);
  return drained;
}

void SpanRing::clear() {
  head_.store(0, std::memory_order_relaxed);
  tail_.store(0, std::memory_order_relaxed);
  dropped_.store(0, std::memory_order_relaxed);
  for (SpanEvent& slot : slots_) slot = SpanEvent{};
}

// --- Tracer ---------------------------------------------------------------

Tracer& Tracer::instance() {
  // Leaked for the same reason as Metrics: rings must outlive every thread
  // that might still close a span during static destruction.
  static Tracer* tracer = new Tracer();
  return *tracer;
}

Tracer::ThreadSlot Tracer::local_slot() {
  thread_local ThreadSlot slot;
  if (slot.ring == nullptr) {
    const std::lock_guard<std::mutex> lock(mutex_);
    rings_.push_back(std::make_unique<SpanRing>());
    slot.ring = rings_.back().get();
    slot.index = static_cast<std::uint32_t>(rings_.size() - 1);
  }
  return slot;
}

std::vector<SpanEvent> Tracer::collect() {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& ring : rings_) ring->drain(drained_);
  std::sort(drained_.begin(), drained_.end(),
            [](const SpanEvent& a, const SpanEvent& b) { return a.seq < b.seq; });
  std::vector<SpanEvent> out = std::move(drained_);
  drained_.clear();
  return out;
}

std::uint64_t Tracer::dropped() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::uint64_t total = 0;
  for (const auto& ring : rings_) total += ring->dropped();
  return total;
}

void Tracer::reset() {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& ring : rings_) ring->clear();
  drained_.clear();
  g_seq.store(0, std::memory_order_relaxed);
}

// --- Span / parent stack --------------------------------------------------

std::uint64_t current_span() noexcept {
  return t_span_stack.empty() ? 0 : t_span_stack.back();
}

ScopedParent::ScopedParent(std::uint64_t parent_seq) {
  t_span_stack.push_back(parent_seq);
}

ScopedParent::~ScopedParent() { t_span_stack.pop_back(); }

void Span::open(const char* name, std::string tags) {
  name_ = name;
  tags_ = std::move(tags);
  seq_ = g_seq.fetch_add(1, std::memory_order_relaxed) + 1;
  parent_ = current_span();
  t_span_stack.push_back(seq_);
  start_wall_ = wall_now_ns();
  start_cpu_ = cpu_now_ns();
}

void Span::close() noexcept {
  SpanEvent event;
  event.seq = seq_;
  event.parent = parent_;
  event.name = name_;
  event.tags = std::move(tags_);
  event.start_ns = start_wall_;
  event.wall_ns = wall_now_ns() - start_wall_;
  event.cpu_ns = cpu_now_ns() - start_cpu_;
  const Tracer::ThreadSlot slot = Tracer::instance().local_slot();
  event.thread = slot.index;
  slot.ring->push(std::move(event));
  if (!t_span_stack.empty() && t_span_stack.back() == seq_) {
    t_span_stack.pop_back();
  }
}

// --- Sinks ----------------------------------------------------------------

void write_chrome_trace(std::ostream& os, std::span<const SpanEvent> events) {
  std::int64_t base = 0;
  for (const SpanEvent& e : events) {
    if (base == 0 || e.start_ns < base) base = e.start_ns;
  }
  os << "{\"traceEvents\":[";
  bool first = true;
  for (const SpanEvent& e : events) {
    char timing[96];
    std::snprintf(timing, sizeof timing, "\"ts\":%.3f,\"dur\":%.3f",
                  static_cast<double>(e.start_ns - base) / 1000.0,
                  static_cast<double>(e.wall_ns) / 1000.0);
    os << (first ? "\n" : ",\n") << "{\"name\":\""
       << json_escape(e.name != nullptr ? e.name : "?")
       << "\",\"cat\":\"acbm\",\"ph\":\"X\",\"pid\":1,\"tid\":" << e.thread
       << ',' << timing << ",\"args\":{\"seq\":" << e.seq
       << ",\"parent\":" << e.parent << ",\"cpu_us\":"
       << e.cpu_ns / 1000;
    if (!e.tags.empty()) {
      os << ",\"tags\":\"" << json_escape(e.tags) << '"';
    }
    os << "}}";
    first = false;
  }
  os << "\n],\"displayTimeUnit\":\"ms\"}\n";
}

std::vector<SpanAggregate> aggregate_spans(std::span<const SpanEvent> events) {
  // Index events and group children by parent seq. An event whose parent
  // was never drained (still open, or dropped by a full ring) is a root.
  std::unordered_map<std::uint64_t, std::size_t> by_seq;
  by_seq.reserve(events.size());
  for (std::size_t i = 0; i < events.size(); ++i) by_seq[events[i].seq] = i;
  std::unordered_map<std::uint64_t, std::vector<std::size_t>> children_of;
  std::vector<std::size_t> roots;
  for (std::size_t i = 0; i < events.size(); ++i) {
    const std::uint64_t parent = events[i].parent;
    if (parent != 0 && by_seq.count(parent) != 0) {
      children_of[parent].push_back(i);
    } else {
      roots.push_back(i);
    }
  }

  std::vector<SpanAggregate> out;
  // Recursive merge: group sibling events by name (sorted), emit one
  // aggregate per group, then recurse into the union of the group's
  // children. Same-name siblings merge, so the tree shape depends only on
  // which spans ran under which — not on timing or thread placement.
  const auto emit = [&](const auto& self, const std::vector<std::size_t>& evs,
                        const std::string& prefix, int depth) -> void {
    std::map<std::string_view, std::vector<std::size_t>> groups;
    for (std::size_t i : evs) {
      groups[events[i].name != nullptr ? events[i].name : "?"].push_back(i);
    }
    for (const auto& [name, members] : groups) {
      SpanAggregate agg;
      agg.name = std::string(name);
      agg.path = prefix.empty() ? agg.name : prefix + "/" + agg.name;
      agg.depth = depth;
      std::vector<std::size_t> grandchildren;
      for (std::size_t i : members) {
        ++agg.count;
        agg.wall_ns += events[i].wall_ns;
        agg.cpu_ns += events[i].cpu_ns;
        const auto it = children_of.find(events[i].seq);
        if (it != children_of.end()) {
          grandchildren.insert(grandchildren.end(), it->second.begin(),
                               it->second.end());
        }
      }
      const std::string path = agg.path;
      out.push_back(std::move(agg));
      self(self, grandchildren, path, depth + 1);
    }
  };
  emit(emit, roots, "", 0);
  return out;
}

void write_profile(std::ostream& os, std::span<const SpanEvent> events,
                   std::uint64_t dropped) {
  const std::vector<SpanAggregate> tree = aggregate_spans(events);
  os << "-- acbm profile: merged span tree --\n";
  char header[96];
  std::snprintf(header, sizeof header, "%-44s %12s %12s %9s\n", "span",
                "wall ms", "cpu ms", "count");
  os << header;
  for (const SpanAggregate& node : tree) {
    std::string label(static_cast<std::size_t>(node.depth) * 2, ' ');
    label += node.name;
    char line[160];
    std::snprintf(line, sizeof line, "%-44s %12.3f %12.3f %9" PRIu64 "\n",
                  label.c_str(), static_cast<double>(node.wall_ns) / 1e6,
                  static_cast<double>(node.cpu_ns) / 1e6, node.count);
    os << line;
  }
  os << "spans: " << events.size() << " closed, " << dropped << " dropped\n";
}

}  // namespace acbm::core::observe
