// Entropy-based early attack detection (§V-B): "effective defense
// mechanisms via early DDoS attack detections ... achieved by evaluating
// the entropy of AS distributions over all concurrent connections". A
// botnet flood concentrates traffic into the family's source ASes, shifting
// the source-AS entropy away from the benign baseline; this detector learns
// the baseline's mean/variance online and flags z-score excursions.
#pragma once

#include <cstddef>
#include <deque>
#include <unordered_map>

#include "net/as_graph.h"

namespace acbm::core {

struct EntropyDetectorOptions {
  /// Observations used to learn the benign baseline before detection arms.
  std::size_t warmup = 60;
  /// |z| threshold on the entropy shift.
  double z_threshold = 3.5;
  /// Additionally require total volume above this multiple of its baseline
  /// mean (entropy alone also shifts on benign mix changes).
  double volume_factor = 1.3;
  /// Sliding window of recent observations kept for the baseline
  /// statistics (older ones age out, so slow drift is tolerated).
  std::size_t baseline_window = 24 * 60;
};

/// Online detector over per-interval source-AS traffic distributions.
class EntropyDetector {
 public:
  EntropyDetector() = default;
  explicit EntropyDetector(EntropyDetectorOptions opts) : opts_(opts) {}

  /// Feeds one interval's traffic by source AS (any non-negative volumes);
  /// returns true when the interval is flagged as an attack.
  /// Flagged intervals do NOT update the baseline (no self-poisoning).
  bool observe(const std::unordered_map<net::Asn, double>& traffic_by_as);

  [[nodiscard]] bool armed() const noexcept {
    return entropy_history_.size() >= opts_.warmup;
  }
  [[nodiscard]] double last_entropy() const noexcept { return last_entropy_; }
  [[nodiscard]] double last_z() const noexcept { return last_z_; }
  [[nodiscard]] std::size_t observations() const noexcept {
    return total_observations_;
  }

 private:
  void update_baseline(double entropy, double volume);

  EntropyDetectorOptions opts_;
  std::deque<double> entropy_history_;
  std::deque<double> volume_history_;
  double last_entropy_ = 0.0;
  double last_z_ = 0.0;
  std::size_t total_observations_ = 0;
};

}  // namespace acbm::core
