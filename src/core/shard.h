// Sharded multi-process fit with crash-tolerant coordination (see
// DESIGN.md "Sharded fit"): `acbm fit --workers N` spawns N worker
// processes that each fit checkpoint stages ("temporal/<family>",
// "spatial", "tree") into a shared --checkpoint-dir, then merges the
// result by running the ordinary single-process fit with every stage
// cached. Because workers fit stages through the exact code the
// single-process fit uses (fit_family_temporal / fit_target_spatial /
// SpatiotemporalModel::fit) and publish deterministic bytes through
// CheckpointDir's shared marker mode, an N-process fit is byte-identical
// to a 1-process fit — including after any worker is SIGKILLed mid-stage.
//
// Coordination is filesystem-only (no sockets, no shared memory):
//   <ckpt>/coord/shards.plan      framed shard plan (config hash + stages)
//   <ckpt>/coord/leases/<s>.lease framed lease: which worker owns a shard
//   <ckpt>/coord/inbox/*.metrics  framed per-worker counter snapshots
//
// Lease lifecycle: a worker acquires a shard's lease with an exclusive
// create, heartbeats it (mtime rewrite) every ttl/3 while fitting, and
// releases it after publishing the stage. A lease whose mtime is older
// than the ttl is stale — its worker is presumed dead — and any worker
// may steal it (atomic rewrite, confirmation delay, ownership re-read).
// A mis-steal from the surviving-but-slow owner is benign: both workers
// publish identical bytes. Liveness never depends on lease cleanliness;
// the coordinator's final merge refits any stage the workers never
// finished.
//
// Fault points wired here (see robust.h FaultInjector): worker.spawn,
// worker.exit, lease.expire, heartbeat.drop. Counters:
// worker.{spawned,crashed,reassigned}, lease.{acquired,expired,stolen},
// shard.retry.
#pragma once

#include <cstdint>
#include <filesystem>
#include <functional>
#include <string>
#include <vector>

#include "core/checkpoint.h"
#include "core/spatiotemporal_model.h"

namespace acbm::core {

/// The deterministic shard list for a training set: one "temporal/<name>"
/// stage per family (family-index order), then "spatial", then "tree".
/// Identical to the stage order SpatiotemporalModel::fit checkpoints in.
[[nodiscard]] std::vector<std::string> shard_stages(const trace::Dataset& train);

/// Writes/validates the shard plan (`coord/shards.plan`): the run's config
/// hash plus the ordered stage list, framed+CRC'd like every artifact.
void write_shard_plan(const std::filesystem::path& checkpoint_dir,
                      std::uint64_t config_hash,
                      const std::vector<std::string>& stages);

/// Throws std::invalid_argument when a plan exists and was written under a
/// different config hash (the checkpoint dir belongs to another run).
/// A missing or unreadable plan is not an error — workers can run without
/// a coordinator (e.g. launched by hand against a shared directory).
void check_shard_plan(const std::filesystem::path& checkpoint_dir,
                      std::uint64_t config_hash);

/// Advisory shard ownership over lease files in `<coord>/leases/`. Every
/// operation is crash-safe: state lives in one file per shard, written
/// atomically; a worker that dies simply stops heartbeating and its leases
/// go stale. Instances are cheap views over the directory — one per
/// worker thread/process.
class LeaseTable {
 public:
  LeaseTable(std::filesystem::path coord_dir, int ttl_ms);

  /// Tries to take the shard's lease for `worker_id`. Fresh shards are
  /// acquired with an exclusive create; stale leases (mtime older than the
  /// ttl, or the "lease.expire" fault firing for "shard=<stage>") are
  /// stolen with an atomic rewrite + confirmation re-read. Returns false
  /// when another worker holds the lease and it is still fresh.
  [[nodiscard]] bool try_acquire(const std::string& stage, int worker_id);

  /// Refreshes the lease's mtime (the liveness signal). Skipped when the
  /// "heartbeat.drop" fault fires for "worker=<id>" — the lease then goes
  /// stale under the owner and other workers will steal the shard.
  void heartbeat(const std::string& stage, int worker_id);

  /// Removes the lease after the stage is published (or abandoned).
  void release(const std::string& stage, int worker_id);

  /// Coordinator-side: removes every lease owned by a dead worker so its
  /// shards are immediately re-assignable (no ttl wait).
  void drop_worker(int worker_id);

  [[nodiscard]] const std::filesystem::path& dir() const noexcept {
    return dir_;
  }

 private:
  [[nodiscard]] std::filesystem::path lease_path(const std::string& stage) const;
  [[nodiscard]] bool is_stale(const std::filesystem::path& path,
                              const std::string& stage) const;

  std::filesystem::path dir_;  ///< `<coord>/leases`.
  int ttl_ms_;
};

/// One worker's view of the sharded fit.
struct ShardWorkerOptions {
  std::filesystem::path checkpoint_dir;
  std::uint64_t config_hash = 0;
  int worker_id = 0;
  int lease_ttl_ms = 2000;
  /// Base delay of the capped exponential backoff a worker sleeps when it
  /// made no progress (every pending shard leased elsewhere).
  int poll_interval_ms = 20;
  int max_backoff_ms = 500;
  /// Write this worker's counter snapshot to `coord/inbox/` on completion
  /// (the coordinator aggregates the inbox into its own registry).
  bool ship_metrics = false;
  /// What the "worker.exit" fault does. Default (null): SIGKILL the
  /// process — true kill-9 semantics, nothing is flushed or released.
  /// Thread-based test workers install a handler that throws instead.
  std::function<void(const std::string& key)> crash;
};

/// Fits shards until every stage of the plan is complete (by this worker
/// or any other), then returns. Runs in a worker process (`acbm worker`)
/// or a test thread; each instance owns its CheckpointDir and LeaseTable.
class ShardWorker {
 public:
  explicit ShardWorker(ShardWorkerOptions opts);

  /// Returns the number of stages this worker fit itself. `model_opts`
  /// must match the coordinator's fit options (its checkpoint pointer is
  /// ignored; the worker wires its own store).
  int run(const trace::Dataset& train, const net::IpToAsnMap& ip_map,
          const SpatiotemporalOptions& model_opts);

 private:
  void fit_stage(const std::string& stage, const trace::Dataset& train,
                 const net::IpToAsnMap& ip_map, FeatureCache& features,
                 const SpatiotemporalOptions& model_opts, CheckpointDir& ckpt);
  void maybe_crash(const std::string& stage);
  void ship_metrics();

  ShardWorkerOptions opts_;
};

/// How a coordination run ended.
enum class CoordinationOutcome {
  kComplete,          ///< Every stage published; all workers exited cleanly.
  kWorkersExhausted,  ///< Workers died faster than the respawn budget; the
                      ///< caller's merge fit completes the remaining stages.
  kTimeout,           ///< --worker-timeout elapsed; workers were SIGKILLed.
};

[[nodiscard]] const char* to_string(CoordinationOutcome outcome) noexcept;

struct ShardCoordinatorOptions {
  std::filesystem::path checkpoint_dir;
  std::uint64_t config_hash = 0;
  int workers = 2;
  /// 0 = no deadline. On expiry every worker is SIGKILLed and run()
  /// returns kTimeout (the CLI maps it to exit code 5).
  int worker_timeout_ms = 0;
  int lease_ttl_ms = 2000;
  /// Crashed-worker respawns before giving up (kWorkersExhausted).
  int max_respawns = 8;
  /// Wipe stage markers + coord state first (fit without --resume).
  bool fresh = true;
  /// Read `coord/inbox` into this process's metric registry at the end.
  bool aggregate_metrics = false;
  /// Builds the argv (argv[0] = executable path) for worker `worker_id`.
  /// Respawned workers get fresh ids (original count upward), so a fault
  /// filter like "worker=0" hits only the first incarnation.
  std::function<std::vector<std::string>(int worker_id)> worker_argv;
  /// Environment variables removed from each worker's environment (e.g.
  /// ACBM_METRICS, so workers don't clobber the coordinator's sink —
  /// worker metrics travel through the inbox instead). ACBM_FAULTS is
  /// inherited untouched: fault specs apply to workers too.
  std::vector<std::string> child_unset_env;
};

/// Spawns, monitors, and replaces worker processes until the shard plan is
/// complete (or the budget/deadline runs out). Crash-tolerant by
/// construction: a SIGKILLed worker's leases are dropped immediately and
/// its shards reassigned to a respawned worker with a fresh id.
class ShardCoordinator {
 public:
  explicit ShardCoordinator(ShardCoordinatorOptions opts);

  CoordinationOutcome run(const std::vector<std::string>& stages);

 private:
  struct Child {
    int worker_id = -1;
    long pid = -1;  ///< -1: spawn failed (treated as an instant crash).
    bool alive = false;
  };

  [[nodiscard]] Child spawn(int worker_id);
  void aggregate_inbox();

  ShardCoordinatorOptions opts_;
};

}  // namespace acbm::core
