// The paper's evaluation protocol: chronological 80/20 split, walk-forward
// one-step prediction on the test tail, RMSE and error-distribution
// reporting. Each function here backs one figure or table of the paper
// (see DESIGN.md §3 for the experiment index).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/baselines.h"
#include "core/inference.h"
#include "core/spatiotemporal_model.h"
#include "net/ip_space.h"
#include "trace/dataset.h"

namespace acbm::core {

/// Walk-forward evaluation of one family series (Fig. 1 uses kMagnitude):
/// the temporal model against the two naive baselines of §VII-A.
struct SeriesEvaluation {
  std::string family;
  std::vector<double> truth;       ///< Test-tail ground truth.
  std::vector<double> model_pred;  ///< Temporal (ARIMA) predictions.
  std::vector<double> same_pred;   ///< Always-Same baseline.
  std::vector<double> mean_pred;   ///< Always-Mean baseline.
  double model_rmse = 0.0;
  double same_rmse = 0.0;
  double mean_rmse = 0.0;
};

[[nodiscard]] SeriesEvaluation evaluate_temporal_series(
    const trace::Dataset& dataset, const net::IpToAsnMap& ip_map,
    std::uint32_t family, TemporalSeries which,
    const TemporalModelOptions& opts = {}, double train_fraction = 0.8);

/// Per-target spatial (NAR) evaluation of a series aggregated over all of a
/// family's targets (duration is the paper's T^d): per-test-attack truth and
/// predictions from the spatial model and the two baselines.
struct SpatialEvaluation {
  std::string family;
  std::size_t targets_evaluated = 0;
  std::vector<double> truth;
  std::vector<double> model_pred;
  std::vector<double> same_pred;
  std::vector<double> mean_pred;
  double model_rmse = 0.0;
  double same_rmse = 0.0;
  double mean_rmse = 0.0;
};

[[nodiscard]] SpatialEvaluation evaluate_spatial_series(
    const trace::Dataset& dataset, const net::IpToAsnMap& ip_map,
    std::uint32_t family, SpatialSeries which,
    const SpatialModelOptions& opts = {}, double train_fraction = 0.8,
    std::size_t min_target_attacks = 10);

/// Fig. 2: attacker source-AS distribution prediction for one family.
struct SourceDistributionEvaluation {
  std::string family;
  std::vector<net::Asn> ases;        ///< Union of tracked ASes, ranked.
  std::vector<double> truth_freq;    ///< Aggregate truth distribution.
  std::vector<double> pred_freq;     ///< Aggregate predicted distribution.
  std::vector<double> per_attack_tv; ///< Total-variation error per attack.
  double model_rmse = 0.0;           ///< sqrt(mean(tv^2)) over test attacks.
  double same_rmse = 0.0;            ///< Previous-distribution baseline.
  double mean_rmse = 0.0;            ///< Historical-mean baseline.
};

[[nodiscard]] SourceDistributionEvaluation evaluate_source_distribution(
    const trace::Dataset& dataset, const net::IpToAsnMap& ip_map,
    std::uint32_t family, const SpatialModelOptions& opts = {},
    double train_fraction = 0.8, std::size_t min_target_attacks = 10);

/// Fig. 3/4 and the §VI-B RMSE numbers: per-target timestamp (day & hour)
/// prediction comparing spatial-only, temporal-only, and spatiotemporal.
struct TimestampEvaluation {
  std::vector<double> truth_hour;
  std::vector<double> st_hour;    ///< Spatiotemporal tree.
  std::vector<double> spa_hour;   ///< Spatial model alone.
  std::vector<double> tmp_hour;   ///< Temporal model alone.
  std::vector<double> truth_day;
  std::vector<double> st_day;
  std::vector<double> spa_day;
  std::vector<double> tmp_day;
  /// §VII-A naive baselines on the same test rows, computed per target
  /// walk-forward: Always-Same repeats the target's previous hour and
  /// previous inter-attack interval; Always-Mean predicts the running means.
  std::vector<double> same_hour;
  std::vector<double> mean_hour;
  std::vector<double> same_day;
  std::vector<double> mean_day;
  double rmse_hour_st = 0.0;
  double rmse_hour_spa = 0.0;
  double rmse_hour_tmp = 0.0;
  double rmse_day_st = 0.0;
  double rmse_day_spa = 0.0;
  double rmse_day_tmp = 0.0;
  double rmse_hour_same = 0.0;
  double rmse_hour_mean = 0.0;
  double rmse_day_same = 0.0;
  double rmse_day_mean = 0.0;
};

/// `precision` selects the serving arithmetic for the spatiotemporal
/// columns (st_hour / st_day): kF64 scores the fitted models directly,
/// kF32 scores an InferenceView extracted from them (--precision f32).
/// Fitting is identical either way.
[[nodiscard]] TimestampEvaluation evaluate_timestamps(
    const trace::Dataset& dataset, const net::IpToAsnMap& ip_map,
    const SpatiotemporalOptions& opts = {}, double train_fraction = 0.8,
    Precision precision = Precision::kF64);

/// §VII-A comparison row: one family, one feature, three predictors.
struct ComparisonRow {
  std::string family;
  std::string feature;
  double model_rmse = 0.0;
  double same_rmse = 0.0;
  double mean_rmse = 0.0;
};

/// Runs the §VII-A comparison (magnitude, duration, source distribution)
/// for the `top_families` most active families.
[[nodiscard]] std::vector<ComparisonRow> comparison_table(
    const trace::Dataset& dataset, const net::IpToAsnMap& ip_map,
    std::size_t top_families = 5, double train_fraction = 0.8);

/// The `count` most active families (by attack volume), descending.
[[nodiscard]] std::vector<std::uint32_t> most_active_families(
    const trace::Dataset& dataset, std::size_t count);

/// A causal forecast of one test attack: when it was predicted to launch
/// and where its traffic was predicted to come from, using only information
/// available before the target's previous attack ended. Drives the Fig. 5
/// SDN simulations and any downstream provisioning logic.
struct PredictedAttack {
  std::size_t attack_index = 0;
  net::Asn target = 0;
  trace::EpochSeconds predicted_start = 0;
  trace::EpochSeconds actual_start = 0;
  /// Smallest predicted source-AS set covering `source_mass` of the mass.
  std::vector<net::Asn> predicted_sources;
};

/// Fits on the train split and produces causal predictions for every test
/// attack covered by the models (same protocol as evaluate_timestamps).
[[nodiscard]] std::vector<PredictedAttack> predict_attacks(
    const trace::Dataset& dataset, const net::IpToAsnMap& ip_map,
    const SpatiotemporalOptions& opts = {}, double train_fraction = 0.8,
    double source_mass = 0.9);

}  // namespace acbm::core
