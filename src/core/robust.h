// Fault-tolerance substrate shared by every model layer: a structured
// error taxonomy (FitError / FitFailure / FitOutcome), the degradation
// ladder bookkeeping (FitRung / FitRecord / FitReport), and a deterministic
// FaultInjector used by tests to force each degradation path.
//
// Like the parallel runtime this lives under core/ but is a dependency-free
// target of its own (acbm_robust) so the lower libraries (stats, ts, nn,
// tree, trace) can throw typed failures without a layering cycle.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <mutex>
#include <optional>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace acbm::core {

// --- Error taxonomy -------------------------------------------------------

/// Why a fit could not be produced at some rung of the ladder.
enum class FitError {
  kSeriesTooShort,  ///< Not enough observations for the requested model.
  kSingularSystem,  ///< Normal equations (OLS / Hannan-Rissanen) singular.
  kNonconvergence,  ///< Training ran but produced a non-finite/unusable fit.
  kNonfiniteInput,  ///< NaN/Inf in the input data.
  kWorkerFailed,    ///< A parallel_for worker task failed (fault injection).
};

[[nodiscard]] const char* to_string(FitError error) noexcept;

/// Typed fitting failure. Derives from std::invalid_argument so every
/// pre-existing `catch (const std::invalid_argument&)` fallback site keeps
/// working; new code should catch FitFailure and read code().
class FitFailure : public std::invalid_argument {
 public:
  FitFailure(FitError code, const std::string& detail)
      : std::invalid_argument(detail), code_(code) {}

  [[nodiscard]] FitError code() const noexcept { return code_; }

 private:
  FitError code_;
};

/// Result-or-typed-error wrapper for module boundaries that used to return
/// std::optional (e.g. nn::nar_grid_search). Mirrors the optional API so
/// existing call sites (`if (auto r = ...)`, `r->field`, `r.has_value()`)
/// compile unchanged, but a failed outcome also carries why it failed.
template <typename T>
class FitOutcome {
 public:
  FitOutcome(T value)  // NOLINT(google-explicit-constructor)
      : value_(std::move(value)), error_(FitError::kSeriesTooShort) {}

  [[nodiscard]] static FitOutcome failure(FitError error,
                                          std::string detail = {}) {
    FitOutcome out;
    out.error_ = error;
    out.detail_ = std::move(detail);
    return out;
  }

  [[nodiscard]] bool has_value() const noexcept { return value_.has_value(); }
  [[nodiscard]] explicit operator bool() const noexcept { return has_value(); }

  [[nodiscard]] T& value() & { return require(); }
  [[nodiscard]] const T& value() const& {
    return const_cast<FitOutcome*>(this)->require();
  }
  [[nodiscard]] T& operator*() & { return require(); }
  [[nodiscard]] const T& operator*() const& { return value(); }
  [[nodiscard]] T* operator->() { return &require(); }
  [[nodiscard]] const T* operator->() const { return &value(); }

  /// The failure reason; only meaningful when !has_value().
  [[nodiscard]] FitError error() const noexcept { return error_; }
  [[nodiscard]] const std::string& detail() const noexcept { return detail_; }

 private:
  FitOutcome() = default;

  T& require() {
    if (!value_) {
      throw FitFailure(error_, "FitOutcome: accessing failed outcome (" +
                                   std::string(to_string(error_)) +
                                   (detail_.empty() ? "" : ": " + detail_) +
                                   ")");
    }
    return *value_;
  }

  std::optional<T> value_;
  FitError error_ = FitError::kSeriesTooShort;
  std::string detail_;
};

/// True when every element of xs is finite.
[[nodiscard]] bool all_finite(std::span<const double> xs) noexcept;

/// Copy of xs without its non-finite values; `dropped` (if non-null)
/// receives the number removed. Used by fit paths to repair corrupt series
/// before walking the degradation ladder.
[[nodiscard]] std::vector<double> drop_nonfinite(std::span<const double> xs,
                                                 std::size_t* dropped = nullptr);

// --- Degradation ladder bookkeeping ---------------------------------------

/// The rung of the degradation ladder a fit landed on. Primary rungs
/// (ARIMA / NAR / model tree) are the intended models; everything below is
/// a fallback the fit degraded to.
enum class FitRung {
  kArima,         ///< Temporal primary.
  kAr,            ///< AR(1) fallback (temporal rung 2, spatial rung 3).
  kSeasonalNaive, ///< Temporal rung 3: repeat the value one period back.
  kMean,          ///< Last rung everywhere: training-mean constant model.
  kNar,           ///< Spatial primary.
  kNarRetry,      ///< Spatial rung 2: NAR refit with a perturbed init seed.
  kModelTree,     ///< Combining-tree primary.
  kPooledLinear,  ///< Combining-tree fallback: one pooled linear model.
};

[[nodiscard]] const char* to_string(FitRung rung) noexcept;

/// True for the top rung of each ladder (the non-degraded outcome).
[[nodiscard]] bool is_primary_rung(FitRung rung) noexcept;

/// One component's landed rung, plus the first failure (if any) that pushed
/// it off a higher rung.
struct FitRecord {
  std::string component;  ///< e.g. "temporal/DirtJumper/magnitude".
  FitRung rung = FitRung::kMean;
  std::optional<FitError> error;  ///< First failure on the way down.
  std::string detail;

  /// A record is *degraded* when a higher rung was attempted and failed.
  /// Landing on the mean because the series is simply below the
  /// minimum-fit-length policy is expected behavior, not degradation.
  [[nodiscard]] bool degraded() const noexcept {
    return error.has_value() && *error != FitError::kSeriesTooShort;
  }
};

/// Aggregated ladder outcome of a whole fit (one model or the pipeline).
class FitReport {
 public:
  /// Appends a record, and (when observability is on) bumps the
  /// fit.records / fit.degraded / fit.rung.<rung> counters.
  void add(FitRecord record);

  /// Appends another report's records with "<prefix>" prepended to each
  /// component name (used to roll sub-model reports up into the pipeline's).
  void merge(const std::string& prefix, const FitReport& sub);

  [[nodiscard]] const std::vector<FitRecord>& records() const noexcept {
    return records_;
  }
  [[nodiscard]] std::size_t size() const noexcept { return records_.size(); }

  [[nodiscard]] std::size_t degraded_count() const noexcept;
  [[nodiscard]] std::vector<const FitRecord*> degraded() const;

  /// Human-readable dump: rung counts plus one line per degraded component.
  /// Deterministic for a given report (records are in fit order).
  void write(std::ostream& os) const;

  void clear() { records_.clear(); }

 private:
  std::vector<FitRecord> records_;
};

// --- Deterministic fault injection ----------------------------------------

/// Malformed ACBM_FAULTS / configure() spec. Derives from
/// std::invalid_argument so the CLI maps it to the usage exit code (2).
class FaultSpecError : public std::invalid_argument {
 public:
  using std::invalid_argument::invalid_argument;
};

/// Process-wide fault-injection switchboard. Faults are keyed by fault-point
/// name and an optional key-substring filter — never by RNG draws or
/// execution order — so a faulted run stays bit-identical at any thread
/// count.
///
/// Spec grammar (from ACBM_FAULTS or configure()):
///   spec  := entry (';' entry)*
///   entry := point [':' filter] ['#' limit]
/// `fires(point, key)` is true when an entry's point matches exactly and its
/// filter (if present) is a substring of `key`. A `#limit` suffix caps how
/// many times the entry fires (it deactivates afterwards); a malformed limit
/// (non-numeric, zero, trailing garbage) throws FaultSpecError instead of
/// being silently ignored. Limits count fires() calls in arrival order, so
/// use them on single-threaded / process-level points (worker.*, lease.*,
/// checkpoint.read) where that order is deterministic. Examples:
///   ACBM_FAULTS="temporal.nonfinite:family=DirtJumper"
///   ACBM_FAULTS="nar.nonconvergence:attempt=0;tree.fail:hour"
///   ACBM_FAULTS="worker.exit:shard=spatial#1"
///
/// Fault points wired in this repo:
///   parallel.worker        key "index=<i>"       throw inside a pool worker
///   temporal.nonfinite     key "family=<name>"   NaN-poison family series
///   nar.nonconvergence     key "asn=<A>/<series>/attempt=<k>"
///   tree.fail              key "hour" | "day"    fail a combining tree
///   io.write               key "path=<p>"        crash a durable write
///                                                mid-stream (durable.h)
///   io.fsync               key "path=<p>"        fail the durability fsync
///   io.dirsync             key "path=<p>"        crash after the rename,
///                                                before the parent-dir
///                                                fsync (durable.h)
///   checkpoint.stage       key "<stage>"         crash between a stage's
///                                                artifact and its marker
///   checkpoint.read        key "<stage>"         transient stage-artifact
///                                                read failure (retry path)
///   worker.spawn           key "worker=<id>"     fail spawning that worker
///                                                process (shard.h)
///   worker.exit            key "worker=<id>/shard=<stage>"  worker crashes
///                                                (SIGKILL itself) right
///                                                after leasing the shard
///   lease.expire           key "shard=<stage>"   treat the held lease as
///                                                already stale (forces a
///                                                steal)
///   heartbeat.drop         key "worker=<id>"     worker skips its lease
///                                                heartbeats
///   ingest.append          key "hour=<h>"        crash an ingest-log append
///                                                mid-segment (ingest.h)
///   ingest.torn_tail       key "hour=<h>"        leave a torn half-segment
///                                                at the log tail on append
///   drift.false_trip       key "family=<name>"   force the drift monitor to
///                                                report that family tripped
///   refit.fail             key "hour=<h>/attempt=<k>"  fail that attempt of
///                                                the incremental refit
class FaultInjector {
 public:
  static FaultInjector& instance();

  /// Replaces the active fault set (overrides ACBM_FAULTS). Call between
  /// fits, not while a parallel fit is in flight. Throws FaultSpecError on
  /// a malformed entry (e.g. a bad '#limit'); the previous rules stay
  /// active in that case.
  void configure(std::string_view spec);
  void clear() { configure({}); }

  /// Canonical round-trip of the active rules ("point[:filter][#limit]"
  /// joined by ';'). configure(spec()) restores the same behavior with
  /// fresh fire budgets — the coordinator uses this to forward ACBM_FAULTS
  /// to spawned workers verbatim.
  [[nodiscard]] std::string spec() const;

  /// Non-empty when the ACBM_FAULTS environment spec failed to parse at
  /// first use (a constructor cannot throw usefully); the CLI surfaces it
  /// as a usage error. Direct configure() calls throw instead.
  [[nodiscard]] const std::string& config_error() const noexcept {
    return config_error_;
  }

  /// Lock-free fast path: false when no faults are configured.
  [[nodiscard]] bool enabled() const noexcept {
    return enabled_.load(std::memory_order_relaxed);
  }

  [[nodiscard]] bool fires(std::string_view point,
                           std::string_view key = {}) const;

 private:
  FaultInjector();

  struct Rule {
    std::string point;
    std::string filter;  ///< Empty: any key at this point fires.
    std::uint64_t limit = 0;  ///< 0 = unlimited; else max fires.
    std::uint64_t fired = 0;  ///< Fires consumed (when limit > 0).
  };

  mutable std::mutex mutex_;
  mutable std::vector<Rule> rules_;
  std::atomic<bool> enabled_{false};
  std::string config_error_;
};

/// Fault hook for parallel_for workers: throws FitFailure(kWorkerFailed)
/// when the "parallel.worker" point fires for "index=<i>". No-op (one
/// relaxed atomic load) when injection is off.
inline void throw_if_worker_fault(std::size_t index) {
  FaultInjector& injector = FaultInjector::instance();
  if (!injector.enabled()) return;
  const std::string key = "index=" + std::to_string(index);
  if (injector.fires("parallel.worker", key)) {
    throw FitFailure(FitError::kWorkerFailed,
                     "injected fault: parallel.worker " + key);
  }
}

}  // namespace acbm::core
