#include "core/temporal_model.h"

#include <cmath>
#include <sstream>
#include <stdexcept>
#include <string>

#include "core/durable.h"
#include "stats/descriptive.h"
#include "stats/serialize.h"

namespace acbm::core {

namespace {
std::span<const double> pick(const FamilySeries& fs, TemporalSeries which) {
  switch (which) {
    case TemporalSeries::kMagnitude: return fs.magnitude;
    case TemporalSeries::kActivity: return fs.activity;
    case TemporalSeries::kNormMagnitude: return fs.norm_magnitude;
    case TemporalSeries::kSourceCoeff: return fs.source_coeff;
    case TemporalSeries::kInterval: return fs.interval_s;
    case TemporalSeries::kHour: return fs.hour;
  }
  throw std::invalid_argument("TemporalModel: unknown series");
}

const char* series_name(TemporalSeries which) {
  switch (which) {
    case TemporalSeries::kMagnitude: return "magnitude";
    case TemporalSeries::kActivity: return "activity";
    case TemporalSeries::kNormMagnitude: return "norm_magnitude";
    case TemporalSeries::kSourceCoeff: return "source_coeff";
    case TemporalSeries::kInterval: return "interval";
    case TemporalSeries::kHour: return "hour";
  }
  return "unknown";
}

/// Seasonal-naive rung: the lag in [2, min(n/2, 24)] with the strongest
/// positive autocorrelation, or 0 when nothing stands out (rung unusable).
std::size_t pick_seasonal_period(std::span<const double> xs) {
  const std::size_t max_lag = std::min<std::size_t>(xs.size() / 2, 24);
  if (max_lag < 2) return 0;
  const std::vector<double> rho = acbm::stats::acf(xs, max_lag);
  std::size_t best = 0;
  double best_rho = 0.2;  // Weak seasonality is worse than the plain mean.
  for (std::size_t lag = 2; lag < rho.size(); ++lag) {
    if (std::isfinite(rho[lag]) && rho[lag] > best_rho) {
      best = lag;
      best_rho = rho[lag];
    }
  }
  return best;
}

/// Predict-time repair: non-finite history values are replaced by the
/// fitted fallback mean, keeping positions (and output lengths) aligned.
std::span<const double> repair_history(std::span<const double> xs, double fill,
                                       std::vector<double>& storage) {
  if (all_finite(xs)) return xs;
  storage.assign(xs.begin(), xs.end());
  for (double& x : storage) {
    if (!std::isfinite(x)) x = fill;
  }
  return storage;
}
}  // namespace

const TemporalModel::SeriesModel& TemporalModel::series_model(
    TemporalSeries which) const {
  return models_[static_cast<std::size_t>(which)];
}

void TemporalModel::fit_one(TemporalSeries which,
                            std::span<const double> series) {
  SeriesModel& slot = models_[static_cast<std::size_t>(which)];
  slot.arima.reset();
  slot.seasonal_period = 0;
  slot.rung = FitRung::kMean;

  FitRecord record;
  record.component = series_name(which);
  const auto note = [&record](FitError error, const std::string& detail) {
    if (record.error) return;  // Keep the first (highest-rung) failure.
    record.error = error;
    record.detail = detail;
  };

  // Repair: strip non-finite observations before fitting anything.
  std::size_t dropped = 0;
  std::vector<double> cleaned;
  std::span<const double> work = series;
  if (!all_finite(series)) {
    cleaned = drop_nonfinite(series, &dropped);
    work = cleaned;
    note(FitError::kNonfiniteInput,
         "stripped " + std::to_string(dropped) + " non-finite values");
  }
  slot.fallback_mean = acbm::stats::mean(work);

  if (work.size() >= opts_.min_fit_length) {
    // Rung 1: the requested ARIMA. Skipped when the series needed repair —
    // stripping observations breaks the equal-spacing the order was chosen
    // for, so a repaired series starts at the conservative AR rung.
    if (dropped == 0) {
      try {
        if (opts_.auto_order) {
          if (auto best = ts::auto_arima(work, opts_.auto_options)) {
            slot.arima = std::move(best->model);
            slot.rung = FitRung::kArima;
          } else {
            note(FitError::kNonconvergence, "auto_arima: no candidate fit");
          }
        } else {
          ts::ArimaModel model(opts_.order);
          model.fit(work);
          slot.arima = std::move(model);
          slot.rung = FitRung::kArima;
        }
      } catch (const FitFailure& e) {
        note(e.code(), e.what());
      } catch (const std::invalid_argument& e) {
        note(FitError::kSeriesTooShort, e.what());
      } catch (const std::domain_error& e) {
        note(FitError::kSingularSystem, e.what());
      }
    }

    // Rung 2: AR(1) (stored as a degenerate ARIMA so forecasting and
    // serialization reuse the arima slot).
    if (!slot.arima) {
      try {
        ts::ArimaModel ar({1, 0, 0});
        ar.fit(work);
        slot.arima = std::move(ar);
        slot.rung = FitRung::kAr;
      } catch (const std::invalid_argument&) {
      } catch (const std::domain_error&) {
      }
    }

    // Rung 3: seasonal-naive, when the series has a usable period.
    if (!slot.arima) {
      slot.seasonal_period = pick_seasonal_period(work);
      if (slot.seasonal_period > 0) slot.rung = FitRung::kSeasonalNaive;
    }
  } else {
    note(FitError::kSeriesTooShort,
         "length " + std::to_string(work.size()) + " < " +
             std::to_string(opts_.min_fit_length));
  }

  // Rung 4 (mean) is the slot's default state.
  record.rung = slot.rung;
  report_.add(std::move(record));
}

void TemporalModel::fit(const FamilySeries& train) {
  report_.clear();
  for (std::size_t s = 0; s < kTemporalSeriesCount; ++s) {
    fit_one(static_cast<TemporalSeries>(s),
            pick(train, static_cast<TemporalSeries>(s)));
  }
  fitted_ = true;
}

std::vector<double> TemporalModel::one_step_predictions(
    TemporalSeries which, std::span<const double> full_series,
    std::size_t start) const {
  if (!fitted_) throw std::logic_error("TemporalModel: not fitted");
  if (start == 0 || start > full_series.size()) {
    throw std::invalid_argument("TemporalModel::one_step_predictions: bad start");
  }
  const SeriesModel& slot = series_model(which);
  std::vector<double> storage;
  const std::span<const double> series =
      repair_history(full_series, slot.fallback_mean, storage);
  if (slot.arima && start > slot.arima->order().d) {
    return slot.arima->one_step_predictions(series, start);
  }
  if (slot.seasonal_period > 0) {
    std::vector<double> preds;
    preds.reserve(series.size() - start);
    for (std::size_t t = start; t < series.size(); ++t) {
      preds.push_back(t >= slot.seasonal_period
                          ? series[t - slot.seasonal_period]
                          : slot.fallback_mean);
    }
    return preds;
  }
  return std::vector<double>(full_series.size() - start, slot.fallback_mean);
}

double TemporalModel::forecast_next(TemporalSeries which,
                                    std::span<const double> history) const {
  if (!fitted_) throw std::logic_error("TemporalModel: not fitted");
  const SeriesModel& slot = series_model(which);
  std::vector<double> storage;
  const std::span<const double> series =
      repair_history(history, slot.fallback_mean, storage);
  if (slot.arima && series.size() > slot.arima->order().d) {
    return slot.arima->forecast_one(series);
  }
  if (slot.seasonal_period > 0 && series.size() >= slot.seasonal_period) {
    return series[series.size() - slot.seasonal_period];
  }
  return slot.fallback_mean;
}

double TemporalModel::forecast_horizon(TemporalSeries which,
                                       std::span<const double> history,
                                       std::size_t horizon,
                                       std::size_t max_horizon) const {
  if (!fitted_) throw std::logic_error("TemporalModel: not fitted");
  if (horizon == 0) {
    throw std::invalid_argument("TemporalModel::forecast_horizon: horizon 0");
  }
  const SeriesModel& slot = series_model(which);
  std::vector<double> storage;
  const std::span<const double> series =
      repair_history(history, slot.fallback_mean, storage);
  const std::size_t h = std::min(horizon, std::max<std::size_t>(max_horizon, 1));
  if (slot.arima && series.size() > slot.arima->order().d) {
    return slot.arima->forecast(series, h).back();
  }
  if (slot.seasonal_period > 0 && series.size() >= slot.seasonal_period) {
    // Seasonal naive: repeat the value one whole period back from the
    // forecast position.
    const std::size_t idx =
        series.size() - slot.seasonal_period + ((h - 1) % slot.seasonal_period);
    return series[idx];
  }
  return slot.fallback_mean;
}

const std::optional<ts::ArimaModel>& TemporalModel::model(
    TemporalSeries which) const {
  return series_model(which).arima;
}

FitRung TemporalModel::rung(TemporalSeries which) const {
  return series_model(which).rung;
}

double TemporalModel::fallback_mean(TemporalSeries which) const {
  return series_model(which).fallback_mean;
}

std::size_t TemporalModel::seasonal_period(TemporalSeries which) const {
  return series_model(which).seasonal_period;
}

void TemporalModel::save(std::ostream& os) const {
  namespace io = acbm::stats::io;
  io::write_header(os, "temporal", 2);
  io::write_scalar(os, "fitted", fitted_ ? 1 : 0);
  io::write_scalar(os, "series_count", models_.size());
  for (const SeriesModel& slot : models_) {
    io::write_scalar(os, "fallback_mean", slot.fallback_mean);
    io::write_scalar(os, "rung", static_cast<int>(slot.rung));
    io::write_scalar(os, "seasonal_period", slot.seasonal_period);
    io::write_scalar(os, "has_arima", slot.arima.has_value() ? 1 : 0);
    if (slot.arima) slot.arima->save(os);
  }
}

void TemporalModel::save_framed(std::ostream& os) const {
  std::ostringstream body;
  save(body);
  os << durable::frame_payload("temporal", 3, body.str());
}

TemporalModel TemporalModel::load_framed(std::istream& is) {
  return durable::load_framed_stream(
      is, "temporal", 3, 3, [](std::istream& body) { return load(body); });
}

TemporalModel TemporalModel::load(std::istream& is) {
  namespace io = acbm::stats::io;
  io::expect_header(is, "temporal", 2);
  TemporalModel model;
  model.fitted_ = io::read_scalar<int>(is, "fitted") != 0;
  const auto count = io::read_scalar<std::size_t>(is, "series_count");
  if (count != kTemporalSeriesCount) {
    throw std::invalid_argument("TemporalModel::load: series count mismatch");
  }
  for (SeriesModel& slot : model.models_) {
    slot.fallback_mean = io::read_scalar<double>(is, "fallback_mean");
    const int rung = io::read_scalar<int>(is, "rung");
    if (rung < 0 || rung > static_cast<int>(FitRung::kPooledLinear)) {
      throw std::invalid_argument("TemporalModel::load: bad rung");
    }
    slot.rung = static_cast<FitRung>(rung);
    slot.seasonal_period = io::read_scalar<std::size_t>(is, "seasonal_period");
    if (io::read_scalar<int>(is, "has_arima") != 0) {
      slot.arima = ts::ArimaModel::load(is);
    }
  }
  return model;
}

}  // namespace acbm::core
