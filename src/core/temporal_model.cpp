#include "core/temporal_model.h"

#include <stdexcept>

#include "stats/descriptive.h"
#include "stats/serialize.h"

namespace acbm::core {

namespace {
std::span<const double> pick(const FamilySeries& fs, TemporalSeries which) {
  switch (which) {
    case TemporalSeries::kMagnitude: return fs.magnitude;
    case TemporalSeries::kActivity: return fs.activity;
    case TemporalSeries::kNormMagnitude: return fs.norm_magnitude;
    case TemporalSeries::kSourceCoeff: return fs.source_coeff;
    case TemporalSeries::kInterval: return fs.interval_s;
    case TemporalSeries::kHour: return fs.hour;
  }
  throw std::invalid_argument("TemporalModel: unknown series");
}
}  // namespace

const TemporalModel::SeriesModel& TemporalModel::series_model(
    TemporalSeries which) const {
  return models_[static_cast<std::size_t>(which)];
}

void TemporalModel::fit_one(TemporalSeries which,
                            std::span<const double> series) {
  SeriesModel& slot = models_[static_cast<std::size_t>(which)];
  slot.fallback_mean = acbm::stats::mean(series);
  slot.arima.reset();
  if (series.size() < opts_.min_fit_length) return;

  if (opts_.auto_order) {
    if (auto best = ts::auto_arima(series, opts_.auto_options)) {
      slot.arima = std::move(best->model);
    }
    return;
  }
  ts::ArimaModel model(opts_.order);
  try {
    model.fit(series);
    slot.arima = std::move(model);
  } catch (const std::invalid_argument&) {
    // Series too short or degenerate for the requested order: mean fallback.
  } catch (const std::domain_error&) {
  }
}

void TemporalModel::fit(const FamilySeries& train) {
  for (std::size_t s = 0; s < kTemporalSeriesCount; ++s) {
    fit_one(static_cast<TemporalSeries>(s),
            pick(train, static_cast<TemporalSeries>(s)));
  }
  fitted_ = true;
}

std::vector<double> TemporalModel::one_step_predictions(
    TemporalSeries which, std::span<const double> full_series,
    std::size_t start) const {
  if (!fitted_) throw std::logic_error("TemporalModel: not fitted");
  if (start == 0 || start > full_series.size()) {
    throw std::invalid_argument("TemporalModel::one_step_predictions: bad start");
  }
  const SeriesModel& slot = series_model(which);
  if (slot.arima && start > slot.arima->order().d) {
    return slot.arima->one_step_predictions(full_series, start);
  }
  return std::vector<double>(full_series.size() - start, slot.fallback_mean);
}

double TemporalModel::forecast_next(TemporalSeries which,
                                    std::span<const double> history) const {
  if (!fitted_) throw std::logic_error("TemporalModel: not fitted");
  const SeriesModel& slot = series_model(which);
  if (slot.arima && history.size() > slot.arima->order().d) {
    return slot.arima->forecast_one(history);
  }
  return slot.fallback_mean;
}

double TemporalModel::forecast_horizon(TemporalSeries which,
                                       std::span<const double> history,
                                       std::size_t horizon,
                                       std::size_t max_horizon) const {
  if (!fitted_) throw std::logic_error("TemporalModel: not fitted");
  if (horizon == 0) {
    throw std::invalid_argument("TemporalModel::forecast_horizon: horizon 0");
  }
  const SeriesModel& slot = series_model(which);
  const std::size_t h = std::min(horizon, std::max<std::size_t>(max_horizon, 1));
  if (slot.arima && history.size() > slot.arima->order().d) {
    return slot.arima->forecast(history, h).back();
  }
  return slot.fallback_mean;
}

const std::optional<ts::ArimaModel>& TemporalModel::model(
    TemporalSeries which) const {
  return series_model(which).arima;
}

void TemporalModel::save(std::ostream& os) const {
  namespace io = acbm::stats::io;
  io::write_header(os, "temporal", 1);
  io::write_scalar(os, "fitted", fitted_ ? 1 : 0);
  io::write_scalar(os, "series_count", models_.size());
  for (const SeriesModel& slot : models_) {
    io::write_scalar(os, "fallback_mean", slot.fallback_mean);
    io::write_scalar(os, "has_arima", slot.arima.has_value() ? 1 : 0);
    if (slot.arima) slot.arima->save(os);
  }
}

TemporalModel TemporalModel::load(std::istream& is) {
  namespace io = acbm::stats::io;
  io::expect_header(is, "temporal", 1);
  TemporalModel model;
  model.fitted_ = io::read_scalar<int>(is, "fitted") != 0;
  const auto count = io::read_scalar<std::size_t>(is, "series_count");
  if (count != kTemporalSeriesCount) {
    throw std::invalid_argument("TemporalModel::load: series count mismatch");
  }
  for (SeriesModel& slot : model.models_) {
    slot.fallback_mean = io::read_scalar<double>(is, "fallback_mean");
    if (io::read_scalar<int>(is, "has_arima") != 0) {
      slot.arima = ts::ArimaModel::load(is);
    }
  }
  return model;
}

}  // namespace acbm::core
