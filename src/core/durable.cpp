#include "core/durable.h"

#include <array>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>
#include <system_error>

#include "core/durable_dispatch.h"
#include "core/robust.h"

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#define ACBM_POSIX_IO 1
#endif

#if defined(ACBM_HAVE_CRC_ARMV8_TU) && defined(__linux__)
#include <sys/auxv.h>
#ifndef HWCAP_CRC32
#define HWCAP_CRC32 (1 << 7)
#endif
#endif

namespace acbm::core::durable {

namespace {

/// CRC32C (Castagnoli, reflected polynomial 0x82F63B78) lookup table.
constexpr std::array<std::uint32_t, 256> make_crc32c_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc >> 1) ^ ((crc & 1U) ? 0x82F63B78U : 0U);
    }
    table[i] = crc;
  }
  return table;
}

constexpr std::array<std::uint32_t, 256> kCrc32cTable = make_crc32c_table();

std::uint32_t crc32c_raw_table(const unsigned char* data, std::size_t n,
                               std::uint32_t crc) {
  while (n-- > 0) {
    crc = (crc >> 8) ^ kCrc32cTable[(crc ^ *data++) & 0xFFU];
  }
  return crc;
}

/// Hardware CRC32C when the arch TU was built AND the CPU supports it AND
/// ACBM_SIMD is not forced off (same kill switch as the stats kernels);
/// null means "use the table". Probed once, first use.
detail::CrcRawFn pick_crc_raw() noexcept {
  const char* simd = std::getenv("ACBM_SIMD");
  if (simd != nullptr) {
    const std::string_view s{simd};
    if (s == "0" || s == "off" || s == "OFF" || s == "scalar") return nullptr;
  }
#if defined(ACBM_HAVE_CRC_SSE42_TU)
  if (__builtin_cpu_supports("sse4.2")) return detail::crc32c_sse42();
#elif defined(ACBM_HAVE_CRC_ARMV8_TU) && defined(__linux__)
  if ((getauxval(AT_HWCAP) & HWCAP_CRC32) != 0) return detail::crc32c_armv8();
#endif
  return nullptr;
}

[[nodiscard]] std::string hex_digits(std::uint64_t value, int digits) {
  static constexpr char kHex[] = "0123456789abcdef";
  std::string out(static_cast<std::size_t>(digits), '0');
  for (int i = digits - 1; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = kHex[value & 0xF];
    value >>= 4;
  }
  return out;
}

}  // namespace

std::uint32_t crc32c(std::string_view data, std::uint32_t crc) noexcept {
  static const detail::CrcRawFn hw = pick_crc_raw();
  crc = ~crc;
  const auto* bytes = reinterpret_cast<const unsigned char*>(data.data());
  crc = hw != nullptr ? hw(bytes, data.size(), crc)
                      : crc32c_raw_table(bytes, data.size(), crc);
  return ~crc;
}

std::uint64_t fnv1a64(std::string_view data, std::uint64_t hash) noexcept {
  for (unsigned char byte : data) {
    hash ^= byte;
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

std::string to_hex(std::uint64_t value) { return hex_digits(value, 16); }
std::string to_hex(std::uint32_t value) { return hex_digits(value, 8); }

const char* to_string(LoadError error) noexcept {
  switch (error) {
    case LoadError::kIo: return "io";
    case LoadError::kTruncated: return "truncated";
    case LoadError::kBadChecksum: return "bad_checksum";
    case LoadError::kBadMagic: return "bad_magic";
    case LoadError::kVersionUnsupported: return "version_unsupported";
    case LoadError::kParse: return "parse";
  }
  return "unknown";
}

std::string frame_payload(std::string_view kind, int version,
                          std::string_view payload) {
  if (kind.empty() || kind.find_first_of(" \n") != std::string_view::npos) {
    throw std::invalid_argument("frame_payload: kind must be a single token");
  }
  std::string out;
  out.reserve(payload.size() + kind.size() + 64);
  out += kFrameMagic;
  out += ' ';
  out += kind;
  out += " v";
  out += std::to_string(version);
  out += " len=";
  out += std::to_string(payload.size());
  out += " crc32c=";
  out += to_hex(crc32c(payload));
  out += '\n';
  out += payload;
  return out;
}

bool looks_framed(std::string_view data) noexcept {
  return data.substr(0, kFrameMagic.size()) == kFrameMagic;
}

Frame parse_frame(std::string_view data) {
  FrameView view = parse_frame_view(data);
  Frame frame;
  frame.kind = std::move(view.kind);
  frame.version = view.version;
  frame.payload = std::string(view.payload);
  return frame;
}

FrameView parse_frame_view(std::string_view data) {
  if (!looks_framed(data)) {
    throw LoadFailure(LoadError::kBadMagic,
                      "durable: not a framed artifact (missing " +
                          std::string(kFrameMagic) + " magic)");
  }
  const std::size_t eol = data.find('\n');
  if (eol == std::string_view::npos) {
    throw LoadFailure(LoadError::kTruncated,
                      "durable: frame header line is truncated");
  }
  std::istringstream header{std::string(data.substr(0, eol))};
  std::string magic;
  std::string kind;
  std::string vtok;
  std::string lentok;
  std::string crctok;
  header >> magic >> kind >> vtok >> lentok >> crctok;
  if (header.fail() || kind.empty() || vtok.size() < 2 || vtok[0] != 'v' ||
      lentok.rfind("len=", 0) != 0 || crctok.rfind("crc32c=", 0) != 0) {
    throw LoadFailure(LoadError::kParse, "durable: malformed frame header '" +
                                             std::string(data.substr(0, eol)) +
                                             "'");
  }
  FrameView frame;
  frame.kind = kind;
  std::size_t length = 0;
  std::uint32_t expected_crc = 0;
  try {
    frame.version = std::stoi(vtok.substr(1));
    length = std::stoull(lentok.substr(4));
    expected_crc =
        static_cast<std::uint32_t>(std::stoul(crctok.substr(7), nullptr, 16));
  } catch (const std::exception&) {
    throw LoadFailure(LoadError::kParse, "durable: malformed frame header '" +
                                             std::string(data.substr(0, eol)) +
                                             "'");
  }
  const std::string_view payload = data.substr(eol + 1);
  if (payload.size() < length) {
    throw LoadFailure(
        LoadError::kTruncated,
        "durable: frame promises " + std::to_string(length) + " payload bytes, "
            "found " + std::to_string(payload.size()));
  }
  if (payload.size() > length) {
    throw LoadFailure(LoadError::kParse,
                      "durable: " + std::to_string(payload.size() - length) +
                          " trailing byte(s) after framed payload");
  }
  const std::uint32_t actual_crc = crc32c(payload);
  if (actual_crc != expected_crc) {
    throw LoadFailure(LoadError::kBadChecksum,
                      "durable: payload CRC32C mismatch (expected " +
                          to_hex(expected_crc) + ", got " + to_hex(actual_crc) +
                          ")");
  }
  frame.payload = payload;
  return frame;
}

std::string unwrap(std::string_view data, std::string_view kind,
                   int min_version, int max_version) {
  Frame frame = parse_frame(data);
  if (frame.kind != kind) {
    throw LoadFailure(LoadError::kParse, "durable: expected kind '" +
                                             std::string(kind) + "', got '" +
                                             frame.kind + "'");
  }
  if (frame.version < min_version || frame.version > max_version) {
    throw LoadFailure(LoadError::kVersionUnsupported,
                      "durable: " + frame.kind + " v" +
                          std::to_string(frame.version) +
                          " is outside the supported range [v" +
                          std::to_string(min_version) + ", v" +
                          std::to_string(max_version) + "]");
  }
  return std::move(frame.payload);
}

MappedFile::MappedFile(const std::filesystem::path& path) {
#if defined(ACBM_POSIX_IO)
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    throw LoadFailure(LoadError::kIo, "durable: cannot open " + path.string() +
                                          ": " + std::strerror(errno));
  }
  struct ::stat st{};
  if (::fstat(fd, &st) != 0) {
    const int err = errno;
    ::close(fd);
    throw LoadFailure(LoadError::kIo, "durable: cannot stat " + path.string() +
                                          ": " + std::strerror(err));
  }
  size_ = static_cast<std::size_t>(st.st_size);
  if (size_ == 0) {
    // mmap rejects zero-length mappings; an empty file is a valid (empty)
    // view.
    ::close(fd);
    mapped_ = true;
    return;
  }
  void* addr = ::mmap(nullptr, size_, PROT_READ, MAP_PRIVATE, fd, 0);
  ::close(fd);
  if (addr == MAP_FAILED) {
    throw LoadFailure(LoadError::kIo, "durable: cannot mmap " + path.string() +
                                          ": " + std::strerror(errno));
  }
  addr_ = addr;
  mapped_ = true;
#else
  throw LoadFailure(LoadError::kIo,
                    "durable: memory mapping unsupported on this platform (" +
                        path.string() + ")");
#endif
}

MappedFile::MappedFile(MappedFile&& other) noexcept
    : addr_(other.addr_), size_(other.size_), mapped_(other.mapped_) {
  other.addr_ = nullptr;
  other.size_ = 0;
  other.mapped_ = false;
}

MappedFile& MappedFile::operator=(MappedFile&& other) noexcept {
  if (this != &other) {
    this->~MappedFile();
    addr_ = other.addr_;
    size_ = other.size_;
    mapped_ = other.mapped_;
    other.addr_ = nullptr;
    other.size_ = 0;
    other.mapped_ = false;
  }
  return *this;
}

MappedFile::~MappedFile() {
#if defined(ACBM_POSIX_IO)
  if (addr_ != nullptr) ::munmap(addr_, size_);
#endif
  addr_ = nullptr;
  size_ = 0;
  mapped_ = false;
}

FramedView load_framed_view(const std::filesystem::path& path,
                            std::string_view kind, int min_version,
                            int max_version) {
  FramedView out;
  out.file = MappedFile(path);
  FrameView frame = parse_frame_view(out.file.view());
  if (frame.kind != kind) {
    throw LoadFailure(LoadError::kParse, "durable: expected kind '" +
                                             std::string(kind) + "', got '" +
                                             frame.kind + "'");
  }
  if (frame.version < min_version || frame.version > max_version) {
    throw LoadFailure(LoadError::kVersionUnsupported,
                      "durable: " + frame.kind + " v" +
                          std::to_string(frame.version) +
                          " is outside the supported range [v" +
                          std::to_string(min_version) + ", v" +
                          std::to_string(max_version) + "]");
  }
  out.kind = std::move(frame.kind);
  out.version = frame.version;
  out.payload = frame.payload;
  return out;
}

std::string read_file(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw LoadFailure(LoadError::kIo,
                      "durable: cannot open " + path.string());
  }
  std::ostringstream contents;
  contents << in.rdbuf();
  if (in.bad()) {
    throw LoadFailure(LoadError::kIo, "durable: read error on " +
                                          path.string());
  }
  return contents.str();
}

std::string read_stream(std::istream& is) {
  std::ostringstream contents;
  contents << is.rdbuf();
  return contents.str();
}

void atomic_write_file(const std::filesystem::path& path,
                       std::string_view contents) {
  const std::filesystem::path tmp = path.string() + ".tmp";
  FaultInjector& injector = FaultInjector::instance();
  const std::string key = "path=" + path.string();
  // Crash injection: write only half the payload, skip the rename, throw.
  // The final name keeps its previous content (or stays absent) — exactly
  // what a kill between write() calls produces.
  const bool crash_write = injector.enabled() && injector.fires("io.write", key);
  const std::size_t write_len =
      crash_write ? contents.size() / 2 : contents.size();

#ifdef ACBM_POSIX_IO
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    throw WriteFailure("durable: cannot create " + tmp.string() + ": " +
                       std::strerror(errno));
  }
  std::size_t written = 0;
  while (written < write_len) {
    const ::ssize_t n =
        ::write(fd, contents.data() + written, write_len - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      const int saved = errno;
      ::close(fd);
      throw WriteFailure("durable: write failed on " + tmp.string() + ": " +
                         std::strerror(saved));
    }
    written += static_cast<std::size_t>(n);
  }
  if (crash_write) {
    ::close(fd);
    throw WriteFailure("injected fault: io.write " + key);
  }
  if (injector.enabled() && injector.fires("io.fsync", key)) {
    ::close(fd);
    throw WriteFailure("injected fault: io.fsync " + key);
  }
  if (::fsync(fd) != 0) {
    const int saved = errno;
    ::close(fd);
    throw WriteFailure("durable: fsync failed on " + tmp.string() + ": " +
                       std::strerror(saved));
  }
  ::close(fd);
#else
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) throw WriteFailure("durable: cannot create " + tmp.string());
    out.write(contents.data(), static_cast<std::streamsize>(write_len));
    out.flush();
    if (!out) throw WriteFailure("durable: write failed on " + tmp.string());
  }
  if (crash_write) throw WriteFailure("injected fault: io.write " + key);
  if (injector.enabled() && injector.fires("io.fsync", key)) {
    throw WriteFailure("injected fault: io.fsync " + key);
  }
#endif

  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    throw WriteFailure("durable: rename " + tmp.string() + " -> " +
                       path.string() + " failed: " + ec.message());
  }

  // Crash window between the rename and the directory fsync: the rename is
  // visible to this process but a power loss could still roll it back. The
  // injected fault throws here so callers observe "write failed" while the
  // file may or may not exist under the final name — exactly the ambiguity
  // a real crash produces; recovery must converge either way.
  if (injector.enabled() && injector.fires("io.dirsync", key)) {
    throw WriteFailure("injected fault: io.dirsync " + key);
  }

#ifdef ACBM_POSIX_IO
  // Durability of the rename itself: fsync the containing directory. Without
  // this a power loss after the rename can lose the just-published artifact
  // (the rename lives only in the directory's in-memory metadata).
  const std::filesystem::path dir =
      path.has_parent_path() ? path.parent_path() : std::filesystem::path(".");
  const int dirfd = ::open(dir.c_str(), O_RDONLY);
  if (dirfd < 0) {
    throw WriteFailure("durable: cannot open directory " + dir.string() +
                       " for fsync: " + std::strerror(errno));
  }
  if (::fsync(dirfd) != 0) {
    const int saved = errno;
    ::close(dirfd);
    // EINVAL: the filesystem genuinely does not support directory fsync
    // (some network/FUSE mounts); there is no stronger primitive available,
    // so publication proceeds. Any other errno is a real durability failure.
    if (saved != EINVAL) {
      throw WriteFailure("durable: directory fsync failed on " + dir.string() +
                         ": " + std::strerror(saved));
    }
  } else {
    ::close(dirfd);
  }
#endif
}

void save_artifact(const std::filesystem::path& path, std::string_view kind,
                   int version, std::string_view payload) {
  atomic_write_file(path, frame_payload(kind, version, payload));
}

void LoadReport::write(std::ostream& os) const {
  for (const LoadEvent& event : events) {
    os << "corrupt artifact: " << event.path << " (" << to_string(event.error);
    if (!event.detail.empty()) os << ": " << event.detail;
    os << ")";
    if (!event.quarantined_to.empty()) {
      os << " quarantined to " << event.quarantined_to;
    }
    os << '\n';
  }
  if (legacy) os << "loaded legacy unframed artifact\n";
  if (generation > 0) {
    os << "fell back to checkpoint generation " << generation << '\n';
  }
}

std::filesystem::path quarantine(const std::filesystem::path& path) {
  for (int n = 1; n < 10000; ++n) {
    const std::filesystem::path dest =
        path.string() + ".corrupt-" + std::to_string(n);
    std::error_code ec;
    if (std::filesystem::exists(dest, ec)) continue;
    std::filesystem::rename(path, dest, ec);
    if (!ec) return dest;
    return {};  // Rename failed (permissions?); leave the file in place.
  }
  return {};
}

std::string load_artifact(const std::filesystem::path& path,
                          std::string_view kind, int min_version,
                          int max_version, bool legacy_ok, LoadReport* report,
                          bool quarantine_on_error) {
  const std::string data = read_file(path);
  if (!looks_framed(data)) {
    if (legacy_ok) {
      if (report != nullptr) report->legacy = true;
      return data;
    }
    throw LoadFailure(LoadError::kBadMagic,
                      "durable: " + path.string() + " is not a framed " +
                          std::string(kind) + " artifact");
  }
  try {
    return unwrap(data, kind, min_version, max_version);
  } catch (const LoadFailure& e) {
    // A merely-newer schema is an intact file: report, don't quarantine.
    if (e.code() == LoadError::kVersionUnsupported) {
      throw LoadFailure(e.code(), path.string() + ": " + e.what());
    }
    if (!quarantine_on_error) {
      throw LoadFailure(e.code(), path.string() + ": " + e.what());
    }
    const std::filesystem::path dest = quarantine(path);
    if (report != nullptr) {
      report->events.push_back(
          {path.string(), e.code(), e.what(), dest.string()});
    }
    std::string detail = path.string() + ": " + e.what();
    if (!dest.empty()) detail += " (quarantined to " + dest.string() + ")";
    throw LoadFailure(e.code(), detail);
  }
}

}  // namespace acbm::core::durable
