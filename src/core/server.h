// Batched concurrent forecast daemon over mmap'd serving models
// (core/serving.h).
//
// Architecture: one IO/reactor thread (poll + self-pipe wakeup,
// non-blocking sockets, per-connection read/write buffers, slow-loris
// timeout), a worker pool draining a shared request queue in per-tick
// batches with identical (model, asn, precision) requests coalesced to a
// single forecast, a registry of resident models bounded by an LRU, and a
// watcher thread that polls each artifact path and atomically swaps in a
// new generation on change — in-flight requests keep their shared_ptr
// snapshot, so a swap never drops or corrupts a response.
//
// Wire protocol (all integers little-endian):
//   request  := u32 body_len | u32 magic 'ACBQ' | u8 opcode | u8 precision
//               | u16 name_len | name bytes | payload
//   response := u32 body_len | u32 magic 'ACBR' | u8 status | u8 opcode
//               | u16 reserved | payload
// Opcodes: 0 ping, 1 predict (payload u32 target asn), 2 list, 3 stats.
// Status: 0 ok, 1 no prediction, 2 unknown model, 3 bad request,
// 4 too large, 5 internal error. Any malformed body yields a clean
// kBadRequest frame and the connection is closed (resync after garbage is
// impossible in a length-prefixed stream). Body length is capped at 1 MiB.
#pragma once

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "core/inference.h"
#include "core/pipeline.h"
#include "core/serving.h"

namespace acbm::core::serve {

inline constexpr std::uint32_t kRequestMagic = 0x51424341u;   // "ACBQ".
inline constexpr std::uint32_t kResponseMagic = 0x52424341u;  // "ACBR".
inline constexpr std::uint32_t kMaxBody = 1u << 20;

enum class Opcode : std::uint8_t {
  kPing = 0,
  kPredict = 1,
  kList = 2,
  kStats = 3,
};

enum class Status : std::uint8_t {
  kOk = 0,
  kNoPrediction = 1,
  kUnknownModel = 2,
  kBadRequest = 3,
  kTooLarge = 4,
  kInternal = 5,
};

[[nodiscard]] std::string_view status_name(Status status) noexcept;

/// A decoded predict response.
struct PredictResult {
  AttackPrediction prediction;
  std::string family_name;
  /// source_distribution flattened and sorted ascending by ASN (the wire
  /// order; the map in `prediction` holds the same entries).
  std::vector<std::pair<net::Asn, double>> sources;
};

// --- Wire codec (shared by server, client, and the protocol tests) ---------

/// Encodes a full request frame (length prefix included).
[[nodiscard]] std::string encode_request(Opcode opcode, Precision precision,
                                         std::string_view model,
                                         std::string_view payload);

/// Encodes a full response frame (length prefix included).
[[nodiscard]] std::string encode_response(Status status, Opcode opcode,
                                          std::string_view payload);

/// Serializes a prediction into a predict-response payload.
[[nodiscard]] std::string encode_prediction(const AttackPrediction& pred,
                                            std::string_view family_name);

/// Parses a predict-response payload. Throws std::invalid_argument on a
/// malformed payload.
[[nodiscard]] PredictResult decode_prediction(std::string_view payload);

struct ServerOptions {
  /// Unix socket path; empty disables the Unix listener.
  std::filesystem::path socket_path;
  /// TCP port on 127.0.0.1; 0 disables, -1 asks for an ephemeral port
  /// (readable from Server::tcp_port() after start()).
  int tcp_port = 0;
  /// name -> artifact path (.armm or framed .art).
  std::vector<std::pair<std::string, std::filesystem::path>> models;
  std::size_t threads = 4;       ///< Worker pool size.
  std::size_t max_resident = 8;  ///< LRU bound on loaded models.
  bool batching = true;          ///< Coalesce per-tick duplicate requests.
  std::size_t max_batch = 64;    ///< Requests drained per worker tick.
  /// Artifact watch poll interval; 0 disables hot swap.
  std::size_t watch_interval_ms = 200;
  /// Close a connection whose partial frame or blocked write makes no
  /// progress for this long (slow-loris guard).
  std::size_t io_timeout_ms = 5000;
  /// Close fully idle connections after this long; 0 = never.
  std::size_t idle_timeout_ms = 0;
  /// Preload every registered model at start() instead of on first use.
  bool preload = false;
};

/// Point-in-time daemon counters (the stats opcode reports these).
struct ServerStats {
  std::uint64_t requests = 0;
  std::uint64_t batches = 0;
  std::uint64_t coalesced = 0;  ///< Requests answered by a shared forecast.
  std::uint64_t errors = 0;     ///< Non-kOk responses.
  std::uint64_t lru_hits = 0;
  std::uint64_t lru_misses = 0;
  std::uint64_t lru_evictions = 0;
  std::uint64_t swaps = 0;      ///< Generation hot-swaps applied.
};

class Server {
 public:
  explicit Server(ServerOptions opts);
  ~Server();
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds the listeners, loads (or lazily registers) the models, and
  /// spawns the IO, worker, and watcher threads. Throws std::runtime_error
  /// on bind failure. Returns once the server is accepting connections.
  void start();

  /// Graceful shutdown: stops accepting, completes queued work with error
  /// responses dropped connections tolerate, joins all threads. Idempotent.
  void stop();

  [[nodiscard]] bool running() const noexcept { return running_.load(); }
  /// Bound TCP port (after start(); 0 when the TCP listener is disabled).
  [[nodiscard]] int tcp_port() const noexcept { return bound_port_; }
  [[nodiscard]] const std::filesystem::path& socket_path() const noexcept;

  [[nodiscard]] ServerStats stats() const;
  /// Generation counter of one model (0 = never loaded); for swap tests.
  [[nodiscard]] std::uint64_t generation(std::string_view model) const;
  /// Blocks until `model`'s generation reaches at least `gen` or the
  /// timeout elapses; true on success. For swap-under-load tests.
  [[nodiscard]] bool wait_for_generation(std::string_view model,
                                         std::uint64_t gen,
                                         std::size_t timeout_ms) const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
  std::atomic<bool> running_{false};
  int bound_port_ = 0;
};

/// Minimal blocking client for the CLI, benches, and tests.
class Client {
 public:
  /// Connects to a Unix socket path.
  [[nodiscard]] static Client connect_unix(const std::filesystem::path& path);
  /// Connects to 127.0.0.1:port.
  [[nodiscard]] static Client connect_tcp(int port);
  Client(Client&& other) noexcept;
  Client& operator=(Client&& other) noexcept;
  ~Client();

  /// Sends one request frame and reads one response frame. Throws
  /// std::runtime_error on transport errors.
  struct Response {
    Status status = Status::kInternal;
    Opcode opcode = Opcode::kPing;
    std::string payload;
  };
  [[nodiscard]] Response request(Opcode opcode, Precision precision,
                                 std::string_view model,
                                 std::string_view payload);

  /// Predict helper: status + decoded result when status == kOk.
  [[nodiscard]] std::pair<Status, std::optional<PredictResult>> predict(
      std::string_view model, net::Asn asn,
      Precision precision = Precision::kF64);

  [[nodiscard]] Response ping();

  /// Writes raw bytes (protocol-robustness tests: garbage, truncated
  /// frames, slow-loris drips).
  void send_raw(std::string_view bytes);
  /// Reads one response frame off the wire (after send_raw).
  [[nodiscard]] Response read_response();
  /// Reads until EOF or error; returns bytes read (for tests asserting the
  /// server closed the connection).
  [[nodiscard]] std::string drain();

  [[nodiscard]] int fd() const noexcept { return fd_; }

 private:
  explicit Client(int fd) : fd_(fd) {}
  int fd_ = -1;
};

}  // namespace acbm::core::serve
