// Stage checkpointing for long pipeline runs: a run manifest (`run.json`) +
// append-only journal plus per-stage framed artifacts, all keyed by a
// content hash of the run's inputs and configuration. `acbm fit` and
// `acbm evaluate` point a CheckpointDir at --checkpoint-dir and, with
// --resume, skip per-family fits and per-horizon evaluations whose stage
// already completed — reaching the bit-identical final result an
// uninterrupted run produces.
//
// Recovery policy on load: a corrupt stage artifact is quarantined
// (`*.corrupt-<n>`), the newest valid generation (`.g1`, `.g2`, ...) is
// used instead, and when no generation survives the stage simply reruns.
//
// Fault point wired here (see robust.h FaultInjector):
//   checkpoint.stage   key "<stage>"  crash between the stage artifact
//                                     write and the manifest update
#pragma once

#include <cstdint>
#include <filesystem>
#include <map>
#include <optional>
#include <string>
#include <string_view>

#include "core/durable.h"

namespace acbm::core {

/// Abstract stage store threaded through fit/eval code. Implementations
/// must be used from one thread at a time (the pipeline checkpoints at
/// stage boundaries, outside its parallel sections).
class StageStore {
 public:
  virtual ~StageStore() = default;

  /// Payload of a completed stage, or nullopt when the stage has not
  /// completed (or every copy of its artifact was corrupt).
  [[nodiscard]] virtual std::optional<std::string> load(
      std::string_view stage) = 0;

  /// Durably records a completed stage and its artifact payload.
  virtual void store(std::string_view stage, std::string_view payload) = 0;
};

/// Filesystem-backed StageStore: one framed artifact per stage, a durable
/// `run.json` manifest naming the completed stages, and a `journal.log`
/// recording every store/load/recovery event.
class CheckpointDir final : public StageStore {
 public:
  struct Options {
    /// Content hash of the run's inputs + config. A manifest written under
    /// a different hash is stale: its stages are ignored.
    std::uint64_t config_hash = 0;
    /// Reuse compatible completed stages from a previous run. When false
    /// the manifest starts empty (prior artifacts rotate to generations).
    bool resume = false;
    /// Prior artifact copies kept per stage for corruption fallback.
    int keep_generations = 2;
  };

  CheckpointDir(std::filesystem::path dir, Options opts);

  [[nodiscard]] std::optional<std::string> load(std::string_view stage) override;
  void store(std::string_view stage, std::string_view payload) override;

  /// True when the manifest records the stage as completed under this run's
  /// config hash (the artifact may still turn out corrupt on load()).
  [[nodiscard]] bool is_complete(std::string_view stage) const;

  /// Recovery events accumulated across load() calls.
  [[nodiscard]] const durable::LoadReport& report() const noexcept {
    return report_;
  }

  [[nodiscard]] const std::filesystem::path& dir() const noexcept {
    return dir_;
  }

  /// Filesystem-safe stage name ('/' and other separators become '-').
  [[nodiscard]] static std::string slug(std::string_view stage);

 private:
  void read_manifest();
  void write_manifest();
  void journal(std::string_view line);
  [[nodiscard]] std::filesystem::path artifact_path(
      std::string_view stage) const;

  std::filesystem::path dir_;
  Options opts_;
  /// stage name -> payload CRC32C (ordered so run.json is deterministic).
  std::map<std::string, std::uint32_t> stages_;
  durable::LoadReport report_;
};

}  // namespace acbm::core
