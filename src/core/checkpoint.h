// Stage checkpointing for long pipeline runs: a run manifest (`run.json`) +
// append-only journal plus per-stage framed artifacts, all keyed by a
// content hash of the run's inputs and configuration. `acbm fit` and
// `acbm evaluate` point a CheckpointDir at --checkpoint-dir and, with
// --resume, skip per-family fits and per-horizon evaluations whose stage
// already completed — reaching the bit-identical final result an
// uninterrupted run produces.
//
// Recovery policy on load: a transiently unreadable artifact (a reader
// racing a concurrent publisher) is retried a bounded number of times
// first; a persistently corrupt copy is then quarantined
// (`*.corrupt-<n>`), the newest valid generation (`.g1`, `.g2`, ...) is
// used instead, and when no generation survives the stage simply reruns.
//
// Shared (multi-process) mode: with Options::shared the completion record
// moves from the single run.json manifest (which concurrent writers would
// clobber) to one durable `<slug>.done` marker file per stage, each
// carrying the run's config hash and the payload CRC. Stage artifacts are
// only ever written by the worker holding that shard's lease (core/shard.h),
// and every writer publishes deterministic, identical bytes, so even a
// stolen-lease double publish is benign.
//
// Fault points wired here (see robust.h FaultInjector):
//   checkpoint.stage   key "<stage>"  crash between the stage artifact
//                                     write and the manifest update
//   checkpoint.read    key "<stage>"  fail one artifact read attempt
//                                     (exercises the bounded retry)
#pragma once

#include <cstdint>
#include <filesystem>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/durable.h"

namespace acbm::core {

/// Abstract stage store threaded through fit/eval code. Implementations
/// must be used from one thread at a time (the pipeline checkpoints at
/// stage boundaries, outside its parallel sections).
class StageStore {
 public:
  virtual ~StageStore() = default;

  /// Payload of a completed stage, or nullopt when the stage has not
  /// completed (or every copy of its artifact was corrupt).
  [[nodiscard]] virtual std::optional<std::string> load(
      std::string_view stage) = 0;

  /// Durably records a completed stage and its artifact payload.
  virtual void store(std::string_view stage, std::string_view payload) = 0;
};

/// Filesystem-backed StageStore: one framed artifact per stage, a durable
/// `run.json` manifest naming the completed stages, and a `journal.log`
/// recording every store/load/recovery event.
class CheckpointDir final : public StageStore {
 public:
  struct Options {
    /// Content hash of the run's inputs + config. A manifest written under
    /// a different hash is stale: its stages are ignored.
    std::uint64_t config_hash = 0;
    /// Reuse compatible completed stages from a previous run. When false
    /// the manifest starts empty (prior artifacts rotate to generations).
    /// Ignored in shared mode, which always honors existing markers — a
    /// fresh shared run clears them first (ShardCoordinator does this).
    bool resume = false;
    /// Prior artifact copies kept per stage for corruption fallback.
    int keep_generations = 2;
    /// Multi-process mode: record stage completion in per-stage `.done`
    /// marker files instead of the (single-writer) run.json manifest.
    bool shared = false;
    /// Extra read attempts before a corrupt-looking artifact is condemned
    /// and quarantined. Covers a reader racing a concurrent publisher in
    /// shared mode; each retry backs off briefly.
    int read_retries = 2;
    /// Base backoff between read retries (0 disables the sleep for tests).
    int retry_backoff_ms = 2;
  };

  CheckpointDir(std::filesystem::path dir, Options opts);

  [[nodiscard]] std::optional<std::string> load(std::string_view stage) override;
  void store(std::string_view stage, std::string_view payload) override;

  /// True when the manifest records the stage as completed under this run's
  /// config hash (the artifact may still turn out corrupt on load()). In
  /// shared mode a stage unknown to this process is re-checked against its
  /// on-disk marker, so completions published by other workers are seen.
  [[nodiscard]] bool is_complete(std::string_view stage);

  /// Shared mode: rescans every `.done` marker in the directory, picking up
  /// stages other processes completed since construction. No-op otherwise.
  void refresh();

  /// Marks a completed stage stale so it reruns: forgets it in memory and
  /// removes its completion record (marker file in shared mode, manifest
  /// entry otherwise). The stage artifact itself is left in place — it
  /// simply rotates to a generation on the next store(). Used by the ingest
  /// drift loop to invalidate stages whose inputs changed. No-op when the
  /// stage was not complete.
  void invalidate(std::string_view stage);

  /// Names of the stages currently recorded complete (sorted). Shared mode
  /// callers wanting cross-process freshness should refresh() first.
  [[nodiscard]] std::vector<std::string> completed_stages() const;

  /// Recovery events accumulated across load() calls.
  [[nodiscard]] const durable::LoadReport& report() const noexcept {
    return report_;
  }

  [[nodiscard]] const std::filesystem::path& dir() const noexcept {
    return dir_;
  }

  /// Filesystem-safe stage name ('/' and other separators become '-').
  [[nodiscard]] static std::string slug(std::string_view stage);

 private:
  void read_manifest();
  void write_manifest();
  void journal(std::string_view line);
  [[nodiscard]] std::filesystem::path artifact_path(
      std::string_view stage) const;
  [[nodiscard]] std::filesystem::path marker_path(std::string_view stage) const;
  /// Shared mode: durably records `stage` as complete via its marker file.
  void write_marker(std::string_view stage, std::uint32_t crc);
  /// Shared mode: reads one stage's marker (config-hash checked) into
  /// stages_. Returns true when the stage is now known complete.
  bool read_marker(std::string_view stage);
  /// Shared mode: forgets a stage everywhere (memory + marker file) so
  /// every process reruns it.
  void drop_stage(const std::string& stage);

  std::filesystem::path dir_;
  Options opts_;
  /// stage name -> payload CRC32C (ordered so run.json is deterministic).
  std::map<std::string, std::uint32_t> stages_;
  durable::LoadReport report_;
};

}  // namespace acbm::core
