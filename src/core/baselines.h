// The naive comparison predictors from §VII-A: "Always Same" repeats the
// previous observation, "Always Mean" predicts the running mean of all
// history. The paper shows both lose badly to the data-driven models.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace acbm::core {

/// Walk-forward predictions of series[start..] where each prediction is the
/// immediately preceding observation. Requires 1 <= start <= series.size().
[[nodiscard]] std::vector<double> always_same_predictions(
    std::span<const double> series, std::size_t start);

/// Walk-forward predictions where each prediction is the mean of all
/// observations strictly before it.
[[nodiscard]] std::vector<double> always_mean_predictions(
    std::span<const double> series, std::size_t start);

}  // namespace acbm::core
