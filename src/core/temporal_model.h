// The temporal model (§IV): per-family ARIMA over the attacker-side time
// series A^f, A^b, A^s (Eq. 5), plus the derived magnitude, inter-launch
// interval, and launch-hour series the evaluation predicts (Fig. 1, and the
// N_tmp / N_int inputs of the spatiotemporal model).
#pragma once

#include <cstddef>
#include <optional>
#include <span>
#include <vector>

#include "core/features.h"
#include "core/robust.h"
#include "ts/arima.h"
#include "ts/selection.h"

namespace acbm::core {

/// The series the temporal model maintains an ARIMA for.
enum class TemporalSeries {
  kMagnitude,       ///< Raw bots per attack (Fig. 1's target).
  kActivity,        ///< A^f, Eq. 1.
  kNormMagnitude,   ///< A^b, Eq. 2.
  kSourceCoeff,     ///< A^s, Eq. 3.
  kInterval,        ///< Seconds between consecutive family attacks.
  kHour,            ///< Launch hour of day.
};
inline constexpr std::size_t kTemporalSeriesCount = 6;

struct TemporalModelOptions {
  ts::ArimaOrder order{2, 0, 1};
  /// When true, the order is chosen per series by AIC grid search
  /// (DESIGN.md ablation #1).
  bool auto_order = false;
  ts::AutoArimaOptions auto_options;
  /// Series shorter than this are modeled by their mean (degenerate ARIMA).
  std::size_t min_fit_length = 30;
};

/// Per-family temporal model: one ARIMA per series.
class TemporalModel {
 public:
  TemporalModel() = default;
  explicit TemporalModel(TemporalModelOptions opts) : opts_(std::move(opts)) {}

  /// Fits on the training prefix of a family's series.
  void fit(const FamilySeries& train);

  [[nodiscard]] bool fitted() const noexcept { return fitted_; }

  /// One-step walk-forward predictions over a full (train+test) series for
  /// positions [start, series.size()); causal (each prediction only sees
  /// earlier values). Falls back to the training mean when the underlying
  /// ARIMA could not be fitted.
  [[nodiscard]] std::vector<double> one_step_predictions(
      TemporalSeries which, std::span<const double> full_series,
      std::size_t start) const;

  /// Forecast of the next value after `history`.
  [[nodiscard]] double forecast_next(TemporalSeries which,
                                     std::span<const double> history) const;

  /// h-step-ahead forecast: the value at position history.size() + h - 1,
  /// conditioning only on `history`. Horizons beyond `max_horizon` (where
  /// an ARMA forecast has converged to the unconditional mean anyway)
  /// return the converged long-run forecast.
  [[nodiscard]] double forecast_horizon(TemporalSeries which,
                                        std::span<const double> history,
                                        std::size_t horizon,
                                        std::size_t max_horizon = 64) const;

  /// The fitted ARIMA for a series, if the series was long enough.
  [[nodiscard]] const std::optional<ts::ArimaModel>& model(
      TemporalSeries which) const;

  /// The degradation-ladder rung the series landed on:
  /// ARIMA -> AR(1) -> seasonal-naive -> mean.
  [[nodiscard]] FitRung rung(TemporalSeries which) const;

  /// Inference-extraction accessors (core::InferenceView): the fallback
  /// mean and seasonal period of a series' degradation slot.
  [[nodiscard]] double fallback_mean(TemporalSeries which) const;
  [[nodiscard]] std::size_t seasonal_period(TemporalSeries which) const;

  /// One record per series from the last fit() (not serialized).
  [[nodiscard]] const FitReport& fit_report() const noexcept {
    return report_;
  }

  /// Text serialization of the fitted state (fitting options are not
  /// persisted; a loaded model predicts identically but refits with
  /// defaults).
  void save(std::ostream& os) const;
  [[nodiscard]] static TemporalModel load(std::istream& is);

  /// Framed (v3) serialization: the v2 body wrapped in durable.h's
  /// magic/version/CRC32C envelope, so truncation and bit flips are caught
  /// before parsing. load_framed also accepts legacy bare v2 streams;
  /// corruption throws a typed durable::LoadFailure, never a crash.
  void save_framed(std::ostream& os) const;
  [[nodiscard]] static TemporalModel load_framed(std::istream& is);

 private:
  struct SeriesModel {
    std::optional<ts::ArimaModel> arima;  ///< kArima or (order (1,0,0)) kAr.
    std::size_t seasonal_period = 0;      ///< kSeasonalNaive rung.
    double fallback_mean = 0.0;
    FitRung rung = FitRung::kMean;
  };

  [[nodiscard]] const SeriesModel& series_model(TemporalSeries which) const;
  void fit_one(TemporalSeries which, std::span<const double> series);

  TemporalModelOptions opts_;
  std::vector<SeriesModel> models_{kTemporalSeriesCount};
  FitReport report_;
  bool fitted_ = false;
};

}  // namespace acbm::core
