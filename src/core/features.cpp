#include "core/features.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <stdexcept>

namespace acbm::core {

std::unordered_map<net::Asn, double> source_asn_distribution(
    const trace::Attack& attack, const net::IpToAsnMap& ip_map) {
  std::unordered_map<net::Asn, double> counts;
  double total = 0.0;
  for (const net::Ipv4& bot : attack.bots) {
    const auto asn = ip_map.lookup(bot);
    if (!asn) continue;  // Unmappable sources are dropped, as in practice.
    counts[*asn] += 1.0;
    total += 1.0;
  }
  if (total > 0.0) {
    for (auto& [asn, count] : counts) count /= total;
  }
  return counts;
}

double source_distribution_coefficient(const trace::Attack& attack,
                                       const net::IpToAsnMap& ip_map,
                                       net::ValleyFreeDistance* distance) {
  // Eq. (4), numerator: sum over involved ASes of bots-in-AS / AS size.
  std::unordered_map<net::Asn, double> bot_counts;
  for (const net::Ipv4& bot : attack.bots) {
    const auto asn = ip_map.lookup(bot);
    if (asn) bot_counts[*asn] += 1.0;
  }
  if (bot_counts.empty()) return 0.0;

  double intra = 0.0;
  for (const auto& [asn, bots_in_as] : bot_counts) {
    const auto addresses = ip_map.address_count(asn);
    if (addresses == 0) continue;
    intra += bots_in_as / static_cast<double>(addresses);
  }

  // Eq. (4), denominator: mean pairwise hop distance between involved ASes.
  // A single-AS attack (or no distance oracle) uses unit distance, so A^s
  // reduces to the intra-AS concentration.
  double dt = 1.0;
  if (distance != nullptr && bot_counts.size() >= 2) {
    std::vector<net::Asn> ases;
    ases.reserve(bot_counts.size());
    for (const auto& [asn, count] : bot_counts) ases.push_back(asn);
    std::sort(ases.begin(), ases.end());  // Deterministic iteration.
    double sum = 0.0;
    std::size_t pairs = 0;
    for (std::size_t i = 0; i < ases.size(); ++i) {
      for (std::size_t j = i + 1; j < ases.size(); ++j) {
        const auto hops = distance->distance(ases[i], ases[j]);
        if (hops) {
          sum += static_cast<double>(*hops);
          ++pairs;
        }
      }
    }
    if (pairs > 0 && sum > 0.0) {
      dt = sum / static_cast<double>(pairs);
    }
  }
  // Scale the intra term to a per-mille concentration so A^s lives in a
  // numerically convenient range for the time-series models.
  return 1000.0 * intra / dt;
}

FamilySeries extract_family_series(const trace::Dataset& dataset,
                                   std::uint32_t family,
                                   const net::IpToAsnMap& ip_map,
                                   net::ValleyFreeDistance* distance) {
  FamilySeries out;
  out.attack_indices = dataset.attacks_of_family(family);
  const std::size_t n = out.attack_indices.size();
  out.magnitude.reserve(n);
  out.activity.reserve(n);
  out.norm_magnitude.reserve(n);
  out.source_coeff.reserve(n);
  out.interval_s.reserve(n);
  out.hour.reserve(n);
  out.day.reserve(n);
  out.duration_s.reserve(n);

  double cumulative_bots = 0.0;
  for (std::size_t k = 0; k < n; ++k) {
    const trace::Attack& attack = dataset.attacks()[out.attack_indices[k]];
    const double magnitude = static_cast<double>(attack.magnitude());
    out.magnitude.push_back(magnitude);

    // Eq. (1): attacks so far divided by days elapsed so far.
    const double days_elapsed = std::max(
        1.0, static_cast<double>(attack.start - dataset.window_start()) / 86400.0);
    out.activity.push_back(static_cast<double>(k + 1) / days_elapsed);

    // Eq. (2): current active bots over cumulative bots observed.
    cumulative_bots += magnitude;
    out.norm_magnitude.push_back(magnitude / cumulative_bots);

    out.source_coeff.push_back(
        source_distribution_coefficient(attack, ip_map, distance));

    if (k == 0) {
      out.interval_s.push_back(0.0);
    } else {
      const trace::Attack& prev =
          dataset.attacks()[out.attack_indices[k - 1]];
      out.interval_s.push_back(
          static_cast<double>(attack.start - prev.start));
    }

    const trace::DayHour dh =
        trace::decompose_timestamp(attack.start, dataset.window_start());
    out.hour.push_back(static_cast<double>(dh.hour));
    out.day.push_back(static_cast<double>(dh.day));
    out.duration_s.push_back(attack.duration_s);
  }
  return out;
}

TargetSeries extract_target_series(const trace::Dataset& dataset,
                                   net::Asn target_asn) {
  TargetSeries out;
  out.asn = target_asn;
  out.attack_indices = dataset.attacks_on_asn(target_asn);
  const std::size_t n = out.attack_indices.size();
  out.duration_s.reserve(n);
  out.interval_s.reserve(n);
  out.hour.reserve(n);
  out.day.reserve(n);
  out.magnitude.reserve(n);
  for (std::size_t k = 0; k < n; ++k) {
    const trace::Attack& attack = dataset.attacks()[out.attack_indices[k]];
    out.duration_s.push_back(attack.duration_s);
    out.magnitude.push_back(static_cast<double>(attack.magnitude()));
    if (k == 0) {
      out.interval_s.push_back(0.0);
    } else {
      const trace::Attack& prev =
          dataset.attacks()[out.attack_indices[k - 1]];
      out.interval_s.push_back(
          static_cast<double>(attack.start - prev.start));
    }
    const trace::DayHour dh =
        trace::decompose_timestamp(attack.start, dataset.window_start());
    out.hour.push_back(static_cast<double>(dh.hour));
    out.day.push_back(static_cast<double>(dh.day));
  }
  return out;
}

std::vector<std::vector<std::size_t>> multistage_chains(
    const trace::Dataset& dataset, const MultistageOptions& opts) {
  if (!(opts.min_gap_s >= 0.0 && opts.min_gap_s < opts.max_gap_s)) {
    throw std::invalid_argument("multistage_chains: bad gap window");
  }
  // Per-target chronological scan; attacks within the window chain up.
  std::map<net::Asn, std::vector<std::size_t>> open_chain_of_target;
  std::map<net::Asn, trace::EpochSeconds> last_start_of_target;
  std::vector<std::vector<std::size_t>> chains;
  std::unordered_map<net::Asn, std::size_t> chain_id_of_target;

  for (std::size_t i = 0; i < dataset.attacks().size(); ++i) {
    const trace::Attack& attack = dataset.attacks()[i];
    const auto last = last_start_of_target.find(attack.target_asn);
    const bool continues =
        last != last_start_of_target.end() &&
        static_cast<double>(attack.start - last->second) >= opts.min_gap_s &&
        static_cast<double>(attack.start - last->second) <= opts.max_gap_s;
    if (continues) {
      chains[chain_id_of_target[attack.target_asn]].push_back(i);
    } else {
      chains.push_back({i});
      chain_id_of_target[attack.target_asn] = chains.size() - 1;
    }
    last_start_of_target[attack.target_asn] = attack.start;
  }
  return chains;
}

std::vector<double> hourly_attack_counts(const trace::Dataset& dataset,
                                         std::uint32_t family,
                                         std::size_t hours) {
  std::vector<double> out(hours, 0.0);
  for (std::size_t idx : dataset.attacks_of_family(family)) {
    const trace::Attack& attack = dataset.attacks()[idx];
    const trace::EpochSeconds rel = attack.start - dataset.window_start();
    if (rel < 0) continue;
    const auto hour = static_cast<std::size_t>(rel / 3600);
    if (hour < hours) out[hour] += 1.0;
  }
  return out;
}

Turnaround chain_turnaround(const trace::Dataset& dataset,
                            std::span<const std::size_t> chain) {
  if (chain.empty()) {
    throw std::invalid_argument("chain_turnaround: empty chain");
  }
  Turnaround out;
  out.stages = chain.size();
  trace::EpochSeconds last_end = 0;
  for (std::size_t i = 0; i < chain.size(); ++i) {
    const trace::Attack& attack = dataset.attacks()[chain[i]];
    out.execution_s += attack.duration_s;
    if (i > 0 && attack.start > last_end) {
      out.waiting_s += static_cast<double>(attack.start - last_end);
    }
    last_end = std::max(last_end, attack.end());
  }
  const trace::Attack& first = dataset.attacks()[chain.front()];
  out.turnaround_s = static_cast<double>(last_end - first.start);
  return out;
}

}  // namespace acbm::core
