#include "core/spatiotemporal_model.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <limits>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <string>

#include "core/checkpoint.h"
#include "core/durable.h"
#include "core/observe.h"
#include "core/parallel.h"
#include "stats/serialize.h"

namespace acbm::core {

namespace {
constexpr std::array<std::pair<TemporalSeries, const char*>,
                     kTemporalSeriesCount>
    kTemporalSeriesNames = {{{TemporalSeries::kMagnitude, "magnitude"},
                             {TemporalSeries::kActivity, "activity"},
                             {TemporalSeries::kNormMagnitude, "norm_magnitude"},
                             {TemporalSeries::kSourceCoeff, "source_coeff"},
                             {TemporalSeries::kInterval, "interval"},
                             {TemporalSeries::kHour, "hour"}}};

constexpr std::array<std::pair<SpatialSeries, const char*>, kSpatialSeriesCount>
    kSpatialSeriesNames = {{{SpatialSeries::kDuration, "duration"},
                            {SpatialSeries::kInterval, "interval"},
                            {SpatialSeries::kHour, "hour"}}};

/// Report records for a sub-model restored from a checkpoint: the landed
/// rung is persisted, the original failure detail is not, so resumed
/// records carry the rung with a "resumed" note and no error.
template <typename Model, typename Names>
void add_resumed_records(FitReport& report, const std::string& prefix,
                         const Model& model, const Names& names) {
  for (const auto& [series, name] : names) {
    report.add({prefix + name, model.rung(series), std::nullopt,
                "resumed from checkpoint"});
  }
}

/// The "temporal.nonfinite" fault point: NaN-poisons every 7th value of each
/// modeled family series, exercising the repair + degradation path.
void poison_family_series(FamilySeries& series) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  for (std::vector<double>* xs :
       {&series.magnitude, &series.activity, &series.norm_magnitude,
        &series.source_coeff, &series.interval_s, &series.hour}) {
    for (std::size_t i = 0; i < xs->size(); i += 7) (*xs)[i] = nan;
  }
}
}  // namespace

std::optional<TemporalModel> fit_family_temporal(
    const trace::Dataset& train, FeatureCache& features, std::uint32_t family,
    const SpatiotemporalOptions& opts) {
  const std::shared_ptr<const FamilySeries> series = features.family(family);
  if (series->attack_indices.size() < 2) return std::nullopt;
  TemporalModel model(opts.temporal);
  FaultInjector& injector = FaultInjector::instance();
  if (injector.enabled() &&
      injector.fires("temporal.nonfinite",
                     "family=" + train.family_names()[family])) {
    // Poison a private copy; the cached series stays pristine for the other
    // stages.
    FamilySeries poisoned = *series;
    poison_family_series(poisoned);
    model.fit(poisoned);
  } else {
    model.fit(*series);
  }
  return model;
}

std::optional<SpatialModel> fit_target_spatial(
    const trace::Dataset& train, const net::IpToAsnMap& ip_map,
    FeatureCache& features, net::Asn target,
    const SpatiotemporalOptions& opts) {
  const std::shared_ptr<const TargetSeries> shared = features.target(target);
  if (shared->attack_indices.size() < opts.min_target_attacks) {
    return std::nullopt;
  }
  SpatialModel model(opts.spatial);
  if (opts.max_target_history > 0 &&
      shared->attack_indices.size() > opts.max_target_history) {
    // Limited-information setting: keep only the most recent attacks. Trim
    // a private copy — row assembly needs the cached full-history series.
    TargetSeries series = *shared;
    const std::size_t drop =
        series.attack_indices.size() - opts.max_target_history;
    const auto trim = [drop](std::vector<double>& v) {
      v.erase(v.begin(), v.begin() + static_cast<std::ptrdiff_t>(drop));
    };
    series.attack_indices.erase(
        series.attack_indices.begin(),
        series.attack_indices.begin() + static_cast<std::ptrdiff_t>(drop));
    trim(series.duration_s);
    trim(series.interval_s);
    trim(series.hour);
    trim(series.day);
    trim(series.magnitude);
    model.fit(series, train, ip_map);
  } else {
    model.fit(*shared, train, ip_map);
  }
  return model;
}

std::string encode_temporal_stage(const std::optional<TemporalModel>& model) {
  if (!model) return {};
  std::ostringstream body;
  model->save(body);
  return body.str();
}

std::string encode_spatial_stage(
    const std::unordered_map<net::Asn, SpatialModel>& spatial) {
  namespace io = acbm::stats::io;
  std::ostringstream os;
  io::write_scalar(os, "spatial_count", spatial.size());
  std::vector<net::Asn> targets;
  targets.reserve(spatial.size());
  for (const auto& [asn, model] : spatial) targets.push_back(asn);
  std::sort(targets.begin(), targets.end());
  for (net::Asn asn : targets) {
    io::write_scalar(os, "target", asn);
    spatial.at(asn).save(os);
  }
  return os.str();
}

std::vector<double> StFeatures::hour_row() const {
  return {tmp_hour, spa_hour, tmp_interval_s / 3600.0, prev_hour, mean_hour,
          avg_magnitude};
}

std::vector<double> StFeatures::day_row() const {
  // Both interval predictions are turned into implied next-day estimates
  // anchored at the previous attack; the tree learns how to weigh them.
  return {prev_day + tmp_interval_s / 86400.0,
          prev_day + spa_interval_s / 86400.0, prev_day, avg_magnitude};
}

std::vector<StRow> assemble_rows(
    const trace::Dataset& dataset, const net::IpToAsnMap& ip_map,
    const std::unordered_map<std::uint32_t, TemporalModel>& temporal,
    const std::unordered_map<net::Asn, SpatialModel>& spatial,
    const SpatiotemporalOptions& opts, FeatureCache* cache) {
  // With no caller-provided cache the series are still extracted (and
  // shared) through a local one.
  FeatureCache local_cache(dataset, ip_map, nullptr);
  if (cache == nullptr) cache = &local_cache;

  // Per-family series plus the mapping from a global attack index to its
  // position in the family series. Temporal features for a row are
  // multi-step forecasts: the information cutoff is the target's previous
  // attack, so the temporal model must forecast across every other family
  // attack launched in between (this is what the paper's per-target
  // experiment demands — a one-step family forecast would leak near-future
  // information from parallel campaigns).
  struct FamilyData {
    std::shared_ptr<const FamilySeries> series;
    const TemporalModel* model = nullptr;
    std::unordered_map<std::size_t, std::size_t> position_of;
  };
  std::unordered_map<std::uint32_t, FamilyData> family_data;
  for (const auto& [family, model] : temporal) {
    FamilyData fd;
    fd.series = cache->family(family);
    const std::size_t n = fd.series->attack_indices.size();
    if (n < 2) continue;
    fd.model = &model;
    for (std::size_t pos = 0; pos < n; ++pos) {
      fd.position_of[fd.series->attack_indices[pos]] = pos;
    }
    family_data.emplace(family, std::move(fd));
  }

  // Fan out over targets (sorted so task indexing is reproducible); each
  // task builds its own row block and the blocks are concatenated in target
  // order before the final sort.
  std::vector<net::Asn> target_order;
  target_order.reserve(spatial.size());
  for (const auto& [asn, model] : spatial) target_order.push_back(asn);
  std::sort(target_order.begin(), target_order.end());

  const std::vector<std::vector<StRow>> row_blocks = parallel_map(
      target_order.size(), [&](std::size_t ti) -> std::vector<StRow> {
    const net::Asn asn = target_order[ti];
    const SpatialModel& model = spatial.at(asn);
    std::vector<StRow> rows;
    const std::shared_ptr<const TargetSeries> target_ptr = cache->target(asn);
    const TargetSeries& target = *target_ptr;
    const std::size_t n = target.attack_indices.size();
    const std::size_t warmup = std::max<std::size_t>(opts.target_warmup, 1);
    if (n <= warmup) return rows;
    const std::vector<double> spa_hour =
        model.one_step_predictions(SpatialSeries::kHour, target.hour, warmup);
    const std::vector<double> spa_interval = model.one_step_predictions(
        SpatialSeries::kInterval, target.interval_s, warmup);

    for (std::size_t k = warmup; k < n; ++k) {
      const std::size_t attack_idx = target.attack_indices[k];
      const std::size_t prev_idx = target.attack_indices[k - 1];
      const trace::Attack& attack = dataset.attacks()[attack_idx];
      const auto fit = family_data.find(attack.family);
      if (fit == family_data.end()) continue;
      const FamilyData& fd = fit->second;
      const auto pit = fd.position_of.find(attack_idx);
      if (pit == fd.position_of.end() || pit->second == 0) continue;
      const std::size_t fpos = pit->second;

      // Information cutoff: the last family attack at or before the
      // target's previous attack.
      const auto& fidx = fd.series->attack_indices;
      const auto cut = std::upper_bound(fidx.begin(), fidx.end(), prev_idx);
      if (cut == fidx.begin()) continue;
      const auto q = static_cast<std::size_t>(cut - fidx.begin() - 1);
      const std::size_t horizon = fpos > q ? fpos - q : 1;
      const std::span<const double> hour_prefix(fd.series->hour.data(), q + 1);
      const std::span<const double> interval_prefix(
          fd.series->interval_s.data(), q + 1);

      StRow row;
      row.attack_index = attack_idx;
      row.target_pos = k;
      row.target_asn = asn;
      row.truth_hour = target.hour[k];
      row.truth_day = target.day[k];
      row.features.tmp_hour =
          fd.model->forecast_horizon(TemporalSeries::kHour, hour_prefix, horizon);
      row.features.tmp_interval_s = fd.model->forecast_horizon(
          TemporalSeries::kInterval, interval_prefix, horizon);
      row.features.spa_hour = spa_hour[k - warmup];
      row.features.spa_interval_s = spa_interval[k - warmup];
      row.features.prev_hour = target.hour[k - 1];
      row.features.prev_day = target.day[k - 1];
      double hour_sum = 0.0;
      for (std::size_t w = 0; w < k; ++w) hour_sum += target.hour[w];
      row.features.mean_hour = hour_sum / static_cast<double>(k);
      const std::size_t window = std::min(opts.magnitude_window, k);
      double mag = 0.0;
      for (std::size_t w = k - window; w < k; ++w) mag += target.magnitude[w];
      row.features.avg_magnitude = mag / static_cast<double>(window);
      rows.push_back(std::move(row));
    }
    return rows;
  });

  std::vector<StRow> rows;
  for (const std::vector<StRow>& block : row_blocks) {
    rows.insert(rows.end(), block.begin(), block.end());
  }
  // Deterministic order (by predicted attack) regardless of map iteration.
  std::sort(rows.begin(), rows.end(), [](const StRow& a, const StRow& b) {
    return a.attack_index < b.attack_index;
  });
  return rows;
}

void SpatiotemporalModel::fit(const trace::Dataset& train,
                              const net::IpToAsnMap& ip_map) {
  ACBM_SPAN("fit.spatiotemporal");
  temporal_.clear();
  spatial_.clear();
  report_.clear();
  FaultInjector& injector = FaultInjector::instance();
  StageStore* checkpoint = opts_.checkpoint;

  // One extraction pass shared by the temporal stage, the spatial stage,
  // and row assembly for the combining tree (each used to re-extract the
  // same series independently).
  FeatureCache features(train, ip_map, nullptr);

  // Per-family temporal fits and per-target spatial fits are independent;
  // both fan out across the pool and are merged back in index order, so the
  // fitted model (and the fit report) is identical at any thread count.
  // Checkpoint loads happen before the fan-out and stores after the merge:
  // the store only ever sees single-threaded access at stage boundaries.
  const auto n_families =
      static_cast<std::uint32_t>(train.family_names().size());
  {
    ACBM_SPAN("fit.temporal");
    std::vector<std::optional<std::string>> cached_family(n_families);
    if (checkpoint != nullptr) {
      for (std::uint32_t f = 0; f < n_families; ++f) {
        cached_family[f] =
            checkpoint->load("temporal/" + train.family_names()[f]);
      }
    }
    std::vector<std::optional<TemporalModel>> family_fits = parallel_map(
        n_families, [&](std::size_t f) -> std::optional<TemporalModel> {
          ACBM_SPAN_KV("fit.family", "family=" + train.family_names()[f]);
          if (cached_family[f]) {
            // Empty payload = completed stage with too little data to model.
            if (cached_family[f]->empty()) return std::nullopt;
            try {
              std::istringstream body(*cached_family[f]);
              return TemporalModel::load(body);
            } catch (const std::exception&) {
              cached_family[f].reset();  // Unusable payload: refit below.
            }
          }
          return fit_family_temporal(train, features,
                                     static_cast<std::uint32_t>(f), opts_);
        });
    for (std::uint32_t family = 0; family < n_families; ++family) {
      const std::string& name = train.family_names()[family];
      const bool resumed = cached_family[family].has_value();
      if (family_fits[family]) {
        if (resumed) {
          add_resumed_records(report_, "temporal/" + name + "/",
                              *family_fits[family], kTemporalSeriesNames);
        } else {
          report_.merge("temporal/" + name + "/",
                        family_fits[family]->fit_report());
          if (checkpoint != nullptr) {
            checkpoint->store("temporal/" + name,
                              encode_temporal_stage(family_fits[family]));
          }
        }
        temporal_.emplace(family, std::move(*family_fits[family]));
      } else {
        report_.add({"temporal/" + name, FitRung::kMean,
                     FitError::kSeriesTooShort, "fewer than 2 attacks"});
        if (checkpoint != nullptr && !resumed) {
          checkpoint->store("temporal/" + name, "");
        }
      }
    }
  }

  {
    ACBM_SPAN("fit.spatial");
    const std::vector<net::Asn> targets = train.target_asns();
    bool spatial_resumed = false;
    if (checkpoint != nullptr) {
      if (const std::optional<std::string> payload =
              checkpoint->load("spatial")) {
        try {
          load_spatial_stage(*payload);
          spatial_resumed = true;
        } catch (const std::exception&) {
          spatial_.clear();  // Unusable payload: refit below.
        }
      }
    }
    if (spatial_resumed) {
      for (net::Asn asn : targets) {
        const auto it = spatial_.find(asn);
        if (it != spatial_.end()) {
          add_resumed_records(report_, "spatial/AS" + std::to_string(asn) + "/",
                              it->second, kSpatialSeriesNames);
        } else {
          report_.add(
              {"spatial/AS" + std::to_string(asn), FitRung::kMean,
               FitError::kSeriesTooShort,
               "fewer than " + std::to_string(opts_.min_target_attacks) +
                   " attacks"});
        }
      }
    } else {
      std::vector<std::optional<SpatialModel>> target_fits = parallel_map(
          targets.size(), [&](std::size_t t) -> std::optional<SpatialModel> {
            ACBM_SPAN_KV("fit.target",
                         "asn=" + std::to_string(targets[t]));
            return fit_target_spatial(train, ip_map, features, targets[t],
                                      opts_);
          });
      for (std::size_t t = 0; t < targets.size(); ++t) {
        if (target_fits[t]) {
          report_.merge("spatial/AS" + std::to_string(targets[t]) + "/",
                        target_fits[t]->fit_report());
          spatial_.emplace(targets[t], std::move(*target_fits[t]));
        } else {
          report_.add(
              {"spatial/AS" + std::to_string(targets[t]), FitRung::kMean,
               FitError::kSeriesTooShort,
               "fewer than " + std::to_string(opts_.min_target_attacks) +
                   " attacks"});
        }
      }
      if (checkpoint != nullptr) {
        checkpoint->store("spatial", save_spatial_stage());
      }
    }
  }

  hour_tree_ = tree::ModelTree(opts_.tree);
  day_tree_ = tree::ModelTree(opts_.tree);
  hour_linear_.reset();
  day_linear_.reset();
  if (checkpoint != nullptr) {
    ACBM_SPAN("fit.tree");
    if (const std::optional<std::string> payload = checkpoint->load("tree")) {
      try {
        load_tree_stage(*payload);
        const auto combiner_rung = [this](const tree::ModelTree& tree,
                                          const std::optional<
                                              acbm::stats::LinearRegression>&
                                              linear) {
          return tree.fitted()  ? FitRung::kModelTree
                 : linear       ? FitRung::kPooledLinear
                                : FitRung::kMean;
        };
        report_.add({"tree/hour", combiner_rung(hour_tree_, hour_linear_),
                     std::nullopt, "resumed from checkpoint"});
        report_.add({"tree/day", combiner_rung(day_tree_, day_linear_),
                     std::nullopt, "resumed from checkpoint"});
        fitted_ = true;
        return;
      } catch (const std::exception&) {
        // Unusable payload: refit below.
        hour_tree_ = tree::ModelTree(opts_.tree);
        day_tree_ = tree::ModelTree(opts_.tree);
        hour_linear_.reset();
        day_linear_.reset();
      }
    }
  }

  std::vector<StRow> rows;
  {
    ACBM_SPAN("fit.rows");
    rows = assemble_rows(train, ip_map, temporal_, spatial_, opts_, &features);
  }

  // Combining-tree ladder: model tree -> pooled linear model over the same
  // rows -> (at predict time) the fixed sub-model blend.
  const auto fit_combiner = [&](const char* name, tree::ModelTree& tree,
                                std::optional<acbm::stats::LinearRegression>&
                                    linear,
                                const acbm::stats::Matrix& x,
                                std::span<const double> y) {
    FitRecord record;
    record.component = std::string("tree/") + name;
    record.rung = FitRung::kModelTree;
    try {
      if (injector.enabled() && injector.fires("tree.fail", name)) {
        throw FitFailure(FitError::kNonconvergence,
                         std::string("injected fault: tree.fail ") + name);
      }
      tree.fit(x, y);
    } catch (const FitFailure& e) {
      record.error = e.code();
      record.detail = e.what();
    } catch (const std::exception& e) {
      record.error = FitError::kNonconvergence;
      record.detail = e.what();
    }
    if (!tree.fitted()) {
      tree = tree::ModelTree(opts_.tree);  // Discard any half-built state.
      try {
        acbm::stats::LinearRegression reg;
        reg.fit(x, y);
        linear = std::move(reg);
        record.rung = FitRung::kPooledLinear;
      } catch (const std::exception&) {
        record.rung = FitRung::kMean;  // Predict-time sub-model blend.
      }
    }
    report_.add(std::move(record));
  };

  ACBM_SPAN("fit.tree");
  if (rows.size() >= 20) {
    acbm::stats::Matrix hour_x(rows.size(), rows.front().features.hour_row().size());
    acbm::stats::Matrix day_x(rows.size(), rows.front().features.day_row().size());
    std::vector<double> hour_y(rows.size());
    std::vector<double> day_y(rows.size());
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const std::vector<double> hr = rows[i].features.hour_row();
      const std::vector<double> dr = rows[i].features.day_row();
      for (std::size_t j = 0; j < hr.size(); ++j) hour_x(i, j) = hr[j];
      for (std::size_t j = 0; j < dr.size(); ++j) day_x(i, j) = dr[j];
      hour_y[i] = rows[i].truth_hour;
      day_y[i] = rows[i].truth_day;
    }
    fit_combiner("hour", hour_tree_, hour_linear_, hour_x, hour_y);
    fit_combiner("day", day_tree_, day_linear_, day_x, day_y);
  } else {
    report_.add({"tree/hour", FitRung::kMean, FitError::kSeriesTooShort,
                 std::to_string(rows.size()) + " rows < 20"});
    report_.add({"tree/day", FitRung::kMean, FitError::kSeriesTooShort,
                 std::to_string(rows.size()) + " rows < 20"});
  }
  if (checkpoint != nullptr) checkpoint->store("tree", save_tree_stage());
  fitted_ = true;
}

double SpatiotemporalModel::predict_hour(const StFeatures& features) const {
  if (!fitted_) throw std::logic_error("SpatiotemporalModel: not fitted");
  double hour;
  if (hour_tree_.fitted()) {
    hour = hour_tree_.predict(features.hour_row());
  } else if (hour_linear_) {
    // Pooled-linear rung: the tree fit failed but a linear combiner fit.
    hour = hour_linear_->predict(features.hour_row());
  } else {
    // Too few training rows for a tree: blend the two sub-models.
    hour = 0.5 * (features.tmp_hour + features.spa_hour);
  }
  return std::clamp(hour, 0.0, 23.999);
}

double SpatiotemporalModel::predict_day(const StFeatures& features) const {
  if (!fitted_) throw std::logic_error("SpatiotemporalModel: not fitted");
  if (day_tree_.fitted()) {
    return day_tree_.predict(features.day_row());
  }
  if (day_linear_) {
    return day_linear_->predict(features.day_row());
  }
  return features.prev_day + features.tmp_interval_s / 86400.0;
}

void SpatiotemporalModel::save(std::ostream& os) const {
  namespace io = acbm::stats::io;
  io::write_header(os, "spatiotemporal", 2);
  io::write_scalar(os, "fitted", fitted_ ? 1 : 0);
  io::write_scalar(os, "min_target_attacks", opts_.min_target_attacks);
  io::write_scalar(os, "target_warmup", opts_.target_warmup);
  io::write_scalar(os, "magnitude_window", opts_.magnitude_window);
  io::write_scalar(os, "max_target_history", opts_.max_target_history);

  io::write_scalar(os, "temporal_count", temporal_.size());
  std::vector<std::uint32_t> families;
  for (const auto& [family, model] : temporal_) families.push_back(family);
  std::sort(families.begin(), families.end());
  for (std::uint32_t family : families) {
    io::write_scalar(os, "family", family);
    temporal_.at(family).save(os);
  }

  io::write_scalar(os, "spatial_count", spatial_.size());
  std::vector<net::Asn> targets;
  for (const auto& [asn, model] : spatial_) targets.push_back(asn);
  std::sort(targets.begin(), targets.end());
  for (net::Asn asn : targets) {
    io::write_scalar(os, "target", asn);
    spatial_.at(asn).save(os);
  }

  io::write_scalar(os, "has_hour_tree", hour_tree_.fitted() ? 1 : 0);
  if (hour_tree_.fitted()) hour_tree_.save(os);
  io::write_scalar(os, "has_day_tree", day_tree_.fitted() ? 1 : 0);
  if (day_tree_.fitted()) day_tree_.save(os);
  io::write_scalar(os, "has_hour_linear", hour_linear_.has_value() ? 1 : 0);
  if (hour_linear_) hour_linear_->save(os);
  io::write_scalar(os, "has_day_linear", day_linear_.has_value() ? 1 : 0);
  if (day_linear_) day_linear_->save(os);
}

SpatiotemporalModel SpatiotemporalModel::load(std::istream& is) {
  namespace io = acbm::stats::io;
  io::expect_header(is, "spatiotemporal", 2);
  SpatiotemporalModel model;
  model.fitted_ = io::read_scalar<int>(is, "fitted") != 0;
  model.opts_.min_target_attacks =
      io::read_scalar<std::size_t>(is, "min_target_attacks");
  model.opts_.target_warmup = io::read_scalar<std::size_t>(is, "target_warmup");
  model.opts_.magnitude_window =
      io::read_scalar<std::size_t>(is, "magnitude_window");
  model.opts_.max_target_history =
      io::read_scalar<std::size_t>(is, "max_target_history");

  const auto temporal_count = io::read_scalar<std::size_t>(is, "temporal_count");
  for (std::size_t i = 0; i < temporal_count; ++i) {
    const auto family = io::read_scalar<std::uint32_t>(is, "family");
    model.temporal_.emplace(family, TemporalModel::load(is));
  }
  const auto spatial_count = io::read_scalar<std::size_t>(is, "spatial_count");
  for (std::size_t i = 0; i < spatial_count; ++i) {
    const auto asn = io::read_scalar<net::Asn>(is, "target");
    model.spatial_.emplace(asn, SpatialModel::load(is));
  }
  if (io::read_scalar<int>(is, "has_hour_tree") != 0) {
    model.hour_tree_ = tree::ModelTree::load(is);
  }
  if (io::read_scalar<int>(is, "has_day_tree") != 0) {
    model.day_tree_ = tree::ModelTree::load(is);
  }
  if (io::read_scalar<int>(is, "has_hour_linear") != 0) {
    model.hour_linear_ = acbm::stats::LinearRegression::load(is);
  }
  if (io::read_scalar<int>(is, "has_day_linear") != 0) {
    model.day_linear_ = acbm::stats::LinearRegression::load(is);
  }
  return model;
}

void SpatiotemporalModel::save_framed(std::ostream& os) const {
  std::ostringstream body;
  save(body);
  os << durable::frame_payload("spatiotemporal", 3, body.str());
}

SpatiotemporalModel SpatiotemporalModel::load_framed(std::istream& is) {
  return durable::load_framed_stream(
      is, "spatiotemporal", 3, 3,
      [](std::istream& body) { return load(body); });
}

std::string SpatiotemporalModel::save_spatial_stage() const {
  return encode_spatial_stage(spatial_);
}

void SpatiotemporalModel::load_spatial_stage(const std::string& payload) {
  namespace io = acbm::stats::io;
  spatial_.clear();
  std::istringstream is(payload);
  const auto count = io::read_scalar<std::size_t>(is, "spatial_count");
  for (std::size_t i = 0; i < count; ++i) {
    const auto asn = io::read_scalar<net::Asn>(is, "target");
    spatial_.emplace(asn, SpatialModel::load(is));
  }
}

std::string SpatiotemporalModel::save_tree_stage() const {
  namespace io = acbm::stats::io;
  std::ostringstream os;
  io::write_scalar(os, "has_hour_tree", hour_tree_.fitted() ? 1 : 0);
  if (hour_tree_.fitted()) hour_tree_.save(os);
  io::write_scalar(os, "has_day_tree", day_tree_.fitted() ? 1 : 0);
  if (day_tree_.fitted()) day_tree_.save(os);
  io::write_scalar(os, "has_hour_linear", hour_linear_.has_value() ? 1 : 0);
  if (hour_linear_) hour_linear_->save(os);
  io::write_scalar(os, "has_day_linear", day_linear_.has_value() ? 1 : 0);
  if (day_linear_) day_linear_->save(os);
  return os.str();
}

void SpatiotemporalModel::load_tree_stage(const std::string& payload) {
  namespace io = acbm::stats::io;
  std::istringstream is(payload);
  if (io::read_scalar<int>(is, "has_hour_tree") != 0) {
    hour_tree_ = tree::ModelTree::load(is);
  }
  if (io::read_scalar<int>(is, "has_day_tree") != 0) {
    day_tree_ = tree::ModelTree::load(is);
  }
  if (io::read_scalar<int>(is, "has_hour_linear") != 0) {
    hour_linear_ = acbm::stats::LinearRegression::load(is);
  }
  if (io::read_scalar<int>(is, "has_day_linear") != 0) {
    day_linear_ = acbm::stats::LinearRegression::load(is);
  }
}

const TemporalModel* SpatiotemporalModel::temporal(
    std::uint32_t family) const {
  const auto it = temporal_.find(family);
  return it == temporal_.end() ? nullptr : &it->second;
}

const SpatialModel* SpatiotemporalModel::spatial(net::Asn target) const {
  const auto it = spatial_.find(target);
  return it == spatial_.end() ? nullptr : &it->second;
}

}  // namespace acbm::core
