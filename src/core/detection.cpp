#include "core/detection.h"

#include <cmath>
#include <vector>

#include "stats/descriptive.h"
#include "stats/distribution.h"

namespace acbm::core {

void EntropyDetector::update_baseline(double entropy, double volume) {
  entropy_history_.push_back(entropy);
  volume_history_.push_back(volume);
  while (entropy_history_.size() > opts_.baseline_window) {
    entropy_history_.pop_front();
    volume_history_.pop_front();
  }
}

bool EntropyDetector::observe(
    const std::unordered_map<net::Asn, double>& traffic_by_as) {
  ++total_observations_;
  std::vector<double> volumes;
  volumes.reserve(traffic_by_as.size());
  double total = 0.0;
  for (const auto& [asn, volume] : traffic_by_as) {
    if (volume > 0.0) {
      volumes.push_back(volume);
      total += volume;
    }
  }
  last_entropy_ = acbm::stats::entropy(volumes);

  if (!armed()) {
    last_z_ = 0.0;
    update_baseline(last_entropy_, total);
    return false;
  }

  const std::vector<double> baseline(entropy_history_.begin(),
                                     entropy_history_.end());
  const double mean = acbm::stats::mean(baseline);
  const double sd = std::max(acbm::stats::stddev(baseline), 1e-6);
  last_z_ = (last_entropy_ - mean) / sd;

  const std::vector<double> volumes_hist(volume_history_.begin(),
                                         volume_history_.end());
  const double volume_mean = acbm::stats::mean(volumes_hist);
  const bool volume_anomalous = total > opts_.volume_factor * volume_mean;

  const bool flagged =
      std::abs(last_z_) >= opts_.z_threshold && volume_anomalous;
  if (!flagged) {
    update_baseline(last_entropy_, total);
  }
  return flagged;
}

}  // namespace acbm::core
