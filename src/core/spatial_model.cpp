#include "core/spatial_model.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <sstream>
#include <stdexcept>
#include <string>

#include "core/durable.h"
#include "core/observe.h"
#include "core/parallel.h"
#include "stats/descriptive.h"
#include "stats/rng.h"
#include "stats/serialize.h"

namespace acbm::core {

namespace {
const char* series_name(SpatialSeries which) {
  switch (which) {
    case SpatialSeries::kDuration: return "duration";
    case SpatialSeries::kInterval: return "interval";
    case SpatialSeries::kHour: return "hour";
  }
  return "unknown";
}
}  // namespace

const SpatialModel::SeriesModel& SpatialModel::series_model(
    SpatialSeries which) const {
  return models_[static_cast<std::size_t>(which)];
}

void SpatialModel::fit_one(SpatialSeries which,
                           std::span<const double> series) {
  ACBM_SPAN_KV("spatial.series", std::string("asn=") + std::to_string(asn_) +
                                     ",series=" + series_name(which));
  SeriesModel& slot = models_[static_cast<std::size_t>(which)];
  slot.nar.reset();
  slot.ar.reset();
  slot.rung = FitRung::kMean;
  slot.record = FitRecord{};
  slot.record.component = series_name(which);
  const auto note = [&slot](FitError error, const std::string& detail) {
    if (slot.record.error) return;  // Keep the first failure.
    slot.record.error = error;
    slot.record.detail = detail;
  };

  // Repair: strip non-finite observations before fitting anything.
  std::size_t dropped = 0;
  std::vector<double> cleaned;
  std::span<const double> work = series;
  if (!all_finite(series)) {
    cleaned = drop_nonfinite(series, &dropped);
    work = cleaned;
    note(FitError::kNonfiniteInput,
         "stripped " + std::to_string(dropped) + " non-finite values");
  }
  slot.fallback_mean = acbm::stats::mean(work);

  if (work.size() < opts_.min_fit_length) {
    note(FitError::kSeriesTooShort,
         "length " + std::to_string(work.size()) + " < " +
             std::to_string(opts_.min_fit_length));
    slot.record.rung = slot.rung;
    return;
  }

  // Rungs 1..k: NAR, retried with a perturbed substream-seeded init. The
  // fault key is a pure function of (target, series, attempt) so injected
  // nonconvergence is identical at every thread count.
  //
  // Retries change only the network seed, never the data, so the lag
  // embeddings (and their z-score column scalers) are built once per delay
  // count and shared across every attempt — and, under grid search, across
  // every candidate within each attempt.
  FaultInjector& injector = FaultInjector::instance();
  nn::LagMatrixCache lag_cache;
  const std::size_t attempts = std::max<std::size_t>(opts_.max_fit_attempts, 1);
  for (std::size_t attempt = 0; attempt < attempts && !slot.nar; ++attempt) {
    if (attempt > 0) ACBM_COUNT("spatial.nar_retry", 1);
    try {
      if (injector.enabled() &&
          injector.fires("nar.nonconvergence",
                         "asn=" + std::to_string(asn_) + "/" +
                             series_name(which) +
                             "/attempt=" + std::to_string(attempt))) {
        throw FitFailure(FitError::kNonconvergence,
                         "injected fault: nar.nonconvergence attempt " +
                             std::to_string(attempt));
      }
      nn::NarModel candidate;
      if (opts_.grid_search) {
        nn::NarGridOptions grid_opts = opts_.grid;
        if (attempt > 0) {
          grid_opts.mlp.seed =
              acbm::stats::substream_seed(grid_opts.mlp.seed, 0x9e1d + attempt);
        }
        auto best = nn::nar_grid_search(work, grid_opts, &lag_cache);
        if (!best) throw FitFailure(best.error(), best.detail());
        candidate = std::move(best->model);
      } else {
        nn::NarOptions fixed_opts = opts_.fixed;
        if (attempt > 0) {
          fixed_opts.mlp.seed =
              acbm::stats::substream_seed(fixed_opts.mlp.seed, 0x9e1d + attempt);
        }
        nn::NarModel model(fixed_opts);
        model.fit_prepared(
            *lag_cache.get(0, work, fixed_opts.delays, work.size()));
        candidate = std::move(model);
      }
      if (!std::isfinite(candidate.forecast_one(work))) {
        throw FitFailure(FitError::kNonconvergence,
                         "NAR forecast is non-finite");
      }
      slot.nar = std::move(candidate);
      slot.rung = attempt == 0 ? FitRung::kNar : FitRung::kNarRetry;
    } catch (const FitFailure& e) {
      note(e.code(), e.what());
    } catch (const std::invalid_argument& e) {
      note(FitError::kSeriesTooShort, e.what());
    }
  }

  // Rung: AR(1) fallback when every NAR attempt failed.
  if (!slot.nar) {
    try {
      ts::ArimaModel ar({1, 0, 0});
      ar.fit(work);
      slot.ar = std::move(ar);
      slot.rung = FitRung::kAr;
    } catch (const std::invalid_argument&) {
    } catch (const std::domain_error&) {
    }
  }

  slot.record.rung = slot.rung;
}

void SpatialModel::fit(const TargetSeries& train,
                       const trace::Dataset& dataset,
                       const net::IpToAsnMap& ip_map) {
  asn_ = train.asn;
  // The three series models are independent (each writes its own slot and
  // every candidate network seeds its own Rng), so they fit concurrently.
  const std::array<std::span<const double>, kSpatialSeriesCount> series = {
      std::span<const double>(train.duration_s),
      std::span<const double>(train.interval_s),
      std::span<const double>(train.hour)};
  parallel_for(0, kSpatialSeriesCount, [&](std::size_t s) {
    fit_one(static_cast<SpatialSeries>(s), series[s]);
  });
  // Each task staged its record in its own slot; merge in series order so
  // the report is identical at any thread count.
  report_.clear();
  for (const SeriesModel& slot : models_) report_.add(slot.record);

  // Source-AS share tracking: rank the ASes seen across the training
  // attacks by total share.
  std::unordered_map<net::Asn, double> totals;
  for (std::size_t idx : train.attack_indices) {
    for (const auto& [asn, share] :
         source_asn_distribution(dataset.attacks()[idx], ip_map)) {
      totals[asn] += share;
    }
  }
  std::vector<std::pair<net::Asn, double>> ranked(totals.begin(), totals.end());
  std::sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  tracked_ases_.clear();
  for (std::size_t i = 0; i < ranked.size() && i < opts_.top_source_ases; ++i) {
    tracked_ases_.push_back(ranked[i].first);
  }
  fitted_ = true;
}

std::vector<double> SpatialModel::one_step_predictions(
    SpatialSeries which, std::span<const double> full_series,
    std::size_t start) const {
  if (!fitted_) throw std::logic_error("SpatialModel: not fitted");
  if (start == 0 || start > full_series.size()) {
    throw std::invalid_argument("SpatialModel::one_step_predictions: bad start");
  }
  const SeriesModel& slot = series_model(which);
  std::vector<double> storage;
  const std::span<const double> series = [&] {
    if (all_finite(full_series)) return full_series;
    storage.assign(full_series.begin(), full_series.end());
    for (double& x : storage) {
      if (!std::isfinite(x)) x = slot.fallback_mean;
    }
    return std::span<const double>(storage);
  }();
  if (slot.nar && start >= slot.nar->delays()) {
    return slot.nar->one_step_predictions(series, start);
  }
  if (slot.ar && start > 0) {
    return slot.ar->one_step_predictions(series, start);
  }
  return std::vector<double>(full_series.size() - start, slot.fallback_mean);
}

double SpatialModel::forecast_next(SpatialSeries which,
                                   std::span<const double> history) const {
  if (!fitted_) throw std::logic_error("SpatialModel: not fitted");
  const SeriesModel& slot = series_model(which);
  std::vector<double> storage;
  const std::span<const double> series = [&] {
    if (all_finite(history)) return history;
    storage.assign(history.begin(), history.end());
    for (double& x : storage) {
      if (!std::isfinite(x)) x = slot.fallback_mean;
    }
    return std::span<const double>(storage);
  }();
  if (slot.nar && series.size() >= slot.nar->delays()) {
    return slot.nar->forecast_one(series);
  }
  if (slot.ar && !series.empty()) {
    return slot.ar->forecast_one(series);
  }
  return slot.fallback_mean;
}

FitRung SpatialModel::rung(SpatialSeries which) const {
  return series_model(which).rung;
}

const std::optional<nn::NarModel>& SpatialModel::nar(
    SpatialSeries which) const {
  return series_model(which).nar;
}

const std::optional<ts::ArimaModel>& SpatialModel::ar(
    SpatialSeries which) const {
  return series_model(which).ar;
}

double SpatialModel::fallback_mean(SpatialSeries which) const {
  return series_model(which).fallback_mean;
}

void SpatialModel::save(std::ostream& os) const {
  namespace io = acbm::stats::io;
  io::write_header(os, "spatial", 2);
  io::write_scalar(os, "fitted", fitted_ ? 1 : 0);
  io::write_scalar(os, "asn", asn_);
  io::write_scalar(os, "share_smoothing", opts_.share_smoothing);
  io::write_scalar(os, "share_recency_blend", opts_.share_recency_blend);
  io::write_scalar(os, "top_source_ases", opts_.top_source_ases);
  io::write_vector<net::Asn>(os, "tracked_ases", tracked_ases_);
  io::write_scalar(os, "series_count", models_.size());
  for (const SeriesModel& slot : models_) {
    io::write_scalar(os, "fallback_mean", slot.fallback_mean);
    io::write_scalar(os, "rung", static_cast<int>(slot.rung));
    io::write_scalar(os, "has_nar", slot.nar.has_value() ? 1 : 0);
    if (slot.nar) slot.nar->save(os);
    io::write_scalar(os, "has_ar", slot.ar.has_value() ? 1 : 0);
    if (slot.ar) slot.ar->save(os);
  }
}

void SpatialModel::save_framed(std::ostream& os) const {
  std::ostringstream body;
  save(body);
  os << durable::frame_payload("spatial", 3, body.str());
}

SpatialModel SpatialModel::load_framed(std::istream& is) {
  return durable::load_framed_stream(
      is, "spatial", 3, 3, [](std::istream& body) { return load(body); });
}

SpatialModel SpatialModel::load(std::istream& is) {
  namespace io = acbm::stats::io;
  io::expect_header(is, "spatial", 2);
  SpatialModel model;
  model.fitted_ = io::read_scalar<int>(is, "fitted") != 0;
  model.asn_ = io::read_scalar<net::Asn>(is, "asn");
  model.opts_.share_smoothing = io::read_scalar<double>(is, "share_smoothing");
  model.opts_.share_recency_blend =
      io::read_scalar<double>(is, "share_recency_blend");
  model.opts_.top_source_ases =
      io::read_scalar<std::size_t>(is, "top_source_ases");
  model.tracked_ases_ = io::read_vector<net::Asn>(is, "tracked_ases");
  const auto count = io::read_scalar<std::size_t>(is, "series_count");
  if (count != kSpatialSeriesCount) {
    throw std::invalid_argument("SpatialModel::load: series count mismatch");
  }
  for (SeriesModel& slot : model.models_) {
    slot.fallback_mean = io::read_scalar<double>(is, "fallback_mean");
    const int rung = io::read_scalar<int>(is, "rung");
    if (rung < 0 || rung > static_cast<int>(FitRung::kPooledLinear)) {
      throw std::invalid_argument("SpatialModel::load: bad rung");
    }
    slot.rung = static_cast<FitRung>(rung);
    if (io::read_scalar<int>(is, "has_nar") != 0) {
      slot.nar = nn::NarModel::load(is);
    }
    if (io::read_scalar<int>(is, "has_ar") != 0) {
      slot.ar = ts::ArimaModel::load(is);
    }
  }
  return model;
}

std::unordered_map<net::Asn, double> SpatialModel::predict_source_distribution(
    std::span<const std::unordered_map<net::Asn, double>> history) const {
  if (!fitted_) throw std::logic_error("SpatialModel: not fitted");
  std::unordered_map<net::Asn, double> prediction;
  if (history.empty()) {
    // No observations yet: uniform over tracked ASes.
    if (!tracked_ases_.empty()) {
      const double u = 1.0 / static_cast<double>(tracked_ases_.size());
      for (net::Asn asn : tracked_ases_) prediction[asn] = u;
    }
    return prediction;
  }

  // Per tracked AS: blend the historical mean share (optimal when the
  // botmaster's pool is stable) with a recency EWMA (adaptive when bots
  // "rotate or shift", §III-B1).
  const double alpha = opts_.share_smoothing;
  const double blend = opts_.share_recency_blend;
  double tracked_total = 0.0;
  for (net::Asn asn : tracked_ases_) {
    double ewma = 0.0;
    double sum = 0.0;
    bool seeded = false;
    for (const auto& dist : history) {
      const auto it = dist.find(asn);
      const double share = it == dist.end() ? 0.0 : it->second;
      sum += share;
      if (!seeded) {
        ewma = share;
        seeded = true;
      } else {
        ewma = alpha * share + (1.0 - alpha) * ewma;
      }
    }
    const double mean_share = sum / static_cast<double>(history.size());
    const double estimate = blend * ewma + (1.0 - blend) * mean_share;
    if (estimate > 0.0) {
      prediction[asn] = estimate;
      tracked_total += estimate;
    }
  }
  if (tracked_total > 1.0) {
    for (auto& [asn, share] : prediction) share /= tracked_total;
    tracked_total = 1.0;
  }
  if (tracked_total < 1.0) {
    prediction[0] = 1.0 - tracked_total;  // Unattributed remainder.
  }
  return prediction;
}

}  // namespace acbm::core
