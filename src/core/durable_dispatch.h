// Internal dispatch plumbing for the hardware CRC32C translation units
// (durable_crc_sse42.cpp, durable_crc_armv8.cpp) compiled with per-file
// arch flags — same pattern as stats/kernels_dispatch.h. Not part of the
// public API; include core/durable.h instead.
#pragma once

#include <cstddef>
#include <cstdint>

namespace acbm::core::durable::detail {

/// Advances a raw (pre-inverted) CRC32C state over `n` bytes. The public
/// crc32c() wrapper owns the ~crc init/final inversions so table and
/// hardware paths share one calling convention.
using CrcRawFn = std::uint32_t (*)(const unsigned char* data, std::size_t n,
                                   std::uint32_t crc);

/// Hardware implementations provided by the arch-specific TUs; null when
/// the TU is not built for this target (the caller also probes the CPU at
/// runtime before selecting one).
[[nodiscard]] CrcRawFn crc32c_sse42() noexcept;
[[nodiscard]] CrcRawFn crc32c_armv8() noexcept;

}  // namespace acbm::core::durable::detail
