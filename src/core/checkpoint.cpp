#include "core/checkpoint.h"

#include <chrono>
#include <fstream>
#include <sstream>
#include <system_error>
#include <thread>
#include <utility>
#include <vector>

#include "core/observe.h"
#include "core/robust.h"

namespace acbm::core {

namespace fs = std::filesystem;

namespace {

constexpr int kManifestFormat = 1;
constexpr std::string_view kMarkerKind = "stage_done";
constexpr std::string_view kMarkerSuffix = ".done";

std::string json_escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

/// Extracts the value of `"key": "<value>"` from a JSON line, unescaping
/// \" and \\. Returns nullopt when the key is absent.
std::optional<std::string> json_string_field(std::string_view line,
                                             std::string_view key) {
  std::string needle("\"");
  needle += key;
  needle += "\": \"";
  const std::size_t at = line.find(needle);
  if (at == std::string_view::npos) return std::nullopt;
  std::string out;
  bool escaped = false;
  for (std::size_t i = at + needle.size(); i < line.size(); ++i) {
    const char c = line[i];
    if (escaped) {
      out += c;
      escaped = false;
    } else if (c == '\\') {
      escaped = true;
    } else if (c == '"') {
      return out;
    } else {
      out += c;
    }
  }
  return std::nullopt;  // Unterminated string: treat as absent.
}

/// Extracts `key=<value>` from a marker payload of newline-separated pairs.
std::optional<std::string> payload_field(std::string_view payload,
                                         std::string_view key) {
  std::size_t begin = 0;
  while (begin <= payload.size()) {
    std::size_t end = payload.find('\n', begin);
    if (end == std::string_view::npos) end = payload.size();
    const std::string_view line = payload.substr(begin, end - begin);
    begin = end + 1;
    if (line.size() > key.size() && line.substr(0, key.size()) == key &&
        line[key.size()] == '=') {
      return std::string(line.substr(key.size() + 1));
    }
  }
  return std::nullopt;
}

/// Reads one stage-completion marker. Returns the recorded stage name and
/// payload CRC, or nullopt when the marker is missing, unreadable (possibly
/// a reader racing its publisher — the stage just looks incomplete until
/// the next check), or stamped with a different config hash.
std::optional<std::pair<std::string, std::uint32_t>> parse_marker(
    const fs::path& path, const std::string& config_hex) {
  // A zero-length marker is what a writer crashed before its first write()
  // leaves behind (or a filesystem that lost the data blocks on power loss).
  // It is not corruption to diagnose — the stage simply is not done.
  std::error_code size_ec;
  const auto size = fs::file_size(path, size_ec);
  if (size_ec || size == 0) return std::nullopt;
  std::string payload;
  try {
    payload = durable::load_artifact(path, kMarkerKind, 1, 1, false, nullptr,
                                     /*quarantine_on_error=*/false);
  } catch (const durable::LoadFailure&) {
    return std::nullopt;
  }
  const auto stage = payload_field(payload, "stage");
  const auto config = payload_field(payload, "config");
  const auto crc = payload_field(payload, "crc32c");
  if (!stage || !config || !crc || *config != config_hex) return std::nullopt;
  try {
    return std::make_pair(
        *stage, static_cast<std::uint32_t>(std::stoul(*crc, nullptr, 16)));
  } catch (const std::exception&) {
    return std::nullopt;
  }
}

}  // namespace

CheckpointDir::CheckpointDir(fs::path dir, Options opts)
    : dir_(std::move(dir)), opts_(opts) {
  std::error_code ec;
  fs::create_directories(dir_, ec);
  if (ec) {
    throw durable::WriteFailure("checkpoint: cannot create directory " +
                                dir_.string() + ": " + ec.message());
  }
  if (opts_.shared) {
    refresh();
    journal("open config_hash=" + durable::to_hex(opts_.config_hash) +
            " shared stages=" + std::to_string(stages_.size()));
    return;
  }
  if (opts_.resume) read_manifest();
  write_manifest();
  journal("open config_hash=" + durable::to_hex(opts_.config_hash) +
          (opts_.resume ? " resume" : " fresh") + " stages=" +
          std::to_string(stages_.size()));
}

std::string CheckpointDir::slug(std::string_view stage) {
  std::string out;
  out.reserve(stage.size());
  for (char c : stage) {
    const bool safe = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                      (c >= '0' && c <= '9') || c == '.' || c == '_' ||
                      c == '-' || c == '=';
    out += safe ? c : '-';
  }
  return out.empty() ? std::string("stage") : out;
}

fs::path CheckpointDir::artifact_path(std::string_view stage) const {
  return dir_ / (slug(stage) + ".art");
}

fs::path CheckpointDir::marker_path(std::string_view stage) const {
  return dir_ / (slug(stage) + std::string(kMarkerSuffix));
}

bool CheckpointDir::is_complete(std::string_view stage) {
  if (stages_.find(std::string(stage)) != stages_.end()) return true;
  if (opts_.shared) return read_marker(stage);
  return false;
}

void CheckpointDir::refresh() {
  if (!opts_.shared) return;
  // Rebuild from the markers so the scan is authoritative both ways: it
  // picks up stages other processes completed AND forgets stages another
  // process condemned (dropped marker after an unrecoverable artifact).
  stages_.clear();
  const std::string config_hex = durable::to_hex(opts_.config_hash);
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir_, ec)) {
    const fs::path& path = entry.path();
    if (path.extension() != kMarkerSuffix) continue;
    if (const auto marker = parse_marker(path, config_hex)) {
      stages_[marker->first] = marker->second;
    }
  }
}

bool CheckpointDir::read_marker(std::string_view stage) {
  const auto marker =
      parse_marker(marker_path(stage), durable::to_hex(opts_.config_hash));
  if (!marker) return false;
  stages_[marker->first] = marker->second;
  return stages_.find(std::string(stage)) != stages_.end();
}

void CheckpointDir::write_marker(std::string_view stage, std::uint32_t crc) {
  std::string payload = "stage=" + std::string(stage) + "\nconfig=" +
                        durable::to_hex(opts_.config_hash) + "\ncrc32c=" +
                        durable::to_hex(crc) + "\n";
  durable::save_artifact(marker_path(stage), kMarkerKind, 1, payload);
}

void CheckpointDir::invalidate(std::string_view stage) {
  const std::string name(stage);
  const bool known =
      stages_.find(name) != stages_.end() || (opts_.shared && read_marker(stage));
  if (!known) return;
  journal("invalidate " + name);
  drop_stage(name);
  ACBM_COUNT("checkpoint.invalidate", 1);
}

std::vector<std::string> CheckpointDir::completed_stages() const {
  std::vector<std::string> out;
  out.reserve(stages_.size());
  for (const auto& [stage, crc] : stages_) out.push_back(stage);
  return out;
}

void CheckpointDir::drop_stage(const std::string& stage) {
  stages_.erase(stage);
  if (opts_.shared) {
    // Remove the marker so every process (not just this one) reruns it.
    std::error_code ec;
    fs::remove(marker_path(stage), ec);
  } else {
    write_manifest();
  }
}

std::optional<std::string> CheckpointDir::load(std::string_view stage) {
  if (stages_.find(std::string(stage)) == stages_.end()) {
    if (!opts_.shared || !read_marker(stage)) {
      ACBM_COUNT("checkpoint.load.miss", 1);
      return std::nullopt;
    }
  }
  FaultInjector& injector = FaultInjector::instance();
  const std::string kind = slug(stage);
  const fs::path primary = artifact_path(stage);
  const int attempts = 1 + (opts_.read_retries > 0 ? opts_.read_retries : 0);
  for (int gen = 0; gen <= opts_.keep_generations; ++gen) {
    const fs::path candidate =
        gen == 0 ? primary
                 : fs::path(primary.string() + ".g" + std::to_string(gen));
    std::error_code ec;
    if (gen > 0 && !fs::exists(candidate, ec)) continue;
    // A zero-length artifact is a crashed writer's leftover, not bit rot:
    // skip it without burning read retries or quarantining (the noise would
    // read as corruption when nothing was ever durably written).
    std::error_code size_ec;
    const auto size = fs::file_size(candidate, size_ec);
    if (!size_ec && size == 0) {
      journal("load " + std::string(stage) + " empty file=" +
              candidate.string() + "; skipping");
      continue;
    }
    for (int attempt = 0; attempt < attempts; ++attempt) {
      const bool last = attempt + 1 == attempts;
      try {
        if (injector.enabled() && injector.fires("checkpoint.read", stage)) {
          throw durable::LoadFailure(durable::LoadError::kBadChecksum,
                                     "injected fault: checkpoint.read " +
                                         std::string(stage));
        }
        // Non-final attempts read without quarantining: a bad read may just
        // be a racing publisher mid-rename. Only the final attempt condemns
        // the file (quarantine + report event).
        std::string payload = durable::load_artifact(
            candidate, kind, 1, 1, false, last ? &report_ : nullptr,
            /*quarantine_on_error=*/last);
        if (gen > 0) {
          report_.generation = gen;
          journal("load " + std::string(stage) + " fallback-generation=" +
                  std::to_string(gen));
        } else {
          journal("load " + std::string(stage) + " ok");
        }
        ACBM_COUNT("checkpoint.load.hit", 1);
        return payload;
      } catch (const durable::LoadFailure& e) {
        if (!last) {
          ACBM_COUNT("checkpoint.load.retry", 1);
          journal("load " + std::string(stage) + " retry attempt=" +
                  std::to_string(attempt + 1) + " file=" + candidate.string() +
                  " error=" + to_string(e.code()));
          if (opts_.retry_backoff_ms > 0) {
            std::this_thread::sleep_for(
                std::chrono::milliseconds(opts_.retry_backoff_ms
                                          << attempt));
          }
          continue;
        }
        journal("load " + std::string(stage) + " corrupt file=" +
                candidate.string() + " error=" + to_string(e.code()));
        // load_artifact quarantined the bad copy (when the error class
        // warrants it) and recorded the event; count the quarantine and
        // fall through to the next generation.
        if (!report_.events.empty() &&
            report_.events.back().path == candidate.string() &&
            !report_.events.back().quarantined_to.empty()) {
          ACBM_COUNT("checkpoint.quarantine", 1);
        }
      }
    }
  }
  journal("load " + std::string(stage) + " unrecoverable; stage will rerun");
  drop_stage(std::string(stage));
  ACBM_COUNT("checkpoint.load.miss", 1);
  return std::nullopt;
}

void CheckpointDir::store(std::string_view stage, std::string_view payload) {
  const fs::path primary = artifact_path(stage);
  // Rotate prior copies: art -> .g1 -> .g2 -> dropped.
  std::error_code ec;
  const fs::path oldest =
      primary.string() + ".g" + std::to_string(opts_.keep_generations);
  fs::remove(oldest, ec);
  for (int gen = opts_.keep_generations - 1; gen >= 0; --gen) {
    const fs::path from =
        gen == 0 ? primary
                 : fs::path(primary.string() + ".g" + std::to_string(gen));
    if (!fs::exists(from, ec)) continue;
    fs::rename(from,
               fs::path(primary.string() + ".g" + std::to_string(gen + 1)), ec);
  }

  durable::save_artifact(primary, slug(stage), 1, payload);

  // Crash window between artifact and completion record: the artifact
  // exists but neither the manifest nor the marker records completion, so
  // resume reruns the stage.
  FaultInjector& injector = FaultInjector::instance();
  if (injector.enabled() && injector.fires("checkpoint.stage", stage)) {
    throw durable::WriteFailure("injected fault: checkpoint.stage " +
                                std::string(stage));
  }

  stages_[std::string(stage)] = durable::crc32c(payload);
  if (opts_.shared) {
    write_marker(stage, stages_[std::string(stage)]);
  } else {
    write_manifest();
  }
  ACBM_COUNT("checkpoint.store", 1);
  journal("store " + std::string(stage) + " crc32c=" +
          durable::to_hex(stages_[std::string(stage)]));
}

void CheckpointDir::read_manifest() {
  const fs::path manifest = dir_ / "run.json";
  std::error_code ec;
  if (!fs::exists(manifest, ec)) return;
  std::string text;
  try {
    text = durable::read_file(manifest);
  } catch (const durable::LoadFailure&) {
    return;
  }
  // Line-oriented parse of our own writer's output. Any structural surprise
  // quarantines the manifest and starts fresh — stage artifacts keep their
  // own checksums, so the worst case is rerunning completed stages.
  std::istringstream in(text);
  std::string line;
  bool saw_hash = false;
  std::map<std::string, std::uint32_t> stages;
  while (std::getline(in, line)) {
    if (const auto hash = json_string_field(line, "config_hash")) {
      saw_hash = true;
      if (*hash != durable::to_hex(opts_.config_hash)) {
        journal("manifest config_hash mismatch (" + *hash +
                "); prior stages ignored");
        return;
      }
      continue;
    }
    const auto name = json_string_field(line, "name");
    const auto crc = json_string_field(line, "crc32c");
    if (name && crc) {
      try {
        stages[*name] =
            static_cast<std::uint32_t>(std::stoul(*crc, nullptr, 16));
      } catch (const std::exception&) {
        saw_hash = false;  // Malformed entry: treat the manifest as corrupt.
        break;
      }
    }
  }
  if (!saw_hash) {
    const fs::path dest = durable::quarantine(manifest);
    report_.events.push_back({manifest.string(), durable::LoadError::kParse,
                              "unparseable run manifest", dest.string()});
    journal("manifest corrupt; quarantined to " + dest.string());
    return;
  }
  stages_ = std::move(stages);
}

void CheckpointDir::write_manifest() {
  std::ostringstream json;
  json << "{\n";
  json << "  \"format\": " << kManifestFormat << ",\n";
  json << "  \"config_hash\": \"" << durable::to_hex(opts_.config_hash)
       << "\",\n";
  json << "  \"stages\": [";
  bool first = true;
  for (const auto& [stage, crc] : stages_) {
    json << (first ? "\n" : ",\n");
    first = false;
    json << "    {\"name\": \"" << json_escape(stage) << "\", \"file\": \""
         << json_escape(slug(stage) + ".art") << "\", \"crc32c\": \""
         << durable::to_hex(crc) << "\"}";
  }
  json << (first ? "]\n" : "\n  ]\n");
  json << "}\n";
  durable::atomic_write_file(dir_ / "run.json", json.str());
}

void CheckpointDir::journal(std::string_view line) {
  std::ofstream out(dir_ / "journal.log", std::ios::app);
  if (!out) return;  // The journal is an audit aid, never load-bearing.
  out << line << '\n';
}

}  // namespace acbm::core
