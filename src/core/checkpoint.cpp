#include "core/checkpoint.h"

#include <fstream>
#include <sstream>
#include <system_error>
#include <vector>

#include "core/observe.h"
#include "core/robust.h"

namespace acbm::core {

namespace fs = std::filesystem;

namespace {

constexpr int kManifestFormat = 1;

std::string json_escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

/// Extracts the value of `"key": "<value>"` from a JSON line, unescaping
/// \" and \\. Returns nullopt when the key is absent.
std::optional<std::string> json_string_field(std::string_view line,
                                             std::string_view key) {
  std::string needle("\"");
  needle += key;
  needle += "\": \"";
  const std::size_t at = line.find(needle);
  if (at == std::string_view::npos) return std::nullopt;
  std::string out;
  bool escaped = false;
  for (std::size_t i = at + needle.size(); i < line.size(); ++i) {
    const char c = line[i];
    if (escaped) {
      out += c;
      escaped = false;
    } else if (c == '\\') {
      escaped = true;
    } else if (c == '"') {
      return out;
    } else {
      out += c;
    }
  }
  return std::nullopt;  // Unterminated string: treat as absent.
}

}  // namespace

CheckpointDir::CheckpointDir(fs::path dir, Options opts)
    : dir_(std::move(dir)), opts_(opts) {
  std::error_code ec;
  fs::create_directories(dir_, ec);
  if (ec) {
    throw durable::WriteFailure("checkpoint: cannot create directory " +
                                dir_.string() + ": " + ec.message());
  }
  if (opts_.resume) read_manifest();
  write_manifest();
  journal("open config_hash=" + durable::to_hex(opts_.config_hash) +
          (opts_.resume ? " resume" : " fresh") + " stages=" +
          std::to_string(stages_.size()));
}

std::string CheckpointDir::slug(std::string_view stage) {
  std::string out;
  out.reserve(stage.size());
  for (char c : stage) {
    const bool safe = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                      (c >= '0' && c <= '9') || c == '.' || c == '_' ||
                      c == '-' || c == '=';
    out += safe ? c : '-';
  }
  return out.empty() ? std::string("stage") : out;
}

fs::path CheckpointDir::artifact_path(std::string_view stage) const {
  return dir_ / (slug(stage) + ".art");
}

bool CheckpointDir::is_complete(std::string_view stage) const {
  return stages_.find(std::string(stage)) != stages_.end();
}

std::optional<std::string> CheckpointDir::load(std::string_view stage) {
  const auto it = stages_.find(std::string(stage));
  if (it == stages_.end()) {
    ACBM_COUNT("checkpoint.load.miss", 1);
    return std::nullopt;
  }
  const std::string kind = slug(stage);
  const fs::path primary = artifact_path(stage);
  for (int gen = 0; gen <= opts_.keep_generations; ++gen) {
    const fs::path candidate =
        gen == 0 ? primary
                 : fs::path(primary.string() + ".g" + std::to_string(gen));
    std::error_code ec;
    if (gen > 0 && !fs::exists(candidate, ec)) continue;
    try {
      std::string payload =
          durable::load_artifact(candidate, kind, 1, 1, false, &report_);
      if (gen > 0) {
        report_.generation = gen;
        journal("load " + std::string(stage) + " fallback-generation=" +
                std::to_string(gen));
      } else {
        journal("load " + std::string(stage) + " ok");
      }
      ACBM_COUNT("checkpoint.load.hit", 1);
      return payload;
    } catch (const durable::LoadFailure& e) {
      journal("load " + std::string(stage) + " corrupt file=" +
              candidate.string() + " error=" + to_string(e.code()));
      // load_artifact already quarantined the bad copy and recorded the
      // event; fall through to the next generation.
    }
  }
  journal("load " + std::string(stage) + " unrecoverable; stage will rerun");
  stages_.erase(std::string(stage));
  write_manifest();
  ACBM_COUNT("checkpoint.load.miss", 1);
  return std::nullopt;
}

void CheckpointDir::store(std::string_view stage, std::string_view payload) {
  const fs::path primary = artifact_path(stage);
  // Rotate prior copies: art -> .g1 -> .g2 -> dropped.
  std::error_code ec;
  const fs::path oldest =
      primary.string() + ".g" + std::to_string(opts_.keep_generations);
  fs::remove(oldest, ec);
  for (int gen = opts_.keep_generations - 1; gen >= 0; --gen) {
    const fs::path from =
        gen == 0 ? primary
                 : fs::path(primary.string() + ".g" + std::to_string(gen));
    if (!fs::exists(from, ec)) continue;
    fs::rename(from,
               fs::path(primary.string() + ".g" + std::to_string(gen + 1)), ec);
  }

  durable::save_artifact(primary, slug(stage), 1, payload);

  // Crash window between artifact and marker: the artifact exists but the
  // manifest never records completion, so resume reruns the stage.
  FaultInjector& injector = FaultInjector::instance();
  if (injector.enabled() && injector.fires("checkpoint.stage", stage)) {
    throw durable::WriteFailure("injected fault: checkpoint.stage " +
                                std::string(stage));
  }

  stages_[std::string(stage)] = durable::crc32c(payload);
  write_manifest();
  ACBM_COUNT("checkpoint.store", 1);
  journal("store " + std::string(stage) + " crc32c=" +
          durable::to_hex(stages_[std::string(stage)]));
}

void CheckpointDir::read_manifest() {
  const fs::path manifest = dir_ / "run.json";
  std::error_code ec;
  if (!fs::exists(manifest, ec)) return;
  std::string text;
  try {
    text = durable::read_file(manifest);
  } catch (const durable::LoadFailure&) {
    return;
  }
  // Line-oriented parse of our own writer's output. Any structural surprise
  // quarantines the manifest and starts fresh — stage artifacts keep their
  // own checksums, so the worst case is rerunning completed stages.
  std::istringstream in(text);
  std::string line;
  bool saw_hash = false;
  std::map<std::string, std::uint32_t> stages;
  while (std::getline(in, line)) {
    if (const auto hash = json_string_field(line, "config_hash")) {
      saw_hash = true;
      if (*hash != durable::to_hex(opts_.config_hash)) {
        journal("manifest config_hash mismatch (" + *hash +
                "); prior stages ignored");
        return;
      }
      continue;
    }
    const auto name = json_string_field(line, "name");
    const auto crc = json_string_field(line, "crc32c");
    if (name && crc) {
      try {
        stages[*name] =
            static_cast<std::uint32_t>(std::stoul(*crc, nullptr, 16));
      } catch (const std::exception&) {
        saw_hash = false;  // Malformed entry: treat the manifest as corrupt.
        break;
      }
    }
  }
  if (!saw_hash) {
    const fs::path dest = durable::quarantine(manifest);
    report_.events.push_back({manifest.string(), durable::LoadError::kParse,
                              "unparseable run manifest", dest.string()});
    journal("manifest corrupt; quarantined to " + dest.string());
    return;
  }
  stages_ = std::move(stages);
}

void CheckpointDir::write_manifest() {
  std::ostringstream json;
  json << "{\n";
  json << "  \"format\": " << kManifestFormat << ",\n";
  json << "  \"config_hash\": \"" << durable::to_hex(opts_.config_hash)
       << "\",\n";
  json << "  \"stages\": [";
  bool first = true;
  for (const auto& [stage, crc] : stages_) {
    json << (first ? "\n" : ",\n");
    first = false;
    json << "    {\"name\": \"" << json_escape(stage) << "\", \"file\": \""
         << json_escape(slug(stage) + ".art") << "\", \"crc32c\": \""
         << durable::to_hex(crc) << "\"}";
  }
  json << (first ? "]\n" : "\n  ]\n");
  json << "}\n";
  durable::atomic_write_file(dir_ / "run.json", json.str());
}

void CheckpointDir::journal(std::string_view line) {
  std::ofstream out(dir_ / "journal.log", std::ios::app);
  if (!out) return;  // The journal is an audit aid, never load-bearing.
  out << line << '\n';
}

}  // namespace acbm::core
