#include "core/evaluation.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <unordered_map>
#include <unordered_set>

#include "core/parallel.h"
#include "stats/metrics.h"

namespace acbm::core {

namespace {

// Truncates a family series to its first `n` attacks (a chronological
// training prefix).
FamilySeries prefix(const FamilySeries& fs, std::size_t n) {
  FamilySeries out;
  const auto take = [n](const std::vector<double>& v) {
    return std::vector<double>(v.begin(),
                               v.begin() + static_cast<std::ptrdiff_t>(
                                               std::min(n, v.size())));
  };
  out.attack_indices.assign(
      fs.attack_indices.begin(),
      fs.attack_indices.begin() +
          static_cast<std::ptrdiff_t>(std::min(n, fs.attack_indices.size())));
  out.magnitude = take(fs.magnitude);
  out.activity = take(fs.activity);
  out.norm_magnitude = take(fs.norm_magnitude);
  out.source_coeff = take(fs.source_coeff);
  out.interval_s = take(fs.interval_s);
  out.hour = take(fs.hour);
  out.day = take(fs.day);
  out.duration_s = take(fs.duration_s);
  return out;
}

std::span<const double> series_of(const FamilySeries& fs, TemporalSeries which) {
  switch (which) {
    case TemporalSeries::kMagnitude: return fs.magnitude;
    case TemporalSeries::kActivity: return fs.activity;
    case TemporalSeries::kNormMagnitude: return fs.norm_magnitude;
    case TemporalSeries::kSourceCoeff: return fs.source_coeff;
    case TemporalSeries::kInterval: return fs.interval_s;
    case TemporalSeries::kHour: return fs.hour;
  }
  throw std::invalid_argument("series_of: unknown series");
}

std::span<const double> series_of(const TargetSeries& ts, SpatialSeries which) {
  switch (which) {
    case SpatialSeries::kDuration: return ts.duration_s;
    case SpatialSeries::kInterval: return ts.interval_s;
    case SpatialSeries::kHour: return ts.hour;
  }
  throw std::invalid_argument("series_of: unknown series");
}

double tv_distance(const std::unordered_map<net::Asn, double>& a,
                   const std::unordered_map<net::Asn, double>& b) {
  double l1 = 0.0;
  std::unordered_set<net::Asn> keys;
  for (const auto& [asn, share] : a) keys.insert(asn);
  for (const auto& [asn, share] : b) keys.insert(asn);
  for (net::Asn asn : keys) {
    const auto ia = a.find(asn);
    const auto ib = b.find(asn);
    l1 += std::abs((ia == a.end() ? 0.0 : ia->second) -
                   (ib == b.end() ? 0.0 : ib->second));
  }
  return l1 / 2.0;  // Total variation.
}

double rms(const std::vector<double>& errors) {
  if (errors.empty()) return 0.0;
  double acc = 0.0;
  for (double e : errors) acc += e * e;
  return std::sqrt(acc / static_cast<double>(errors.size()));
}

}  // namespace

std::vector<std::uint32_t> most_active_families(const trace::Dataset& dataset,
                                                std::size_t count) {
  std::vector<std::pair<std::uint32_t, std::size_t>> volumes;
  for (std::uint32_t f = 0;
       f < static_cast<std::uint32_t>(dataset.family_names().size()); ++f) {
    volumes.emplace_back(f, dataset.attacks_of_family(f).size());
  }
  std::sort(volumes.begin(), volumes.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  std::vector<std::uint32_t> out;
  for (std::size_t i = 0; i < volumes.size() && i < count; ++i) {
    out.push_back(volumes[i].first);
  }
  return out;
}

SeriesEvaluation evaluate_temporal_series(const trace::Dataset& dataset,
                                          const net::IpToAsnMap& ip_map,
                                          std::uint32_t family,
                                          TemporalSeries which,
                                          const TemporalModelOptions& opts,
                                          double train_fraction) {
  if (!(train_fraction > 0.0 && train_fraction < 1.0)) {
    throw std::invalid_argument("evaluate_temporal_series: bad fraction");
  }
  SeriesEvaluation out;
  out.family = dataset.family_names().at(family);
  const FamilySeries full =
      extract_family_series(dataset, family, ip_map, nullptr);
  const std::span<const double> series = series_of(full, which);
  const auto split = static_cast<std::size_t>(
      static_cast<double>(series.size()) * train_fraction);
  if (split < 4 || split >= series.size()) return out;

  TemporalModel model(opts);
  model.fit(prefix(full, split));
  out.model_pred = model.one_step_predictions(which, series, split);
  out.same_pred = always_same_predictions(series, split);
  out.mean_pred = always_mean_predictions(series, split);
  out.truth.assign(series.begin() + static_cast<std::ptrdiff_t>(split),
                   series.end());
  out.model_rmse = acbm::stats::rmse(out.truth, out.model_pred);
  out.same_rmse = acbm::stats::rmse(out.truth, out.same_pred);
  out.mean_rmse = acbm::stats::rmse(out.truth, out.mean_pred);
  return out;
}

SpatialEvaluation evaluate_spatial_series(const trace::Dataset& dataset,
                                          const net::IpToAsnMap& ip_map,
                                          std::uint32_t family,
                                          SpatialSeries which,
                                          const SpatialModelOptions& opts,
                                          double train_fraction,
                                          std::size_t min_target_attacks) {
  if (!(train_fraction > 0.0 && train_fraction < 1.0)) {
    throw std::invalid_argument("evaluate_spatial_series: bad fraction");
  }
  SpatialEvaluation out;
  out.family = dataset.family_names().at(family);

  // Per-target series restricted to this family's attacks.
  std::unordered_map<net::Asn, std::vector<std::size_t>> per_target;
  for (std::size_t idx : dataset.attacks_of_family(family)) {
    per_target[dataset.attacks()[idx].target_asn].push_back(idx);
  }
  std::vector<net::Asn> targets;
  targets.reserve(per_target.size());
  for (const auto& [asn, list] : per_target) targets.push_back(asn);
  std::sort(targets.begin(), targets.end());

  // Per-target fit+score tasks are independent; their per-attack outputs
  // are concatenated in sorted-target order, matching the serial sweep.
  struct TargetBlock {
    std::vector<double> truth;
    std::vector<double> model_pred;
    std::vector<double> same_pred;
    std::vector<double> mean_pred;
    bool evaluated = false;
  };
  const std::vector<TargetBlock> blocks = parallel_map(
      targets.size(), [&](std::size_t ti) -> TargetBlock {
    TargetBlock block;
    const net::Asn asn = targets[ti];
    const auto& indices = per_target.at(asn);
    if (indices.size() < min_target_attacks) return block;
    // Build the target series restricted to this family.
    TargetSeries ts;
    ts.asn = asn;
    ts.attack_indices = indices;
    for (std::size_t k = 0; k < indices.size(); ++k) {
      const trace::Attack& attack = dataset.attacks()[indices[k]];
      ts.duration_s.push_back(attack.duration_s);
      ts.magnitude.push_back(static_cast<double>(attack.magnitude()));
      ts.interval_s.push_back(
          k == 0 ? 0.0
                 : static_cast<double>(
                       attack.start - dataset.attacks()[indices[k - 1]].start));
      const trace::DayHour dh =
          trace::decompose_timestamp(attack.start, dataset.window_start());
      ts.hour.push_back(static_cast<double>(dh.hour));
      ts.day.push_back(static_cast<double>(dh.day));
    }

    const std::span<const double> series = series_of(ts, which);
    const auto split = static_cast<std::size_t>(
        static_cast<double>(series.size()) * train_fraction);
    if (split < 3 || split >= series.size()) return block;

    TargetSeries train = ts;
    train.attack_indices.resize(split);
    train.duration_s.resize(split);
    train.magnitude.resize(split);
    train.interval_s.resize(split);
    train.hour.resize(split);
    train.day.resize(split);

    SpatialModel model(opts);
    model.fit(train, dataset, ip_map);
    const std::vector<double> pred =
        model.one_step_predictions(which, series, split);
    const std::vector<double> same = always_same_predictions(series, split);
    const std::vector<double> mean = always_mean_predictions(series, split);
    for (std::size_t i = 0; i < pred.size(); ++i) {
      block.truth.push_back(series[split + i]);
      block.model_pred.push_back(pred[i]);
      block.same_pred.push_back(same[i]);
      block.mean_pred.push_back(mean[i]);
    }
    block.evaluated = true;
    return block;
  });
  for (const TargetBlock& block : blocks) {
    if (!block.evaluated) continue;
    out.truth.insert(out.truth.end(), block.truth.begin(), block.truth.end());
    out.model_pred.insert(out.model_pred.end(), block.model_pred.begin(),
                          block.model_pred.end());
    out.same_pred.insert(out.same_pred.end(), block.same_pred.begin(),
                         block.same_pred.end());
    out.mean_pred.insert(out.mean_pred.end(), block.mean_pred.begin(),
                         block.mean_pred.end());
    ++out.targets_evaluated;
  }
  if (!out.truth.empty()) {
    out.model_rmse = acbm::stats::rmse(out.truth, out.model_pred);
    out.same_rmse = acbm::stats::rmse(out.truth, out.same_pred);
    out.mean_rmse = acbm::stats::rmse(out.truth, out.mean_pred);
  }
  return out;
}

SourceDistributionEvaluation evaluate_source_distribution(
    const trace::Dataset& dataset, const net::IpToAsnMap& ip_map,
    std::uint32_t family, const SpatialModelOptions& opts,
    double train_fraction, std::size_t min_target_attacks) {
  if (!(train_fraction > 0.0 && train_fraction < 1.0)) {
    throw std::invalid_argument("evaluate_source_distribution: bad fraction");
  }
  SourceDistributionEvaluation out;
  out.family = dataset.family_names().at(family);

  std::unordered_map<net::Asn, std::vector<std::size_t>> per_target;
  for (std::size_t idx : dataset.attacks_of_family(family)) {
    per_target[dataset.attacks()[idx].target_asn].push_back(idx);
  }
  std::vector<net::Asn> targets;
  for (const auto& [asn, list] : per_target) targets.push_back(asn);
  std::sort(targets.begin(), targets.end());

  std::unordered_map<net::Asn, double> agg_truth;
  std::unordered_map<net::Asn, double> agg_pred;
  std::vector<double> same_tv;
  std::vector<double> mean_tv;
  std::size_t samples = 0;

  // Per-target prediction tasks run concurrently; their partial aggregates
  // merge below in sorted-target order, so the reduction is deterministic.
  struct TargetAgg {
    std::vector<double> per_attack_tv;
    std::vector<double> same_tv;
    std::vector<double> mean_tv;
    std::unordered_map<net::Asn, double> agg_truth;
    std::unordered_map<net::Asn, double> agg_pred;
    std::size_t samples = 0;
  };
  const std::vector<TargetAgg> aggs = parallel_map(
      targets.size(), [&](std::size_t ti) -> TargetAgg {
    TargetAgg agg;
    const net::Asn asn = targets[ti];
    const auto& indices = per_target.at(asn);
    if (indices.size() < min_target_attacks) return agg;
    const auto split = static_cast<std::size_t>(
        static_cast<double>(indices.size()) * train_fraction);
    if (split < 2 || split >= indices.size()) return agg;

    // Distributions of every attack on this target, chronological.
    std::vector<std::unordered_map<net::Asn, double>> dists;
    dists.reserve(indices.size());
    for (std::size_t idx : indices) {
      dists.push_back(source_asn_distribution(dataset.attacks()[idx], ip_map));
    }

    TargetSeries train;
    train.asn = asn;
    train.attack_indices.assign(indices.begin(),
                                indices.begin() + static_cast<std::ptrdiff_t>(split));
    // The spatial model only needs attack_indices for share tracking here;
    // numeric series can stay empty (mean fallbacks are unused).
    SpatialModel model(opts);
    model.fit(train, dataset, ip_map);

    // Running historical mean distribution for the Always-Mean baseline.
    std::unordered_map<net::Asn, double> running_sum;
    for (std::size_t k = 0; k < split; ++k) {
      for (const auto& [a, share] : dists[k]) running_sum[a] += share;
    }

    for (std::size_t k = split; k < indices.size(); ++k) {
      const std::span<const std::unordered_map<net::Asn, double>> history(
          dists.data(), k);
      const auto pred = model.predict_source_distribution(history);
      const auto& truth = dists[k];

      agg.per_attack_tv.push_back(tv_distance(truth, pred));
      agg.same_tv.push_back(tv_distance(truth, dists[k - 1]));
      std::unordered_map<net::Asn, double> mean_dist;
      for (const auto& [a, total] : running_sum) {
        mean_dist[a] = total / static_cast<double>(k);
      }
      agg.mean_tv.push_back(tv_distance(truth, mean_dist));

      for (const auto& [a, share] : truth) agg.agg_truth[a] += share;
      for (const auto& [a, share] : pred) agg.agg_pred[a] += share;
      ++agg.samples;

      for (const auto& [a, share] : dists[k]) running_sum[a] += share;
    }
    return agg;
  });
  for (const TargetAgg& agg : aggs) {
    out.per_attack_tv.insert(out.per_attack_tv.end(),
                             agg.per_attack_tv.begin(),
                             agg.per_attack_tv.end());
    same_tv.insert(same_tv.end(), agg.same_tv.begin(), agg.same_tv.end());
    mean_tv.insert(mean_tv.end(), agg.mean_tv.begin(), agg.mean_tv.end());
    // Keys merge in each task's (deterministic) map order; values were
    // summed per target first, so totals do not depend on thread count.
    for (const auto& [a, share] : agg.agg_truth) agg_truth[a] += share;
    for (const auto& [a, share] : agg.agg_pred) agg_pred[a] += share;
    samples += agg.samples;
  }

  if (samples > 0) {
    // Rank union ASes by aggregate truth share.
    std::vector<std::pair<net::Asn, double>> ranked(agg_truth.begin(),
                                                    agg_truth.end());
    for (const auto& [a, share] : agg_pred) {
      if (!agg_truth.contains(a)) ranked.emplace_back(a, 0.0);
    }
    std::sort(ranked.begin(), ranked.end(), [](const auto& x, const auto& y) {
      if (x.second != y.second) return x.second > y.second;
      return x.first < y.first;
    });
    for (const auto& [a, share] : ranked) {
      out.ases.push_back(a);
      out.truth_freq.push_back(share / static_cast<double>(samples));
      const auto it = agg_pred.find(a);
      out.pred_freq.push_back(
          it == agg_pred.end() ? 0.0 : it->second / static_cast<double>(samples));
    }
    out.model_rmse = rms(out.per_attack_tv);
    out.same_rmse = rms(same_tv);
    out.mean_rmse = rms(mean_tv);
  }
  return out;
}

TimestampEvaluation evaluate_timestamps(const trace::Dataset& dataset,
                                        const net::IpToAsnMap& ip_map,
                                        const SpatiotemporalOptions& opts,
                                        double train_fraction,
                                        Precision precision) {
  if (!(train_fraction > 0.0 && train_fraction < 1.0)) {
    throw std::invalid_argument("evaluate_timestamps: bad fraction");
  }
  const auto [train, test] = dataset.split(train_fraction);
  SpatiotemporalModel model(opts);
  model.fit(train, ip_map);

  // Assemble rows over the FULL dataset with the train-fitted sub-models:
  // every prediction remains causal, and rows for test attacks use exactly
  // the information available at prediction time.
  std::unordered_map<std::uint32_t, TemporalModel> temporal;
  std::unordered_map<net::Asn, SpatialModel> spatial;
  for (std::uint32_t f = 0;
       f < static_cast<std::uint32_t>(dataset.family_names().size()); ++f) {
    if (const TemporalModel* m = model.temporal(f)) temporal.emplace(f, *m);
  }
  for (net::Asn asn : dataset.target_asns()) {
    if (const SpatialModel* m = model.spatial(asn)) spatial.emplace(asn, *m);
  }
  const std::vector<StRow> rows =
      assemble_rows(dataset, ip_map, temporal, spatial, model.options());

  const std::size_t n_train = train.size();
  std::optional<InferenceView> view;
  if (precision == Precision::kF32) view = InferenceView::extract(model);

  // Per-target chronological hour/day/interval series for the §VII-A naive
  // timestamp baselines, built lazily (only targets with test rows pay).
  struct TargetTimeline {
    std::vector<double> hour;      ///< Launch hour of attack k.
    std::vector<double> day;       ///< Day index of attack k.
    std::vector<double> interval;  ///< start[k] - start[k-1]; [0] = 0.
    std::vector<double> hour_prefix;      ///< Running sums for means.
    std::vector<double> interval_prefix;  ///< Sums of interval[1..k].
  };
  std::unordered_map<net::Asn, TargetTimeline> timelines;
  const auto timeline_for = [&](net::Asn asn) -> const TargetTimeline& {
    auto it = timelines.find(asn);
    if (it == timelines.end()) {
      TargetTimeline tl;
      const auto& indices = dataset.attacks_on_asn(asn);
      double hour_sum = 0.0;
      double interval_sum = 0.0;
      for (std::size_t k = 0; k < indices.size(); ++k) {
        const trace::Attack& attack = dataset.attacks()[indices[k]];
        const trace::DayHour dh =
            trace::decompose_timestamp(attack.start, dataset.window_start());
        tl.hour.push_back(static_cast<double>(dh.hour));
        tl.day.push_back(static_cast<double>(dh.day));
        tl.interval.push_back(
            k == 0 ? 0.0
                   : static_cast<double>(
                         attack.start -
                         dataset.attacks()[indices[k - 1]].start));
        hour_sum += tl.hour.back();
        interval_sum += tl.interval.back();
        tl.hour_prefix.push_back(hour_sum);
        tl.interval_prefix.push_back(interval_sum);
      }
      it = timelines.emplace(asn, std::move(tl)).first;
    }
    return it->second;
  };

  TimestampEvaluation out;
  for (const StRow& row : rows) {
    if (row.attack_index < n_train) continue;  // Only score the test tail.
    out.truth_hour.push_back(row.truth_hour);
    out.truth_day.push_back(row.truth_day);
    out.st_hour.push_back(view ? view->predict_hour(row.features)
                               : model.predict_hour(row.features));
    out.st_day.push_back(view ? view->predict_day(row.features)
                              : model.predict_day(row.features));
    out.spa_hour.push_back(std::clamp(row.features.spa_hour, 0.0, 23.999));
    out.spa_day.push_back(row.features.prev_day +
                          row.features.spa_interval_s / 86400.0);
    out.tmp_hour.push_back(std::clamp(row.features.tmp_hour, 0.0, 23.999));
    out.tmp_day.push_back(row.features.prev_day +
                          row.features.tmp_interval_s / 86400.0);
    // Naive baselines: row k predicts attack k of its target from history
    // strictly before k (k >= 1 by construction of the feature rows).
    const TargetTimeline& tl = timeline_for(row.target_asn);
    const std::size_t k = row.target_pos;
    const double prev_day = tl.day[k - 1];
    const double same_interval = k >= 2 ? tl.interval[k - 1] : 0.0;
    out.same_hour.push_back(tl.hour[k - 1]);
    out.same_day.push_back(prev_day + same_interval / 86400.0);
    out.mean_hour.push_back(tl.hour_prefix[k - 1] /
                            static_cast<double>(k));
    const double mean_interval =
        k >= 2 ? tl.interval_prefix[k - 1] / static_cast<double>(k - 1) : 0.0;
    out.mean_day.push_back(prev_day + mean_interval / 86400.0);
  }
  if (!out.truth_hour.empty()) {
    out.rmse_hour_st = acbm::stats::rmse(out.truth_hour, out.st_hour);
    out.rmse_hour_spa = acbm::stats::rmse(out.truth_hour, out.spa_hour);
    out.rmse_hour_tmp = acbm::stats::rmse(out.truth_hour, out.tmp_hour);
    out.rmse_day_st = acbm::stats::rmse(out.truth_day, out.st_day);
    out.rmse_day_spa = acbm::stats::rmse(out.truth_day, out.spa_day);
    out.rmse_day_tmp = acbm::stats::rmse(out.truth_day, out.tmp_day);
    out.rmse_hour_same = acbm::stats::rmse(out.truth_hour, out.same_hour);
    out.rmse_hour_mean = acbm::stats::rmse(out.truth_hour, out.mean_hour);
    out.rmse_day_same = acbm::stats::rmse(out.truth_day, out.same_day);
    out.rmse_day_mean = acbm::stats::rmse(out.truth_day, out.mean_day);
  }
  return out;
}

std::vector<PredictedAttack> predict_attacks(const trace::Dataset& dataset,
                                             const net::IpToAsnMap& ip_map,
                                             const SpatiotemporalOptions& opts,
                                             double train_fraction,
                                             double source_mass) {
  if (!(source_mass > 0.0 && source_mass <= 1.0)) {
    throw std::invalid_argument("predict_attacks: bad source mass");
  }
  const auto [train, test] = dataset.split(train_fraction);
  SpatiotemporalModel model(opts);
  model.fit(train, ip_map);

  std::unordered_map<std::uint32_t, TemporalModel> temporal;
  std::unordered_map<net::Asn, SpatialModel> spatial;
  for (std::uint32_t f = 0;
       f < static_cast<std::uint32_t>(dataset.family_names().size()); ++f) {
    if (const TemporalModel* m = model.temporal(f)) temporal.emplace(f, *m);
  }
  for (net::Asn asn : dataset.target_asns()) {
    if (const SpatialModel* m = model.spatial(asn)) spatial.emplace(asn, *m);
  }
  const std::vector<StRow> rows =
      assemble_rows(dataset, ip_map, temporal, spatial, model.options());
  const std::size_t n_train = train.size();

  // Per-target chronological source distributions, built lazily.
  std::unordered_map<net::Asn,
                     std::vector<std::unordered_map<net::Asn, double>>>
      dists_of_target;
  const auto dists_for = [&](net::Asn asn)
      -> const std::vector<std::unordered_map<net::Asn, double>>& {
    auto it = dists_of_target.find(asn);
    if (it == dists_of_target.end()) {
      std::vector<std::unordered_map<net::Asn, double>> dists;
      for (std::size_t idx : dataset.attacks_on_asn(asn)) {
        dists.push_back(
            source_asn_distribution(dataset.attacks()[idx], ip_map));
      }
      it = dists_of_target.emplace(asn, std::move(dists)).first;
    }
    return it->second;
  };

  std::vector<PredictedAttack> out;
  for (const StRow& row : rows) {
    if (row.attack_index < n_train) continue;
    PredictedAttack pred;
    pred.attack_index = row.attack_index;
    pred.target = row.target_asn;
    pred.actual_start = dataset.attacks()[row.attack_index].start;

    const double day = std::max(model.predict_day(row.features),
                                row.features.prev_day);
    const double hour = model.predict_hour(row.features);
    pred.predicted_start =
        dataset.window_start() +
        static_cast<trace::EpochSeconds>(day) * 86400 +
        static_cast<trace::EpochSeconds>(hour * 3600.0);

    const auto sit = spatial.find(row.target_asn);
    if (sit != spatial.end()) {
      const auto& dists = dists_for(row.target_asn);
      const std::span<const std::unordered_map<net::Asn, double>> history(
          dists.data(), row.target_pos);
      const auto dist = sit->second.predict_source_distribution(history);
      std::vector<std::pair<net::Asn, double>> ranked;
      for (const auto& [asn, share] : dist) {
        if (asn != 0) ranked.emplace_back(asn, share);
      }
      std::sort(ranked.begin(), ranked.end(),
                [](const auto& a, const auto& b) {
                  if (a.second != b.second) return a.second > b.second;
                  return a.first < b.first;
                });
      double covered = 0.0;
      for (const auto& [asn, share] : ranked) {
        if (covered >= source_mass) break;
        pred.predicted_sources.push_back(asn);
        covered += share;
      }
    }
    out.push_back(std::move(pred));
  }
  return out;
}

std::vector<ComparisonRow> comparison_table(const trace::Dataset& dataset,
                                            const net::IpToAsnMap& ip_map,
                                            std::size_t top_families,
                                            double train_fraction) {
  // One task per family (each runs all three §VII-A evaluations); results
  // concatenate in activity-rank order, identical to the serial sweep.
  const std::vector<std::uint32_t> families =
      most_active_families(dataset, top_families);
  const std::vector<std::vector<ComparisonRow>> family_rows = parallel_map(
      families.size(), [&](std::size_t fi) -> std::vector<ComparisonRow> {
    const std::uint32_t family = families[fi];
    const std::string& name = dataset.family_names()[family];
    std::vector<ComparisonRow> rows;

    const SeriesEvaluation magnitude = evaluate_temporal_series(
        dataset, ip_map, family, TemporalSeries::kMagnitude, {}, train_fraction);
    rows.push_back({name, "magnitude", magnitude.model_rmse,
                    magnitude.same_rmse, magnitude.mean_rmse});

    const SpatialEvaluation duration = evaluate_spatial_series(
        dataset, ip_map, family, SpatialSeries::kDuration, {}, train_fraction,
        /*min_target_attacks=*/10);
    rows.push_back({name, "duration_s", duration.model_rmse,
                    duration.same_rmse, duration.mean_rmse});

    const SourceDistributionEvaluation sources = evaluate_source_distribution(
        dataset, ip_map, family, {}, train_fraction, /*min_target_attacks=*/10);
    rows.push_back({name, "source_distribution", sources.model_rmse,
                    sources.same_rmse, sources.mean_rmse});
    return rows;
  });
  std::vector<ComparisonRow> out;
  for (const std::vector<ComparisonRow>& rows : family_rows) {
    out.insert(out.end(), rows.begin(), rows.end());
  }
  return out;
}

}  // namespace acbm::core
