#include "core/feature_cache.h"

#include <utility>

#include "core/observe.h"

namespace acbm::core {

std::shared_ptr<const FamilySeries> FeatureCache::family(
    std::uint32_t family) {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    const auto it = families_.find(family);
    if (it != families_.end()) {
      ++hits_;
      ACBM_COUNT("feature_cache.hit", 1);
      return it->second;
    }
    ++misses_;
  }
  ACBM_COUNT("feature_cache.miss", 1);
  auto built = std::make_shared<const FamilySeries>(
      extract_family_series(dataset_, family, ip_map_, distance_));
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto [it, inserted] = families_.emplace(family, std::move(built));
  return it->second;
}

std::shared_ptr<const TargetSeries> FeatureCache::target(net::Asn asn) {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    const auto it = targets_.find(asn);
    if (it != targets_.end()) {
      ++hits_;
      ACBM_COUNT("feature_cache.hit", 1);
      return it->second;
    }
    ++misses_;
  }
  ACBM_COUNT("feature_cache.miss", 1);
  auto built = std::make_shared<const TargetSeries>(
      extract_target_series(dataset_, asn));
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto [it, inserted] = targets_.emplace(asn, std::move(built));
  return it->second;
}

void FeatureCache::invalidate() {
  const std::lock_guard<std::mutex> lock(mutex_);
  families_.clear();
  targets_.clear();
}

std::size_t FeatureCache::hits() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return hits_;
}

std::size_t FeatureCache::misses() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return misses_;
}

}  // namespace acbm::core
