// End-to-end facade: fit the three models on a trace and predict every
// feature of the next attack on a target (§VI-B: "the most important and
// relevant features include magnitude of bots involved during the DDoS
// attacks, the time when the DDoS attack happen and how long it lasts").
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>

#include "core/spatiotemporal_model.h"
#include "net/ip_space.h"
#include "trace/dataset.h"

namespace acbm::core {

class InferenceView;  // inference.h

/// All predicted features of a target's next attack.
struct AttackPrediction {
  double magnitude = 0.0;    ///< Expected number of bots.
  /// One-step forecast standard deviation of the magnitude (0 when the
  /// family's series fell back to a mean model).
  double magnitude_sd = 0.0;
  double duration_s = 0.0;   ///< Expected attack duration.
  double hour = 0.0;         ///< Predicted launch hour of day, [0, 24).
  double day = 0.0;          ///< Predicted day index in the window.
  trace::EpochSeconds start = 0;  ///< day/hour materialized as a timestamp.
  /// Predicted attacker source-AS distribution (ASN 0 = unattributed mass).
  std::unordered_map<net::Asn, double> source_distribution;
  /// Which family the prediction assumes (the target's dominant attacker).
  std::uint32_t assumed_family = 0;
};

/// The full adversary-centric behavior model.
class AdversaryModel {
 public:
  AdversaryModel() = default;
  explicit AdversaryModel(SpatiotemporalOptions opts) : opts_(std::move(opts)) {}

  /// Fits temporal, spatial, and spatiotemporal components on the dataset
  /// (typically the training split). The dataset and map are copied so the
  /// model is self-contained.
  void fit(const trace::Dataset& dataset, const net::IpToAsnMap& ip_map);

  [[nodiscard]] bool fitted() const noexcept { return fitted_; }

  /// Predicts the next attack on a target AS from all history in the fitted
  /// dataset. Returns nullopt when the target has never been attacked.
  /// When `view` is non-null the sub-model and combining-tree forecasts run
  /// through the f32 inference view (--precision f32) instead of the f64
  /// models; pass a view from make_inference_view() of this same model.
  [[nodiscard]] std::optional<AttackPrediction> predict_next_attack(
      net::Asn target_asn, const InferenceView* view = nullptr) const;

  /// Extracts the f32 serving replica of the fitted spatiotemporal model
  /// (see core/inference.h). Throws std::logic_error when not fitted.
  [[nodiscard]] InferenceView make_inference_view() const;

  /// Appends newly observed attacks (e.g. the live feed) so subsequent
  /// predictions condition on them. Does not refit the models.
  void observe(const trace::Attack& attack);

  [[nodiscard]] const SpatiotemporalModel& spatiotemporal() const noexcept {
    return st_;
  }

  /// Pipeline-wide degradation-ladder report of the last fit() (empty on a
  /// loaded model; see SpatiotemporalModel::fit_report).
  [[nodiscard]] const FitReport& fit_report() const noexcept {
    return st_.fit_report();
  }
  [[nodiscard]] const trace::Dataset& dataset() const noexcept {
    return dataset_;
  }

  /// Full-model serialization: fitted sub-models, the training dataset, and
  /// the IP->ASN map, so a loaded model predicts standalone. Live
  /// observations (observe()) are not persisted.
  void save(std::ostream& os) const;
  [[nodiscard]] static AdversaryModel load(std::istream& is);

  /// Framed (v3) serialization: the v1 body wrapped in durable.h's
  /// magic/version/CRC32C envelope. load_framed also accepts legacy bare
  /// v1 streams; corruption throws a typed durable::LoadFailure.
  void save_framed(std::ostream& os) const;
  [[nodiscard]] static AdversaryModel load_framed(std::istream& is);

  /// Stage checkpointing for fit() (see SpatiotemporalOptions::checkpoint).
  void set_checkpoint(StageStore* store) { opts_.checkpoint = store; }

 private:
  SpatiotemporalOptions opts_;
  SpatiotemporalModel st_;
  trace::Dataset dataset_;
  net::IpToAsnMap ip_map_;
  std::vector<trace::Attack> observed_;
  bool fitted_ = false;
};

}  // namespace acbm::core
