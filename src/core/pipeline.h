// End-to-end facade: fit the three models on a trace and predict every
// feature of the next attack on a target (§VI-B: "the most important and
// relevant features include magnitude of bots involved during the DDoS
// attacks, the time when the DDoS attack happen and how long it lasts").
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>

#include "core/spatiotemporal_model.h"
#include "net/ip_space.h"
#include "trace/dataset.h"

namespace acbm::core {

class InferenceView;  // inference.h

/// All predicted features of a target's next attack.
struct AttackPrediction {
  double magnitude = 0.0;    ///< Expected number of bots.
  /// One-step forecast standard deviation of the magnitude (0 when the
  /// family's series fell back to a mean model).
  double magnitude_sd = 0.0;
  double duration_s = 0.0;   ///< Expected attack duration.
  double hour = 0.0;         ///< Predicted launch hour of day, [0, 24).
  double day = 0.0;          ///< Predicted day index in the window.
  trace::EpochSeconds start = 0;  ///< day/hour materialized as a timestamp.
  /// Predicted attacker source-AS distribution (ASN 0 = unattributed mass).
  std::unordered_map<net::Asn, double> source_distribution;
  /// Which family the prediction assumes (the target's dominant attacker).
  std::uint32_t assumed_family = 0;
};

/// Fit-time per-family reference statistics recorded in the model artifact
/// so a live drift monitor (core/ingest.h) can z-score streaming behavior
/// against what the fit actually saw. Three channels: launch rate
/// (attacks/hour over the fit window), volume (attack magnitude), and
/// inter-arrival seconds — for the interval channel the spread is the
/// standard deviation of the fitted temporal model's one-step *residuals*,
/// i.e. the error the model could not explain at fit time; live error
/// beyond that is drift, not noise.
struct FamilyDriftBaseline {
  std::uint32_t family = 0;
  double hours = 0.0;         ///< Fit-window hours the rate channel covers.
  double rate_mean = 0.0;     ///< Mean attacks/hour.
  double rate_std = 0.0;
  double magnitude_mean = 0.0;
  double magnitude_std = 0.0;
  double interval_mean = 0.0;  ///< Mean inter-arrival seconds.
  double interval_residual_std = 0.0;  ///< Std of one-step interval residuals.
};

/// The model options every CLI surface fits with: grid search off (the CLI
/// favors responsiveness), everything else at library defaults. cmd_fit,
/// cmd_worker, cmd_predict, cmd_evaluate, and the ingest refit loop must all
/// use exactly these options — checkpoint stages and sharded fits are keyed
/// on the "grid_search=0" config hash and must stay byte-identical across
/// entry points.
[[nodiscard]] SpatiotemporalOptions default_cli_options();

/// The full adversary-centric behavior model.
class AdversaryModel {
 public:
  AdversaryModel() = default;
  explicit AdversaryModel(SpatiotemporalOptions opts) : opts_(std::move(opts)) {}

  /// Fits temporal, spatial, and spatiotemporal components on the dataset
  /// (typically the training split). The dataset and map are copied so the
  /// model is self-contained.
  void fit(const trace::Dataset& dataset, const net::IpToAsnMap& ip_map);

  [[nodiscard]] bool fitted() const noexcept { return fitted_; }

  /// Predicts the next attack on a target AS from all history in the fitted
  /// dataset. Returns nullopt when the target has never been attacked.
  /// When `view` is non-null the sub-model and combining-tree forecasts run
  /// through the f32 inference view (--precision f32) instead of the f64
  /// models; pass a view from make_inference_view() of this same model.
  [[nodiscard]] std::optional<AttackPrediction> predict_next_attack(
      net::Asn target_asn, const InferenceView* view = nullptr) const;

  /// Extracts the f32 serving replica of the fitted spatiotemporal model
  /// (see core/inference.h). Throws std::logic_error when not fitted.
  [[nodiscard]] InferenceView make_inference_view() const;

  /// Appends newly observed attacks (e.g. the live feed) so subsequent
  /// predictions condition on them. Does not refit the models.
  void observe(const trace::Attack& attack);

  [[nodiscard]] const SpatiotemporalModel& spatiotemporal() const noexcept {
    return st_;
  }

  /// Pipeline-wide degradation-ladder report of the last fit() (empty on a
  /// loaded model; see SpatiotemporalModel::fit_report).
  [[nodiscard]] const FitReport& fit_report() const noexcept {
    return st_.fit_report();
  }
  [[nodiscard]] const trace::Dataset& dataset() const noexcept {
    return dataset_;
  }
  /// The IP->ASN map the model predicts with (serving-artifact extraction:
  /// core/artifact_map.h precomputes source-AS distributions at pack time).
  [[nodiscard]] const net::IpToAsnMap& ip_map() const noexcept {
    return ip_map_;
  }
  [[nodiscard]] const SpatiotemporalOptions& options() const noexcept {
    return opts_;
  }

  /// Fit-time drift baselines, one per family with >= 2 attacks, ordered by
  /// family index. Empty on an unfitted model or one loaded from a pre-v2
  /// body (drift monitoring then has no reference and never trips).
  [[nodiscard]] const std::vector<FamilyDriftBaseline>& drift_baselines()
      const noexcept {
    return drift_baselines_;
  }

  /// Full-model serialization: fitted sub-models, the training dataset, the
  /// IP->ASN map, and the per-family drift baselines, so a loaded model
  /// predicts (and drift-monitors) standalone. Live observations
  /// (observe()) are not persisted. Writes body v2; load accepts v1 bodies
  /// (no drift block) as well.
  void save(std::ostream& os) const;
  [[nodiscard]] static AdversaryModel load(std::istream& is);

  /// Framed (v4) serialization: the v2 body wrapped in durable.h's
  /// magic/version/CRC32C envelope. load_framed also accepts framed v3
  /// (v1 body) and legacy bare streams; corruption throws a typed
  /// durable::LoadFailure.
  void save_framed(std::ostream& os) const;
  [[nodiscard]] static AdversaryModel load_framed(std::istream& is);

  /// Stage checkpointing for fit() (see SpatiotemporalOptions::checkpoint).
  void set_checkpoint(StageStore* store) { opts_.checkpoint = store; }

 private:
  void compute_drift_baselines();

  SpatiotemporalOptions opts_;
  SpatiotemporalModel st_;
  trace::Dataset dataset_;
  net::IpToAsnMap ip_map_;
  std::vector<trace::Attack> observed_;
  std::vector<FamilyDriftBaseline> drift_baselines_;
  bool fitted_ = false;
};

}  // namespace acbm::core
