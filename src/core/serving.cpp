#include "core/serving.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <span>
#include <stdexcept>
#include <streambuf>
#include <unordered_map>

#include "core/spatiotemporal_model.h"
#include "stats/kernels.h"
#include "trace/dataset.h"

namespace acbm::core {

namespace {

using armm::ArimaRec;
using armm::ArtifactView;
using armm::FamilyRec;
using armm::LinearRec;
using armm::MetaRec;
using armm::MlpLayerRec;
using armm::MlpRec;
using armm::SpatialSlotRec;
using armm::TargetRec;
using armm::TemporalSlotRec;
using armm::TreeNodeRec;

/// Per-thread reusable buffers for the forecast recurrences. One instance
/// per thread makes predict() lock-free on a shared ServingModel.
struct Scratch {
  std::vector<double> repair;   ///< Non-finite-patched history copy.
  std::vector<double> diff;     ///< Differenced series (ARIMA).
  std::vector<double> innov;    ///< f64 innovations filter state.
  std::vector<double> level;    ///< Integration tail scratch.
  std::vector<double> last;     ///< last_at_level per differencing level.
  std::vector<float> x32;       ///< f32 differenced series.
  std::vector<float> e32;       ///< f32 innovations.
  std::vector<double> window;   ///< NAR delay window (most recent first).
  std::vector<double> act_a, act_b;  ///< f64 MLP ping-pong activations.
  std::vector<float> fact_a, fact_b;  ///< f32 MLP ping-pong activations.
};

Scratch& tl_scratch() {
  static thread_local Scratch scratch;
  return scratch;
}

/// Mirrors temporal_model.cpp repair_history / InferenceView::repair: the
/// history unchanged when all finite, else a patched copy.
std::span<const double> repair(std::span<const double> history, double fill,
                               std::vector<double>& storage) {
  const bool finite =
      std::all_of(history.begin(), history.end(),
                  [](double x) { return std::isfinite(x); });
  if (finite) return history;
  storage.assign(history.begin(), history.end());
  for (double& x : storage) {
    if (!std::isfinite(x)) x = fill;
  }
  return storage;
}

/// Mirrors ts::ArimaModel::forecast_one: difference d times, run the f64
/// innovations filter (ArmaModel::forecast with h = 1), integrate back
/// (ts::integrate_forecast). Identical IEEE operations in identical order.
double arima_forecast_f64(const ArimaRec& rec, const ArtifactView& view,
                          std::span<const double> history, Scratch& s) {
  const std::size_t d = rec.d;
  if (history.size() <= d) {
    throw std::invalid_argument("ArimaModel::forecast: history too short");
  }
  // difference(history, d): in-place forward differencing computes the
  // same values as the allocate-per-level reference.
  s.diff.assign(history.begin(), history.end());
  std::size_t n = s.diff.size();
  for (std::size_t k = 0; k < d; ++k) {
    for (std::size_t t = 1; t < n; ++t) s.diff[t - 1] = s.diff[t] - s.diff[t - 1];
    --n;
  }
  const std::span<const double> phi = view.f64(rec.phi);
  const std::span<const double> theta = view.f64(rec.theta);

  // ArmaModel::innovations over the differenced series.
  s.innov.assign(n, 0.0);
  for (std::size_t t = 0; t < n; ++t) {
    double pred = rec.intercept;
    for (std::size_t i = 0; i < phi.size(); ++i) {
      if (t > i) pred += phi[i] * s.diff[t - 1 - i];
    }
    for (std::size_t j = 0; j < theta.size(); ++j) {
      if (t > j) pred += theta[j] * s.innov[t - 1 - j];
    }
    s.innov[t] = s.diff[t] - pred;
  }
  // One step ahead with the future innovation at zero.
  const std::size_t t = n;
  double pred = rec.intercept;
  for (std::size_t i = 0; i < phi.size(); ++i) {
    if (t > i) pred += phi[i] * s.diff[t - 1 - i];
  }
  for (std::size_t j = 0; j < theta.size(); ++j) {
    if (t > j) pred += theta[j] * s.innov[t - 1 - j];
  }

  // integrate_forecast({pred}, history, d): add back the last value at
  // each differencing level, innermost level first.
  if (d > 0) {
    s.level.assign(history.end() - static_cast<std::ptrdiff_t>(d),
                   history.end());
    s.last.resize(d);
    std::size_t len = d;
    for (std::size_t k = 0; k < d; ++k) {
      s.last[k] = s.level[len - 1];
      if (len >= 2) {
        for (std::size_t tt = 1; tt < len; ++tt) {
          s.level[tt - 1] = s.level[tt] - s.level[tt - 1];
        }
        --len;
      }
    }
    for (std::size_t kk = d; kk-- > 0;) pred = s.last[kk] + pred;
  }
  return pred;
}

/// Mirrors core::ArimaF32::forecast_one over the mapped f32 coefficients.
double arima_forecast_f32(const ArimaRec& rec, const ArtifactView& view,
                          std::span<const double> history, Scratch& s) {
  const std::size_t d = rec.d;
  if (history.size() <= d) {
    throw std::invalid_argument("ArimaF32::forecast_one: history too short");
  }
  s.diff.assign(history.begin(), history.end());
  std::size_t n = s.diff.size();
  double integrate_add = 0.0;
  for (std::size_t k = 0; k < d; ++k) {
    integrate_add += s.diff[n - 1];
    for (std::size_t t = 1; t < n; ++t) s.diff[t - 1] = s.diff[t] - s.diff[t - 1];
    --n;
  }
  const std::span<const float> phi = view.f32(rec.phi32);
  const std::span<const float> theta = view.f32(rec.theta32);
  const float intercept = rec.intercept32;

  s.x32.resize(n);
  for (std::size_t t = 0; t < n; ++t) s.x32[t] = static_cast<float>(s.diff[t]);
  const std::size_t p = phi.size();
  const std::size_t q = theta.size();
  if (q > 0) {
    s.e32.resize(n);
    float* const e = s.e32.data();
    const float* const x = s.x32.data();
    for (std::size_t t = 0; t < n; ++t) e[t] = x[t] - intercept;
    for (std::size_t i = 0; i < p; ++i) {
      const float ph = phi[i];
      for (std::size_t t = i + 1; t < n; ++t) e[t] -= ph * x[t - 1 - i];
    }
    if (q == 1) {
      const float th = theta[0];
      float prev = e[0];
      for (std::size_t t = 1; t < n; ++t) {
        prev = e[t] - th * prev;
        e[t] = prev;
      }
    } else {
      for (std::size_t t = 1; t < n; ++t) {
        float acc = e[t];
        for (std::size_t j = 0; j < q && t > j; ++j) {
          acc -= theta[j] * e[t - 1 - j];
        }
        e[t] = acc;
      }
    }
  }
  float next = intercept;
  for (std::size_t i = 0; i < p && n > i; ++i) {
    next += phi[i] * s.x32[n - 1 - i];
  }
  for (std::size_t j = 0; j < q && n > j; ++j) {
    next += theta[j] * s.e32[n - 1 - j];
  }
  return static_cast<double>(next) + integrate_add;
}

/// Mirrors nn::Mlp::predict over the mapped f64 layers: ZScore transform,
/// gemv_tanh hidden layers, gemv output, ZScore inverse. Uses the same
/// stats kernels, so bit-identity holds by construction.
double mlp_predict_f64(const MlpRec& mlp, const ArtifactView& view,
                       std::span<const double> features, Scratch& s) {
  const std::span<const double> in_mean = view.f64(mlp.in_mean);
  const std::span<const double> in_sd = view.f64(mlp.in_sd);
  const std::span<const MlpLayerRec> layers =
      view.mlp_layers().subspan(mlp.layer_off, mlp.layer_count);
  std::size_t max_width = mlp.input_dim;
  for (const MlpLayerRec& layer : layers) {
    max_width = std::max<std::size_t>(max_width, layer.out);
  }
  s.act_a.resize(max_width);
  s.act_b.resize(max_width);
  double* cur = s.act_a.data();
  double* next = s.act_b.data();
  for (std::size_t j = 0; j < mlp.input_dim; ++j) {
    cur[j] = (features[j] - in_mean[j]) / in_sd[j];
  }
  std::size_t width = mlp.input_dim;
  for (std::size_t l = 0; l < layers.size(); ++l) {
    const MlpLayerRec& layer = layers[l];
    const std::span<const double> in{cur, width};
    const std::span<double> out{next, static_cast<std::size_t>(layer.out)};
    if (l + 1 < layers.size()) {
      stats::gemv_tanh(view.f64(layer.weights), view.f64(layer.biases), in,
                       out);
    } else {
      stats::gemv(view.f64(layer.weights), view.f64(layer.biases), in, out);
    }
    std::swap(cur, next);
    width = layer.out;
  }
  return cur[0] * mlp.out_sd + mlp.out_mean;
}

/// Mirrors nn::MlpF32View::predict over the mapped transposed f32 layers.
double mlp_predict_f32(const MlpRec& mlp, const ArtifactView& view,
                       std::span<const double> features, Scratch& s) {
  const std::span<const float> in_mean = view.f32(mlp.in_mean32);
  const std::span<const float> in_sd = view.f32(mlp.in_sd32);
  const std::span<const MlpLayerRec> layers =
      view.mlp_layers().subspan(mlp.layer_off, mlp.layer_count);
  std::size_t max_width = mlp.input_dim;
  for (const MlpLayerRec& layer : layers) {
    max_width = std::max<std::size_t>(max_width, layer.out);
  }
  s.fact_a.resize(max_width);
  s.fact_b.resize(max_width);
  float* cur = s.fact_a.data();
  float* next = s.fact_b.data();
  for (std::size_t j = 0; j < mlp.input_dim; ++j) {
    cur[j] = (static_cast<float>(features[j]) - in_mean[j]) / in_sd[j];
  }
  std::size_t width = mlp.input_dim;
  for (std::size_t l = 0; l < layers.size(); ++l) {
    const MlpLayerRec& layer = layers[l];
    const std::span<const float> in{cur, width};
    const std::span<float> out{next, static_cast<std::size_t>(layer.out)};
    if (l + 1 < layers.size()) {
      stats::gemv_t_tanh_f32(view.f32(layer.weights_t32),
                             view.f32(layer.biases32), in, out);
    } else {
      stats::gemv_t_f32(view.f32(layer.weights_t32), view.f32(layer.biases32),
                        in, out);
    }
    std::swap(cur, next);
    width = layer.out;
  }
  return static_cast<double>(cur[0]) * mlp.out_sd + mlp.out_mean;
}

/// NAR forecast: the delay window (most recent value first, mirroring
/// NarModel::window) fed through the family's MLP at the given precision.
double nar_forecast(const MlpRec& mlp, const ArtifactView& view,
                    std::span<const double> history, bool f32, Scratch& s) {
  const std::size_t delays = mlp.delays;
  s.window.resize(delays);
  for (std::size_t i = 0; i < delays; ++i) {
    s.window[i] = history[history.size() - 1 - i];
  }
  return f32 ? mlp_predict_f32(mlp, view, s.window, s)
             : mlp_predict_f64(mlp, view, s.window, s);
}

/// Mirrors TemporalModel::forecast_next (f64) /
/// InferenceView::temporal_forecast (f32); both share guard structure.
double temporal_forecast(const TemporalSlotRec& slot, const ArtifactView& view,
                         std::span<const double> history, bool f32,
                         Scratch& s) {
  const std::span<const double> series =
      repair(history, slot.fallback_mean, s.repair);
  if (slot.arima.present != 0 && series.size() > slot.arima.d) {
    return f32 ? arima_forecast_f32(slot.arima, view, series, s)
               : arima_forecast_f64(slot.arima, view, series, s);
  }
  if (slot.seasonal_period > 0 && series.size() >= slot.seasonal_period) {
    return series[series.size() - slot.seasonal_period];
  }
  return slot.fallback_mean;
}

/// Mirrors SpatialModel::forecast_next (f64) /
/// InferenceView::spatial_forecast (f32). The AR-rung guards differ
/// between the two reference paths (f64 fires on any non-empty series and
/// throws when it is still shorter than d; f32 requires size > d) — both
/// divergences are reproduced deliberately.
double spatial_forecast(const SpatialSlotRec& slot, const ArtifactView& view,
                        std::span<const double> history, bool f32,
                        Scratch& s) {
  const std::span<const double> series =
      repair(history, slot.fallback_mean, s.repair);
  if (slot.has_nar != 0) {
    const MlpRec& mlp = view.mlps()[slot.mlp_index];
    if (series.size() >= mlp.delays) {
      return nar_forecast(mlp, view, series, f32, s);
    }
  }
  if (slot.ar.present != 0) {
    if (f32) {
      if (series.size() > slot.ar.d) {
        return arima_forecast_f32(slot.ar, view, series, s);
      }
    } else if (!series.empty()) {
      return arima_forecast_f64(slot.ar, view, series, s);
    }
  }
  return slot.fallback_mean;
}

/// Mirrors RegressionTree::leaf_index + ModelTree leaf dispatch (f64) /
/// TreeF32::predict (f32) over one tree's node block.
double tree_predict(const ArtifactView& view, std::uint64_t off,
                    std::span<const double> features, bool f32) {
  const TreeNodeRec* nodes = view.tree_nodes().data() + off;
  std::size_t id = 0;
  while (nodes[id].left >= 0) {
    const TreeNodeRec& node = nodes[id];
    id = static_cast<std::size_t>(
        features[node.feature] <= node.threshold ? node.left : node.right);
  }
  const TreeNodeRec& leaf = nodes[id];
  if (leaf.use_linear == 0) return leaf.mean;
  if (f32) {
    float acc = leaf.intercept32;
    const std::span<const float> coef = view.f32(leaf.coef32);
    for (std::size_t i = 0; i < coef.size(); ++i) {
      acc += coef[i] * static_cast<float>(features[i]);
    }
    return static_cast<double>(acc);
  }
  return stats::dot(view.f64(leaf.coef), features.first(leaf.coef.len),
                    leaf.intercept);
}

/// Mirrors LinearRegression::predict (f64) / LinearF32::predict (f32).
double linear_predict(const LinearRec& rec, const ArtifactView& view,
                      std::span<const double> features, bool f32) {
  if (f32) {
    float acc = rec.intercept32;
    const std::span<const float> coef = view.f32(rec.coef32);
    for (std::size_t i = 0; i < coef.size(); ++i) {
      acc += coef[i] * static_cast<float>(features[i]);
    }
    return static_cast<double>(acc);
  }
  return stats::dot(view.f64(rec.coef), features.first(rec.coef.len),
                    rec.intercept);
}

/// Mirrors SpatiotemporalModel::predict_hour / InferenceView::predict_hour.
double predict_hour(const ArtifactView& view, const StFeatures& features,
                    bool f32) {
  const MetaRec& meta = view.meta();
  double hour;
  if (meta.hour_tree_count > 0) {
    hour = tree_predict(view, meta.hour_tree_off, features.hour_row(), f32);
  } else if (meta.hour_linear.present != 0) {
    hour = linear_predict(meta.hour_linear, view, features.hour_row(), f32);
  } else {
    hour = 0.5 * (features.tmp_hour + features.spa_hour);
  }
  return std::clamp(hour, 0.0, 23.999);
}

/// Mirrors SpatiotemporalModel::predict_day / InferenceView::predict_day.
double predict_day(const ArtifactView& view, const StFeatures& features,
                   bool f32) {
  const MetaRec& meta = view.meta();
  if (meta.day_tree_count > 0) {
    return tree_predict(view, meta.day_tree_off, features.day_row(), f32);
  }
  if (meta.day_linear.present != 0) {
    return linear_predict(meta.day_linear, view, features.day_row(), f32);
  }
  return features.prev_day + features.tmp_interval_s / 86400.0;
}

/// Share of `asn` in one attack's stored distribution (records sorted by
/// ASN); 0.0 when absent — the map-lookup the reference code performs.
double dist_share_of(std::span<const std::uint32_t> asns,
                     std::span<const double> shares, std::uint32_t lo,
                     std::uint32_t hi, net::Asn asn) {
  const auto begin = asns.begin() + lo;
  const auto end = asns.begin() + hi;
  const auto it = std::lower_bound(begin, end, asn);
  if (it == end || *it != asn) return 0.0;
  return shares[static_cast<std::size_t>(it - asns.begin())];
}

/// Mirrors SpatialModel::predict_source_distribution over the packed
/// per-attack distributions.
std::unordered_map<net::Asn, double> predict_source_distribution(
    const ArtifactView& view, const TargetRec& rec) {
  std::unordered_map<net::Asn, double> prediction;
  const std::span<const std::uint32_t> tracked = view.u32(rec.tracked);
  const std::span<const std::uint32_t> index = view.u32(rec.dist_index);
  const std::span<const std::uint32_t> dist_asn = view.u32(rec.dist_asn);
  const std::span<const double> dist_share = view.f64(rec.dist_share);
  const std::size_t n = index.size() - 1;  // History length (>= 1).
  if (n == 0) {
    if (!tracked.empty()) {
      const double u = 1.0 / static_cast<double>(tracked.size());
      for (net::Asn asn : tracked) prediction[asn] = u;
    }
    return prediction;
  }
  const double alpha = rec.share_smoothing;
  const double blend = rec.share_recency_blend;
  double tracked_total = 0.0;
  for (net::Asn asn : tracked) {
    double ewma = 0.0;
    double sum = 0.0;
    bool seeded = false;
    for (std::size_t a = 0; a < n; ++a) {
      const double share =
          dist_share_of(dist_asn, dist_share, index[a], index[a + 1], asn);
      sum += share;
      if (!seeded) {
        ewma = share;
        seeded = true;
      } else {
        ewma = alpha * share + (1.0 - alpha) * ewma;
      }
    }
    const double mean_share = sum / static_cast<double>(n);
    const double estimate = blend * ewma + (1.0 - blend) * mean_share;
    if (estimate > 0.0) {
      prediction[asn] = estimate;
      tracked_total += estimate;
    }
  }
  if (tracked_total > 1.0) {
    for (auto& [asn, share] : prediction) share /= tracked_total;
    tracked_total = 1.0;
  }
  if (tracked_total < 1.0) {
    prediction[0] = 1.0 - tracked_total;  // Unattributed remainder.
  }
  return prediction;
}

/// One attack's stored distribution as a map (the cold-target fallback:
/// source_asn_distribution of the last observed attack).
std::unordered_map<net::Asn, double> stored_distribution(
    const ArtifactView& view, const TargetRec& rec, std::size_t attack) {
  const std::span<const std::uint32_t> index = view.u32(rec.dist_index);
  const std::span<const std::uint32_t> dist_asn = view.u32(rec.dist_asn);
  const std::span<const double> dist_share = view.f64(rec.dist_share);
  std::unordered_map<net::Asn, double> out;
  for (std::uint32_t k = index[attack]; k < index[attack + 1]; ++k) {
    out[dist_asn[k]] = dist_share[k];
  }
  return out;
}

/// Zero-copy istream over a mapped framed payload (no <spanstream> in
/// C++20): a plain get-area over the mapping, enough for the text loaders.
class SpanBuf : public std::streambuf {
 public:
  explicit SpanBuf(std::string_view data) {
    char* p = const_cast<char*>(data.data());
    setg(p, p, p + data.size());
  }
};

}  // namespace

ServingModel ServingModel::map_file(const std::filesystem::path& path,
                                    bool verify_crc) {
  ServingModel model;
  model.file_ = durable::MappedFile(path);
  model.view_ = armm::ArtifactView::parse(model.file_.view(), verify_crc);
  model.image_bytes_ = model.file_.size();
  model.loaded_ = true;
  return model;
}

ServingModel ServingModel::from_image(std::string_view image) {
  ServingModel model;
  model.image_.resize((image.size() + sizeof(std::uint64_t) - 1) /
                      sizeof(std::uint64_t));
  std::memcpy(model.image_.data(), image.data(), image.size());
  model.view_ = armm::ArtifactView::parse(
      {reinterpret_cast<const char*>(model.image_.data()), image.size()});
  model.image_bytes_ = image.size();
  model.loaded_ = true;
  return model;
}

ServingModel ServingModel::load_any(const std::filesystem::path& path) {
  {
    durable::MappedFile probe(path);
    if (probe.size() >= sizeof(armm::kMagic) &&
        std::memcmp(probe.data(), armm::kMagic, sizeof(armm::kMagic)) == 0) {
      ServingModel model;
      model.file_ = std::move(probe);
      model.view_ = armm::ArtifactView::parse(model.file_.view());
      model.image_bytes_ = model.file_.size();
      model.loaded_ = true;
      return model;
    }
  }
  // Framed model.art fallback: validate the frame against the mapping
  // without copying, deserialize, re-pack in memory.
  durable::FramedView framed =
      durable::load_framed_view(path, "adversary_model", 3, 4);
  SpanBuf buf(framed.payload);
  std::istream body(&buf);
  const AdversaryModel model = AdversaryModel::load(body);
  return from_image(armm::pack_model(model));
}

std::vector<net::Asn> ServingModel::targets() const {
  std::vector<net::Asn> out;
  out.reserve(view_.targets().size());
  for (const TargetRec& rec : view_.targets()) out.push_back(rec.asn);
  return out;
}

std::string_view ServingModel::family_name(std::uint32_t family) const {
  const FamilyRec* rec = view_.family(family);
  if (rec == nullptr) return {};
  const std::span<const char> chars = view_.chars(rec->name);
  return {chars.data(), chars.size()};
}

trace::EpochSeconds ServingModel::window_start() const noexcept {
  return static_cast<trace::EpochSeconds>(view_.meta().window_start);
}

std::size_t ServingModel::image_size() const noexcept { return image_bytes_; }

std::string_view ServingModel::image() const noexcept {
  if (file_.mapped()) return file_.view();
  return {reinterpret_cast<const char*>(image_.data()), image_bytes_};
}

std::optional<AttackPrediction> ServingModel::predict(
    net::Asn target_asn, Precision precision) const {
  if (!loaded_) throw std::logic_error("ServingModel::predict: not loaded");
  const TargetRec* trec = view_.target(target_asn);
  if (trec == nullptr) return std::nullopt;  // No attack history.
  Scratch& s = tl_scratch();
  const bool f32 = precision == Precision::kF32;

  const std::span<const std::uint32_t> fams = view_.u32(trec->attack_family);
  const std::span<const std::int64_t> starts = view_.i64(trec->attack_start);
  const std::span<const double> t_duration = view_.f64(trec->duration);
  const std::span<const double> t_interval = view_.f64(trec->interval);
  const std::span<const double> t_hour = view_.f64(trec->hour);
  const std::span<const double> t_day = view_.f64(trec->day);
  const std::span<const double> t_magnitude = view_.f64(trec->magnitude);

  // Dominant attacker family — same seeded map scan as the reference; the
  // result is the smallest family id among the most frequent.
  std::unordered_map<std::uint32_t, std::size_t> family_counts;
  for (std::uint32_t f : fams) ++family_counts[f];
  std::uint32_t family = fams.back();
  std::size_t best_count = 0;
  for (const auto& [f, count] : family_counts) {
    if (count > best_count || (count == best_count && f < family)) {
      family = f;
      best_count = count;
    }
  }

  AttackPrediction pred;
  pred.assumed_family = family;

  const FamilyRec* frec = view_.family(family);
  const std::span<const double> f_magnitude = view_.f64(frec->magnitude);
  const std::span<const double> f_hour = view_.f64(frec->hour);
  const std::span<const double> f_interval = view_.f64(frec->interval);
  const std::span<const TemporalSlotRec> t_slots = view_.temporal_slots()
      .subspan(static_cast<std::size_t>(family) * kTemporalSeriesCount,
               kTemporalSeriesCount);

  StFeatures features;
  if (frec->has_temporal != 0 && !f_magnitude.empty()) {
    const auto& mag_slot =
        t_slots[static_cast<std::size_t>(TemporalSeries::kMagnitude)];
    pred.magnitude = std::max(
        1.0, temporal_forecast(mag_slot, view_, f_magnitude, f32, s));
    if (mag_slot.arima.present != 0) {
      // forecast_variance(1) is exactly sigma2 (psi_0 = 1 survives the
      // cumulative-sum passes untouched); always f64 regardless of the
      // requested precision, as in the reference.
      pred.magnitude_sd = std::sqrt(mag_slot.arima.sigma2);
    }
    features.tmp_hour = temporal_forecast(
        t_slots[static_cast<std::size_t>(TemporalSeries::kHour)], view_,
        f_hour, f32, s);
    features.tmp_interval_s = std::max(
        30.0, temporal_forecast(
                  t_slots[static_cast<std::size_t>(TemporalSeries::kInterval)],
                  view_, f_interval, f32, s));
  } else {
    pred.magnitude = t_magnitude.back();
    features.tmp_hour = t_hour.back();
    features.tmp_interval_s = 86400.0;
  }

  const std::span<const SpatialSlotRec> s_slots = view_.spatial_slots()
      .subspan(view_.target_index(*trec) * kSpatialSeriesCount,
               kSpatialSeriesCount);
  if (trec->has_spatial != 0) {
    pred.duration_s = std::max(
        30.0, spatial_forecast(
                  s_slots[static_cast<std::size_t>(SpatialSeries::kDuration)],
                  view_, t_duration, f32, s));
    features.spa_hour = spatial_forecast(
        s_slots[static_cast<std::size_t>(SpatialSeries::kHour)], view_, t_hour,
        f32, s);
    features.spa_interval_s = std::max(
        30.0, spatial_forecast(
                  s_slots[static_cast<std::size_t>(SpatialSeries::kInterval)],
                  view_, t_interval, f32, s));
    pred.source_distribution = predict_source_distribution(view_, *trec);
  } else {
    // Cold target: fall back to its own last observations.
    double mean_duration = 0.0;
    for (double d : t_duration) mean_duration += d;
    pred.duration_s =
        mean_duration / static_cast<double>(t_duration.size());
    features.spa_hour = t_hour.back();
    features.spa_interval_s = features.tmp_interval_s;
    pred.source_distribution =
        stored_distribution(view_, *trec, fams.size() - 1);
  }

  features.prev_hour = t_hour.back();
  features.prev_day = t_day.back();
  double hour_sum = 0.0;
  for (double h : t_hour) hour_sum += h;
  features.mean_hour = hour_sum / static_cast<double>(t_hour.size());
  const std::size_t window = std::min<std::size_t>(
      view_.meta().magnitude_window, t_magnitude.size());
  double mag = 0.0;
  for (std::size_t i = t_magnitude.size() - window; i < t_magnitude.size();
       ++i) {
    mag += t_magnitude[i];
  }
  features.avg_magnitude = mag / static_cast<double>(window);

  pred.hour = predict_hour(view_, features, f32);
  pred.day = predict_day(view_, features, f32);
  // Materialize (day, hour) as a timestamp with the same
  // same-day-collision fallback as the reference.
  const double day_for_ts = std::max(pred.day, features.prev_day);
  const auto window_start =
      static_cast<trace::EpochSeconds>(view_.meta().window_start);
  pred.start = window_start +
               static_cast<trace::EpochSeconds>(day_for_ts) * 86400 +
               static_cast<trace::EpochSeconds>(pred.hour * 3600.0);
  const auto last_start = static_cast<trace::EpochSeconds>(starts.back());
  if (pred.start <= last_start) {
    const double interval = std::max(
        30.0, 0.5 * (features.tmp_interval_s + features.spa_interval_s));
    pred.start = last_start + static_cast<trace::EpochSeconds>(interval);
    const trace::DayHour dh =
        trace::decompose_timestamp(pred.start, window_start);
    pred.day = dh.day;
    pred.hour = dh.hour;
  }
  return pred;
}

}  // namespace acbm::core
