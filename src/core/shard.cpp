#include "core/shard.h"

#include <fcntl.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <system_error>
#include <thread>
#include <unordered_map>
#include <utility>

#include "core/durable.h"
#include "core/observe.h"
#include "core/parallel.h"
#include "core/robust.h"

namespace acbm::core {

namespace fs = std::filesystem;

namespace {

constexpr std::string_view kPlanKind = "shard_plan";
constexpr std::string_view kLeaseKind = "lease";
constexpr std::string_view kMetricsKind = "worker_metrics";

fs::path coord_dir(const fs::path& checkpoint_dir) {
  return checkpoint_dir / "coord";
}

fs::path plan_path(const fs::path& checkpoint_dir) {
  return coord_dir(checkpoint_dir) / "shards.plan";
}

std::string lease_payload(int worker_id, const std::string& stage) {
  return "worker=" + std::to_string(worker_id) + "\nstage=" + stage + "\n";
}

/// Owner id recorded in a lease file, or nullopt when the file is missing
/// or unreadable (racing a writer; the caller falls back to mtime age).
std::optional<int> lease_owner(const fs::path& path) {
  try {
    const std::string payload = durable::unwrap(
        durable::read_file(path), kLeaseKind, 1, 1);
    const std::string needle = "worker=";
    if (payload.rfind(needle, 0) != 0) return std::nullopt;
    const std::size_t end = payload.find('\n');
    return std::stoi(payload.substr(needle.size(),
                                    end == std::string::npos
                                        ? std::string::npos
                                        : end - needle.size()));
  } catch (const std::exception&) {
    return std::nullopt;
  }
}

void sleep_ms(int ms) {
  if (ms > 0) std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

/// Heartbeats a held lease every ttl/3 from a helper thread until stop()
/// (or destruction). The worker thread does the fitting; this thread only
/// refreshes the lease's mtime.
class HeartbeatGuard {
 public:
  HeartbeatGuard(LeaseTable& leases, std::string stage, int worker_id,
                 int ttl_ms)
      : leases_(leases), stage_(std::move(stage)), worker_id_(worker_id) {
    const int beat_ms = std::max(1, ttl_ms / 3);
    thread_ = std::thread([this, beat_ms] {
      FaultInjector& injector = FaultInjector::instance();
      const std::string key = "worker=" + std::to_string(worker_id_);
      std::unique_lock<std::mutex> lock(mutex_);
      while (!done_) {
        cv_.wait_for(lock, std::chrono::milliseconds(beat_ms));
        if (done_) break;
        if (injector.enabled() && injector.fires("heartbeat.drop", key)) {
          continue;  // Dropped beat: the lease ages toward staleness.
        }
        leases_.heartbeat(stage_, worker_id_);
      }
    });
  }

  void stop() {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      done_ = true;
    }
    cv_.notify_all();
    if (thread_.joinable()) thread_.join();
  }

  ~HeartbeatGuard() { stop(); }

 private:
  LeaseTable& leases_;
  std::string stage_;
  int worker_id_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool done_ = false;
  std::thread thread_;
};

}  // namespace

std::vector<std::string> shard_stages(const trace::Dataset& train) {
  std::vector<std::string> stages;
  stages.reserve(train.family_names().size() + 2);
  for (const std::string& name : train.family_names()) {
    stages.push_back("temporal/" + name);
  }
  stages.push_back("spatial");
  stages.push_back("tree");
  return stages;
}

void write_shard_plan(const fs::path& checkpoint_dir,
                      std::uint64_t config_hash,
                      const std::vector<std::string>& stages) {
  std::string payload = "config=" + durable::to_hex(config_hash) + "\n";
  for (const std::string& stage : stages) payload += "stage=" + stage + "\n";
  std::error_code ec;
  fs::create_directories(coord_dir(checkpoint_dir), ec);
  durable::save_artifact(plan_path(checkpoint_dir), kPlanKind, 1, payload);
}

void check_shard_plan(const fs::path& checkpoint_dir,
                      std::uint64_t config_hash) {
  std::string payload;
  try {
    payload = durable::load_artifact(plan_path(checkpoint_dir), kPlanKind, 1,
                                     1, false, nullptr,
                                     /*quarantine_on_error=*/false);
  } catch (const durable::LoadFailure&) {
    return;  // No (readable) plan: workers may run coordinator-less.
  }
  const std::string needle = "config=";
  if (payload.rfind(needle, 0) != 0) return;
  const std::size_t end = payload.find('\n');
  const std::string hex = payload.substr(
      needle.size(),
      end == std::string::npos ? std::string::npos : end - needle.size());
  if (hex != durable::to_hex(config_hash)) {
    throw std::invalid_argument(
        "worker: shard plan in " + checkpoint_dir.string() +
        " was written for config " + hex + ", this run hashes to " +
        durable::to_hex(config_hash) +
        " (different dataset/ip-map/options)");
  }
}

// --- LeaseTable -------------------------------------------------------------

LeaseTable::LeaseTable(fs::path coord, int ttl_ms)
    : dir_(std::move(coord) / "leases"), ttl_ms_(ttl_ms > 0 ? ttl_ms : 1) {
  std::error_code ec;
  fs::create_directories(dir_, ec);
}

fs::path LeaseTable::lease_path(const std::string& stage) const {
  return dir_ / (CheckpointDir::slug(stage) + ".lease");
}

bool LeaseTable::is_stale(const fs::path& path, const std::string& stage) const {
  FaultInjector& injector = FaultInjector::instance();
  if (injector.enabled() && injector.fires("lease.expire", "shard=" + stage)) {
    return true;
  }
  std::error_code ec;
  const auto mtime = fs::last_write_time(path, ec);
  if (ec) return false;  // Gone already: the owner released it; not a steal.
  const auto age = fs::file_time_type::clock::now() - mtime;
  return age > std::chrono::milliseconds(ttl_ms_);
}

bool LeaseTable::try_acquire(const std::string& stage, int worker_id) {
  const fs::path path = lease_path(stage);
  const std::string framed = durable::frame_payload(
      kLeaseKind, 1, lease_payload(worker_id, stage));

  // Fast path: exclusive create. Only one worker can win this.
  const int fd = ::open(path.c_str(), O_CREAT | O_EXCL | O_WRONLY, 0644);
  if (fd >= 0) {
    const char* data = framed.data();
    std::size_t left = framed.size();
    while (left > 0) {
      const ssize_t n = ::write(fd, data, left);
      if (n <= 0) break;  // Advisory file: a short write just looks stale.
      data += n;
      left -= static_cast<std::size_t>(n);
    }
    ::close(fd);
    ACBM_COUNT("lease.acquired", 1);
    return true;
  }

  // Held by someone. Steal only when stale (dead/stuck owner). The steal is
  // an atomic rewrite, a confirmation delay (long enough for a racing
  // stealer's rename to land), then an ownership re-read — of two racing
  // stealers exactly one sees itself as owner. A slow-but-alive owner that
  // loses its lease this way is benign: both publish identical bytes.
  std::error_code ec;
  if (!fs::exists(path, ec)) {
    return false;  // Released between our check and now; retry next round.
  }
  if (!is_stale(path, stage)) return false;
  ACBM_COUNT("lease.expired", 1);
  try {
    durable::atomic_write_file(path, framed);
  } catch (const durable::WriteFailure&) {
    return false;
  }
  sleep_ms(std::min(20, std::max(1, ttl_ms_ / 10)));
  if (lease_owner(path) != std::optional<int>(worker_id)) return false;
  ACBM_COUNT("lease.stolen", 1);
  ACBM_COUNT("lease.acquired", 1);
  return true;
}

void LeaseTable::heartbeat(const std::string& stage, int worker_id) {
  try {
    durable::atomic_write_file(
        lease_path(stage),
        durable::frame_payload(kLeaseKind, 1,
                               lease_payload(worker_id, stage)));
  } catch (const durable::WriteFailure&) {
    // A missed beat is survivable; the lease just ages faster.
  }
}

void LeaseTable::release(const std::string& stage, int worker_id) {
  // Only remove a lease we still own — it may have been stolen while we
  // were fitting (dropped heartbeats), in which case it is the thief's.
  const fs::path path = lease_path(stage);
  if (lease_owner(path) != std::optional<int>(worker_id)) return;
  std::error_code ec;
  fs::remove(path, ec);
}

void LeaseTable::drop_worker(int worker_id) {
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir_, ec)) {
    const fs::path& path = entry.path();
    if (path.extension() != ".lease") continue;
    if (lease_owner(path) == std::optional<int>(worker_id)) {
      std::error_code rm;
      fs::remove(path, rm);
      ACBM_COUNT("lease.expired", 1);
    }
  }
}

// --- ShardWorker ------------------------------------------------------------

ShardWorker::ShardWorker(ShardWorkerOptions opts) : opts_(std::move(opts)) {}

void ShardWorker::maybe_crash(const std::string& stage) {
  FaultInjector& injector = FaultInjector::instance();
  if (!injector.enabled()) return;
  const std::string key =
      "worker=" + std::to_string(opts_.worker_id) + "/shard=" + stage;
  if (!injector.fires("worker.exit", key)) return;
  if (opts_.crash) {
    opts_.crash(key);
    return;
  }
  // True kill-9 semantics: no unwinding, no flushing, the lease is left
  // behind to go stale. This is the crash the whole protocol exists for.
  ::kill(::getpid(), SIGKILL);
}

void ShardWorker::fit_stage(const std::string& stage,
                            const trace::Dataset& train,
                            const net::IpToAsnMap& ip_map,
                            FeatureCache& features,
                            const SpatiotemporalOptions& model_opts,
                            CheckpointDir& ckpt) {
  ACBM_SPAN_KV("worker.shard", "stage=" + stage);
  if (stage.rfind("temporal/", 0) == 0) {
    const std::string name = stage.substr(std::string("temporal/").size());
    const auto& names = train.family_names();
    const auto it = std::find(names.begin(), names.end(), name);
    if (it == names.end()) {
      throw std::invalid_argument("worker: dataset has no family '" + name +
                                  "' (stale shard plan?)");
    }
    const auto family = static_cast<std::uint32_t>(it - names.begin());
    ckpt.store(stage, encode_temporal_stage(fit_family_temporal(
                          train, features, family, model_opts)));
    return;
  }
  if (stage == "spatial") {
    const std::vector<net::Asn> targets = train.target_asns();
    std::vector<std::optional<SpatialModel>> fits = parallel_map(
        targets.size(), [&](std::size_t t) -> std::optional<SpatialModel> {
          return fit_target_spatial(train, ip_map, features, targets[t],
                                    model_opts);
        });
    std::unordered_map<net::Asn, SpatialModel> spatial;
    for (std::size_t t = 0; t < targets.size(); ++t) {
      if (fits[t]) spatial.emplace(targets[t], std::move(*fits[t]));
    }
    ckpt.store(stage, encode_spatial_stage(spatial));
    return;
  }
  if (stage == "tree") {
    // The combining tree needs every sub-model: run the ordinary fit with
    // this worker's store wired in. All other stages are cached, so this
    // fits (and publishes) exactly the tree stage.
    SpatiotemporalOptions opts = model_opts;
    opts.checkpoint = &ckpt;
    SpatiotemporalModel model(opts);
    model.fit(train, ip_map);
    return;
  }
  throw std::invalid_argument("worker: unknown stage '" + stage + "'");
}

int ShardWorker::run(const trace::Dataset& train,
                     const net::IpToAsnMap& ip_map,
                     const SpatiotemporalOptions& model_opts) {
  ACBM_SPAN_KV("worker.run", "worker=" + std::to_string(opts_.worker_id));
  check_shard_plan(opts_.checkpoint_dir, opts_.config_hash);
  CheckpointDir::Options ckpt_opts;
  ckpt_opts.config_hash = opts_.config_hash;
  ckpt_opts.shared = true;
  CheckpointDir ckpt(opts_.checkpoint_dir, ckpt_opts);
  LeaseTable leases(coord_dir(opts_.checkpoint_dir), opts_.lease_ttl_ms);
  FeatureCache features(train, ip_map, nullptr);
  const std::vector<std::string> stages = shard_stages(train);

  int fitted = 0;
  int backoff_ms = opts_.poll_interval_ms;
  while (true) {
    ckpt.refresh();
    bool all_complete = true;
    bool progressed = false;
    for (const std::string& stage : stages) {
      if (ckpt.is_complete(stage)) continue;
      all_complete = false;
      if (stage == "tree") {
        // Gated on every other stage: the tree fit consumes them all.
        const bool ready = std::all_of(
            stages.begin(), stages.end(), [&](const std::string& s) {
              return s == "tree" || ckpt.is_complete(s);
            });
        if (!ready) continue;
      }
      if (!leases.try_acquire(stage, opts_.worker_id)) continue;
      // The publisher may have finished between our refresh and the
      // acquire; re-check before burning a fit on a done stage.
      if (ckpt.is_complete(stage)) {
        leases.release(stage, opts_.worker_id);
        progressed = true;
        continue;
      }
      maybe_crash(stage);
      {
        HeartbeatGuard heartbeat(leases, stage, opts_.worker_id,
                                 opts_.lease_ttl_ms);
        fit_stage(stage, train, ip_map, features, model_opts, ckpt);
      }
      leases.release(stage, opts_.worker_id);
      ++fitted;
      progressed = true;
    }
    if (all_complete) break;
    if (progressed) {
      backoff_ms = opts_.poll_interval_ms;
      continue;
    }
    // Every pending shard is leased elsewhere: capped exponential backoff.
    ACBM_COUNT("shard.retry", 1);
    sleep_ms(backoff_ms);
    backoff_ms = std::min(backoff_ms * 2, std::max(opts_.max_backoff_ms,
                                                   opts_.poll_interval_ms));
  }
  if (opts_.ship_metrics) ship_metrics();
  return fitted;
}

void ShardWorker::ship_metrics() {
  std::string payload;
  for (const auto& [name, value] :
       observe::Metrics::instance().counters_snapshot()) {
    payload += "c " + name + " " + std::to_string(value) + "\n";
  }
  const fs::path inbox = coord_dir(opts_.checkpoint_dir) / "inbox";
  std::error_code ec;
  fs::create_directories(inbox, ec);
  durable::save_artifact(
      inbox / ("worker-" + std::to_string(opts_.worker_id) + ".metrics"),
      kMetricsKind, 1, payload);
}

// --- ShardCoordinator -------------------------------------------------------

const char* to_string(CoordinationOutcome outcome) noexcept {
  switch (outcome) {
    case CoordinationOutcome::kComplete: return "complete";
    case CoordinationOutcome::kWorkersExhausted: return "workers_exhausted";
    case CoordinationOutcome::kTimeout: return "timeout";
  }
  return "unknown";
}

ShardCoordinator::ShardCoordinator(ShardCoordinatorOptions opts)
    : opts_(std::move(opts)) {}

ShardCoordinator::Child ShardCoordinator::spawn(int worker_id) {
  Child child;
  child.worker_id = worker_id;
  FaultInjector& injector = FaultInjector::instance();
  if (injector.enabled() &&
      injector.fires("worker.spawn", "worker=" + std::to_string(worker_id))) {
    return child;  // pid stays -1: an instant crash, eats respawn budget.
  }
  const std::vector<std::string> argv = opts_.worker_argv(worker_id);
  std::vector<char*> cargv;
  cargv.reserve(argv.size() + 1);
  for (const std::string& arg : argv) {
    cargv.push_back(const_cast<char*>(arg.c_str()));
  }
  cargv.push_back(nullptr);
  const pid_t pid = ::fork();
  if (pid == 0) {
    for (const std::string& name : opts_.child_unset_env) {
      ::unsetenv(name.c_str());
    }
    ::execv(cargv[0], cargv.data());
    ::_exit(127);  // exec failed; the parent sees a crashed worker.
  }
  if (pid < 0) return child;
  child.pid = pid;
  child.alive = true;
  ACBM_COUNT("worker.spawned", 1);
  return child;
}

CoordinationOutcome ShardCoordinator::run(
    const std::vector<std::string>& stages) {
  ACBM_SPAN("coordinate");
  const fs::path coord = coord_dir(opts_.checkpoint_dir);
  std::error_code ec;
  if (opts_.fresh) {
    // A fresh run starts from a clean slate: no stage markers, no leases,
    // no stale inbox. Stage artifacts stay (they rotate to generations on
    // the refit, like a non-resume single-process fit).
    fs::remove_all(coord, ec);
    if (fs::exists(opts_.checkpoint_dir, ec)) {
      for (const auto& entry : fs::directory_iterator(opts_.checkpoint_dir, ec)) {
        if (entry.path().extension() == ".done") {
          std::error_code rm;
          fs::remove(entry.path(), rm);
        }
      }
    }
  }
  fs::create_directories(coord / "leases", ec);
  fs::create_directories(coord / "inbox", ec);
  write_shard_plan(opts_.checkpoint_dir, opts_.config_hash, stages);

  LeaseTable leases(coord, opts_.lease_ttl_ms);
  std::vector<Child> children;
  int next_id = 0;
  int respawns_left = opts_.max_respawns;
  for (int i = 0; i < opts_.workers; ++i) children.push_back(spawn(next_id++));

  const auto started = std::chrono::steady_clock::now();
  const auto deadline =
      started + std::chrono::milliseconds(opts_.worker_timeout_ms);
  CoordinationOutcome outcome = CoordinationOutcome::kComplete;
  while (true) {
    bool any_alive = false;
    for (Child& child : children) {
      if (child.alive) {
        int status = 0;
        const pid_t done = ::waitpid(static_cast<pid_t>(child.pid), &status,
                                     WNOHANG);
        if (done == 0) {
          any_alive = true;
          continue;
        }
        child.alive = false;
        const bool clean = done > 0 && WIFEXITED(status) &&
                           WEXITSTATUS(status) == 0;
        if (clean) continue;
        child.pid = -2;  // Mark crashed (vs -1 spawn-failed, handled below).
      } else if (child.pid != -1) {
        continue;  // Already reaped (cleanly or crashed-and-replaced).
      }
      // Crashed or never spawned: free its shards and replace it.
      ACBM_COUNT("worker.crashed", 1);
      leases.drop_worker(child.worker_id);
      child.pid = -3;
      if (respawns_left > 0) {
        --respawns_left;
        ACBM_COUNT("worker.reassigned", 1);
        children.push_back(spawn(next_id++));
        // The new child enters the vector we are iterating; restart the
        // scan next loop iteration rather than invalidating this one.
        any_alive = true;
        break;
      }
    }
    if (!any_alive) break;
    if (opts_.worker_timeout_ms > 0 &&
        std::chrono::steady_clock::now() >= deadline) {
      for (Child& child : children) {
        if (!child.alive) continue;
        ::kill(static_cast<pid_t>(child.pid), SIGKILL);
        int status = 0;
        ::waitpid(static_cast<pid_t>(child.pid), &status, 0);
        child.alive = false;
      }
      outcome = CoordinationOutcome::kTimeout;
      break;
    }
    sleep_ms(10);
  }

  if (outcome != CoordinationOutcome::kTimeout) {
    // Did the workers finish the plan? Check the markers, not exit codes:
    // a clean-exit worker guarantees completion, but exhausted budgets
    // leave the plan partial and the caller's merge fit picks it up.
    CheckpointDir::Options ckpt_opts;
    ckpt_opts.config_hash = opts_.config_hash;
    ckpt_opts.shared = true;
    CheckpointDir ckpt(opts_.checkpoint_dir, ckpt_opts);
    const bool complete =
        std::all_of(stages.begin(), stages.end(),
                    [&](const std::string& s) { return ckpt.is_complete(s); });
    outcome = complete ? CoordinationOutcome::kComplete
                       : CoordinationOutcome::kWorkersExhausted;
  }
  if (opts_.aggregate_metrics) aggregate_inbox();
  return outcome;
}

void ShardCoordinator::aggregate_inbox() {
  const fs::path inbox = coord_dir(opts_.checkpoint_dir) / "inbox";
  std::error_code ec;
  std::vector<fs::path> files;
  for (const auto& entry : fs::directory_iterator(inbox, ec)) {
    if (entry.path().extension() == ".metrics") files.push_back(entry.path());
  }
  std::sort(files.begin(), files.end());
  observe::Metrics& metrics = observe::Metrics::instance();
  for (const fs::path& file : files) {
    std::string payload;
    try {
      payload = durable::load_artifact(file, kMetricsKind, 1, 1, false,
                                       nullptr, /*quarantine_on_error=*/false);
    } catch (const durable::LoadFailure&) {
      continue;  // A torn snapshot costs observability, never correctness.
    }
    std::istringstream in(payload);
    std::string kind, name;
    std::uint64_t value = 0;
    while (in >> kind >> name >> value) {
      if (kind == "c") metrics.counter(name).add(value);
    }
  }
}

}  // namespace acbm::core
