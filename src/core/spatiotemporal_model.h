// The spatiotemporal model (§VI): a regression tree (CART with multivariate
// linear leaf models, pruned to keep 88% of the original SD) combining the
// temporal and spatial models' outputs. The tree's inputs mirror the paper's
// nodes: N_tmp (temporal hourly prediction), N_spa (spatial hourly
// prediction), and N_int (temporal inter-launch interval prediction), plus
// target context (previous attack's timestamp parts, recent mean
// magnitude). One tree predicts the next attack's hour, a second its day.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "core/feature_cache.h"
#include "core/robust.h"
#include "core/spatial_model.h"
#include "core/temporal_model.h"
#include "stats/ols.h"
#include "tree/model_tree.h"

namespace acbm::core {

class StageStore;  // checkpoint.h

struct SpatiotemporalOptions {
  TemporalModelOptions temporal;
  SpatialModelOptions spatial;
  tree::ModelTreeOptions tree;  ///< sd_keep_ratio defaults to the paper's 0.88.

  SpatiotemporalOptions() {
    // The combining trees see few, noisy features; shallow structure with
    // aggressive pruning generalizes (the paper prunes to keep 88% of the
    // original SD and notes the unpruned tree drags in spurious splits).
    tree.cart.max_depth = 5;
    tree.cart.min_samples_leaf = 25;
    tree.cart.min_samples_split = 50;
    tree.prune_factor = 1.1;
  }

  /// Targets with fewer training attacks than this get no spatial model and
  /// contribute no tree rows.
  std::size_t min_target_attacks = 4;
  /// Tree rows start once a target has this many prior attacks (the paper
  /// trains from 10 historical attacks per group).
  std::size_t target_warmup = 3;
  /// Window of recent target attacks averaged into the magnitude feature.
  std::size_t magnitude_window = 10;
  /// Threat-intel budget: per-target spatial models see only the most
  /// recent `max_target_history` training attacks (0 = unlimited). The
  /// paper's per-target experiment uses 10 historical attacks per group;
  /// this knob reproduces that limited-information setting (§VI-B).
  std::size_t max_target_history = 0;
  /// Stage checkpointing (checkpoint.h): when set, fit() loads completed
  /// stages ("temporal/<family>", "spatial", "tree") from the store instead
  /// of refitting them, and records each stage as it completes. Non-owning;
  /// the store must outlive the fit. Fits are bit-identical with or without
  /// resume at any thread count.
  StageStore* checkpoint = nullptr;
};

/// Inputs to the combining trees for one prediction.
struct StFeatures {
  double tmp_hour = 0.0;        ///< N_tmp: temporal model's hour prediction.
  double spa_hour = 0.0;        ///< N_spa: spatial model's hour prediction.
  double tmp_interval_s = 0.0;  ///< N_int: temporal interval prediction.
  double spa_interval_s = 0.0;
  double prev_hour = 0.0;       ///< Hour of the target's previous attack.
  double prev_day = 0.0;        ///< Day index of the target's previous attack.
  double mean_hour = 0.0;       ///< Mean launch hour of the target's history.
  double avg_magnitude = 0.0;   ///< Mean magnitude of recent target attacks.

  [[nodiscard]] std::vector<double> hour_row() const;
  [[nodiscard]] std::vector<double> day_row() const;
};

class SpatiotemporalModel {
 public:
  SpatiotemporalModel() = default;
  explicit SpatiotemporalModel(SpatiotemporalOptions opts)
      : opts_(std::move(opts)) {}

  /// Fits the per-family temporal models, per-target spatial models, and
  /// the two combining trees, all from the training dataset.
  void fit(const trace::Dataset& train, const net::IpToAsnMap& ip_map);

  [[nodiscard]] bool fitted() const noexcept { return fitted_; }

  /// Predicted hour of the next attack, clamped to [0, 24).
  [[nodiscard]] double predict_hour(const StFeatures& features) const;

  /// Predicted day index of the next attack (not clamped).
  [[nodiscard]] double predict_day(const StFeatures& features) const;

  /// Sub-model access (null when the family/target had too little data).
  [[nodiscard]] const TemporalModel* temporal(std::uint32_t family) const;
  [[nodiscard]] const SpatialModel* spatial(net::Asn target) const;

  [[nodiscard]] const SpatiotemporalOptions& options() const noexcept {
    return opts_;
  }
  [[nodiscard]] const tree::ModelTree& hour_tree() const noexcept {
    return hour_tree_;
  }
  [[nodiscard]] const tree::ModelTree& day_tree() const noexcept {
    return day_tree_;
  }

  /// Full sub-model maps and the pooled-linear fallback combiners, for
  /// inference-view extraction (core::InferenceView).
  [[nodiscard]] const std::unordered_map<std::uint32_t, TemporalModel>&
  temporal_models() const noexcept {
    return temporal_;
  }
  [[nodiscard]] const std::unordered_map<net::Asn, SpatialModel>&
  spatial_models() const noexcept {
    return spatial_;
  }
  [[nodiscard]] const std::optional<stats::LinearRegression>& hour_fallback()
      const noexcept {
    return hour_linear_;
  }
  [[nodiscard]] const std::optional<stats::LinearRegression>& day_fallback()
      const noexcept {
    return day_linear_;
  }

  /// Aggregated degradation-ladder report of the last fit(): one record per
  /// temporal series ("temporal/<family>/<series>"), spatial series
  /// ("spatial/AS<asn>/<series>"), and combining tree ("tree/hour",
  /// "tree/day"). Not serialized; empty on a loaded model.
  [[nodiscard]] const FitReport& fit_report() const noexcept {
    return report_;
  }

  /// Text serialization of the fitted state (prediction-relevant options
  /// are persisted; sub-model fitting options reset to defaults on load).
  void save(std::ostream& os) const;
  [[nodiscard]] static SpatiotemporalModel load(std::istream& is);

  /// Framed (v3) serialization: the v2 body wrapped in durable.h's
  /// magic/version/CRC32C envelope. load_framed also accepts legacy bare
  /// v2 streams; corruption throws a typed durable::LoadFailure.
  void save_framed(std::ostream& os) const;
  [[nodiscard]] static SpatiotemporalModel load_framed(std::istream& is);

 private:
  /// Checkpoint-stage payloads for fit(): the spatial map and the combining
  /// trees serialized standalone (the temporal stage reuses
  /// TemporalModel::save/load directly).
  [[nodiscard]] std::string save_spatial_stage() const;
  void load_spatial_stage(const std::string& payload);
  [[nodiscard]] std::string save_tree_stage() const;
  void load_tree_stage(const std::string& payload);
  friend struct RowAssembler;
  SpatiotemporalOptions opts_;
  std::unordered_map<std::uint32_t, TemporalModel> temporal_;
  std::unordered_map<net::Asn, SpatialModel> spatial_;
  tree::ModelTree hour_tree_;
  tree::ModelTree day_tree_;
  /// Pooled-linear rung: fallback combiners when a tree fit fails.
  std::optional<stats::LinearRegression> hour_linear_;
  std::optional<stats::LinearRegression> day_linear_;
  FitReport report_;
  bool fitted_ = false;
};

/// One assembled prediction instance: the tree features, the ground truth,
/// and the global attack index it predicts (so callers can filter to the
/// test split).
struct StRow {
  StFeatures features;
  double truth_hour = 0.0;
  double truth_day = 0.0;
  std::size_t attack_index = 0;  ///< Into dataset.attacks().
  std::size_t target_pos = 0;    ///< Position in the target's series.
  net::Asn target_asn = 0;
};

// --- Shared stage-fit helpers ----------------------------------------------
//
// SpatiotemporalModel::fit and the sharded worker path (core/shard.h) fit
// checkpoint stages through these same functions, so a stage artifact is
// byte-identical whether it was produced by a single-process fit, a resumed
// fit, or any worker of a multi-process run. They include the stage's fault
// hooks (temporal.nonfinite) for the same reason.

/// Fits one family's temporal model from the shared FeatureCache. Returns
/// nullopt when the family is unmodelable (fewer than 2 attacks).
[[nodiscard]] std::optional<TemporalModel> fit_family_temporal(
    const trace::Dataset& train, FeatureCache& features, std::uint32_t family,
    const SpatiotemporalOptions& opts);

/// Fits one target's spatial model. Returns nullopt when the target has
/// fewer than `opts.min_target_attacks` training attacks. Honors
/// `opts.max_target_history` (limited-information trimming).
[[nodiscard]] std::optional<SpatialModel> fit_target_spatial(
    const trace::Dataset& train, const net::IpToAsnMap& ip_map,
    FeatureCache& features, net::Asn target,
    const SpatiotemporalOptions& opts);

/// "temporal/<family>" stage payload: the model's text serialization, or the
/// empty string for an unmodelable family (a completed stage with no model).
[[nodiscard]] std::string encode_temporal_stage(
    const std::optional<TemporalModel>& model);

/// "spatial" stage payload: every fitted target model, sorted by ASN so the
/// bytes are independent of map iteration order.
[[nodiscard]] std::string encode_spatial_stage(
    const std::unordered_map<net::Asn, SpatialModel>& spatial);

/// Builds causal prediction rows over `dataset` using already-fitted
/// sub-models: for each target with a spatial model, every attack beyond the
/// warmup gets a row whose sub-model predictions use only earlier attacks.
/// When evaluating, fit the sub-models on the train split and assemble over
/// the full dataset, then keep rows with attack_index in the test range.
/// `cache` (optional) serves the family/target series from a shared
/// FeatureCache — pass the cache used to fit the sub-models so assembly
/// reuses those extractions instead of re-walking the dataset; with the
/// default nullptr the series are extracted locally. Rows are identical
/// either way.
[[nodiscard]] std::vector<StRow> assemble_rows(
    const trace::Dataset& dataset, const net::IpToAsnMap& ip_map,
    const std::unordered_map<std::uint32_t, TemporalModel>& temporal,
    const std::unordered_map<net::Asn, SpatialModel>& spatial,
    const SpatiotemporalOptions& opts, FeatureCache* cache = nullptr);

}  // namespace acbm::core
