#include "core/pipeline.h"

#include <algorithm>
#include <cmath>
#include <span>
#include <stdexcept>
#include <sstream>
#include <tuple>
#include <utility>

#include "core/durable.h"
#include "core/features.h"
#include "core/inference.h"
#include "stats/serialize.h"

namespace acbm::core {

namespace {

/// Sequential mean/population-std (deterministic accumulation order).
std::pair<double, double> mean_std(std::span<const double> xs) {
  if (xs.empty()) return {0.0, 0.0};
  double sum = 0.0;
  for (double x : xs) sum += x;
  const double mean = sum / static_cast<double>(xs.size());
  double ss = 0.0;
  for (double x : xs) ss += (x - mean) * (x - mean);
  return {mean, std::sqrt(ss / static_cast<double>(xs.size()))};
}

}  // namespace

SpatiotemporalOptions default_cli_options() {
  SpatiotemporalOptions opts;
  opts.spatial.grid_search = false;
  return opts;
}

void AdversaryModel::fit(const trace::Dataset& dataset,
                         const net::IpToAsnMap& ip_map) {
  dataset_ = dataset;
  ip_map_ = ip_map;
  observed_.clear();
  st_ = SpatiotemporalModel(opts_);
  st_.fit(dataset_, ip_map_);
  fitted_ = true;
  compute_drift_baselines();
}

void AdversaryModel::compute_drift_baselines() {
  drift_baselines_.clear();
  // Fit-window length in whole hours (rate channel denominator): enough
  // hours to cover the latest attack start.
  trace::EpochSeconds last_start = dataset_.window_start();
  for (const trace::Attack& attack : dataset_.attacks()) {
    last_start = std::max(last_start, attack.start);
  }
  const std::size_t hours = static_cast<std::size_t>(
      (last_start - dataset_.window_start()) / 3600 + 1);
  for (std::uint32_t family = 0;
       family < static_cast<std::uint32_t>(dataset_.family_names().size());
       ++family) {
    const FamilySeries series =
        extract_family_series(dataset_, family, ip_map_, nullptr);
    const std::size_t n = series.magnitude.size();
    if (n < 2) continue;  // One attack pins no spread on any channel.
    FamilyDriftBaseline base;
    base.family = family;
    base.hours = static_cast<double>(hours);
    const std::vector<double> rate =
        hourly_attack_counts(dataset_, family, hours);
    std::tie(base.rate_mean, base.rate_std) = mean_std(rate);
    std::tie(base.magnitude_mean, base.magnitude_std) =
        mean_std(series.magnitude);
    std::tie(base.interval_mean, std::ignore) = mean_std(series.interval_s);
    // Interval residuals against the fitted temporal model's causal one-step
    // predictions: what the model could not explain at fit time. Families
    // without a temporal model (unmodelable) fall back to the raw interval
    // spread.
    const TemporalModel* temporal = st_.temporal(family);
    const std::size_t warmup = std::min<std::size_t>(4, n - 1);
    if (temporal != nullptr && warmup >= 1) {
      const std::vector<double> pred = temporal->one_step_predictions(
          TemporalSeries::kInterval, series.interval_s, warmup);
      std::vector<double> residuals;
      residuals.reserve(pred.size());
      for (std::size_t i = 0; i < pred.size(); ++i) {
        residuals.push_back(series.interval_s[warmup + i] - pred[i]);
      }
      std::tie(std::ignore, base.interval_residual_std) = mean_std(residuals);
    } else {
      std::tie(std::ignore, base.interval_residual_std) =
          mean_std(series.interval_s);
    }
    drift_baselines_.push_back(base);
  }
}

void AdversaryModel::observe(const trace::Attack& attack) {
  if (!fitted_) throw std::logic_error("AdversaryModel::observe: not fitted");
  observed_.push_back(attack);
}

void AdversaryModel::save(std::ostream& os) const {
  namespace io = acbm::stats::io;
  io::write_header(os, "adversary_model", 2);
  io::write_scalar(os, "fitted", fitted_ ? 1 : 0);
  io::write_scalar(os, "magnitude_window", opts_.magnitude_window);
  io::write_scalar(os, "drift_families", drift_baselines_.size());
  for (const FamilyDriftBaseline& base : drift_baselines_) {
    os << "drift " << base.family << ' ' << base.hours << ' ' << base.rate_mean
       << ' ' << base.rate_std << ' ' << base.magnitude_mean << ' '
       << base.magnitude_std << ' ' << base.interval_mean << ' '
       << base.interval_residual_std << '\n';
  }
  st_.save(os);

  // Embed the dataset CSV and IP map with explicit line counts so the
  // loader knows exactly where each block ends.
  std::ostringstream dataset_text;
  dataset_.save_csv(dataset_text);
  const std::string dataset_str = dataset_text.str();
  io::write_scalar(os, "dataset_lines",
                   std::count(dataset_str.begin(), dataset_str.end(), '\n'));
  os << dataset_str;

  std::ostringstream ipmap_text;
  ip_map_.save(ipmap_text);
  const std::string ipmap_str = ipmap_text.str();
  io::write_scalar(os, "ipmap_lines",
                   std::count(ipmap_str.begin(), ipmap_str.end(), '\n'));
  os << ipmap_str;
}

AdversaryModel AdversaryModel::load(std::istream& is) {
  namespace io = acbm::stats::io;
  // Body v2 adds the drift-baseline block; v1 bodies (pre-drift artifacts)
  // still load with empty baselines.
  std::string header;
  if (!std::getline(is, header)) {
    throw std::invalid_argument("AdversaryModel::load: missing header");
  }
  int body_version = 0;
  if (header == "acbm:adversary_model:v1") body_version = 1;
  else if (header == "acbm:adversary_model:v2") body_version = 2;
  else {
    throw std::invalid_argument("AdversaryModel::load: unexpected header '" +
                                header + "'");
  }
  AdversaryModel model;
  model.fitted_ = io::read_scalar<int>(is, "fitted") != 0;
  model.opts_.magnitude_window =
      io::read_scalar<std::size_t>(is, "magnitude_window");
  if (body_version >= 2) {
    const auto count = io::read_scalar<std::size_t>(is, "drift_families");
    model.drift_baselines_.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
      auto ss = io::expect_tag(is, "drift");
      FamilyDriftBaseline base;
      if (!(ss >> base.family >> base.hours >> base.rate_mean >>
            base.rate_std >> base.magnitude_mean >> base.magnitude_std >>
            base.interval_mean >> base.interval_residual_std)) {
        throw std::invalid_argument(
            "AdversaryModel::load: bad drift baseline");
      }
      model.drift_baselines_.push_back(base);
    }
  }
  model.st_ = SpatiotemporalModel::load(is);

  const auto read_block = [&is](std::size_t lines) {
    std::ostringstream block;
    std::string line;
    for (std::size_t i = 0; i < lines; ++i) {
      if (!std::getline(is, line)) {
        throw std::invalid_argument("AdversaryModel::load: truncated block");
      }
      block << line << '\n';
    }
    return block.str();
  };
  const auto dataset_lines = io::read_scalar<std::size_t>(is, "dataset_lines");
  std::istringstream dataset_text(read_block(dataset_lines));
  model.dataset_ = trace::Dataset::load_csv(dataset_text);
  const auto ipmap_lines = io::read_scalar<std::size_t>(is, "ipmap_lines");
  std::istringstream ipmap_text(read_block(ipmap_lines));
  model.ip_map_ = net::IpToAsnMap::load(ipmap_text);
  return model;
}

void AdversaryModel::save_framed(std::ostream& os) const {
  std::ostringstream body;
  save(body);
  os << durable::frame_payload("adversary_model", 4, body.str());
}

AdversaryModel AdversaryModel::load_framed(std::istream& is) {
  // Framed v3 wraps a v1 body (no drift block), v4 a v2 body; the body
  // loader branches on its own header, so both unwrap the same way.
  return durable::load_framed_stream(
      is, "adversary_model", 3, 4,
      [](std::istream& body) { return load(body); });
}

InferenceView AdversaryModel::make_inference_view() const {
  if (!fitted_) {
    throw std::logic_error("AdversaryModel::make_inference_view: not fitted");
  }
  return InferenceView::extract(st_);
}

std::optional<AttackPrediction> AdversaryModel::predict_next_attack(
    net::Asn target_asn, const InferenceView* view) const {
  if (!fitted_) {
    throw std::logic_error("AdversaryModel::predict_next_attack: not fitted");
  }
  // Combined history: fitted dataset plus live observations on this target.
  TargetSeries target = extract_target_series(dataset_, target_asn);
  std::vector<const trace::Attack*> target_attacks;
  for (std::size_t idx : target.attack_indices) {
    target_attacks.push_back(&dataset_.attacks()[idx]);
  }
  for (const trace::Attack& attack : observed_) {
    if (attack.target_asn != target_asn) continue;
    target_attacks.push_back(&attack);
    target.duration_s.push_back(attack.duration_s);
    target.magnitude.push_back(static_cast<double>(attack.magnitude()));
    const trace::EpochSeconds prev_start =
        target_attacks.size() >= 2
            ? target_attacks[target_attacks.size() - 2]->start
            : attack.start;
    target.interval_s.push_back(static_cast<double>(attack.start - prev_start));
    const trace::DayHour dh =
        trace::decompose_timestamp(attack.start, dataset_.window_start());
    target.hour.push_back(static_cast<double>(dh.hour));
    target.day.push_back(static_cast<double>(dh.day));
  }
  if (target_attacks.empty()) return std::nullopt;

  // Dominant attacker family on this target.
  std::unordered_map<std::uint32_t, std::size_t> family_counts;
  for (const trace::Attack* attack : target_attacks) {
    ++family_counts[attack->family];
  }
  std::uint32_t family = target_attacks.back()->family;
  std::size_t best_count = 0;
  for (const auto& [f, count] : family_counts) {
    if (count > best_count || (count == best_count && f < family)) {
      family = f;
      best_count = count;
    }
  }

  AttackPrediction pred;
  pred.assumed_family = family;

  // Temporal component: the family's magnitude / hour / interval forecasts.
  const FamilySeries family_series =
      extract_family_series(dataset_, family, ip_map_, nullptr);
  const TemporalModel* temporal = st_.temporal(family);
  // The f32 view replaces the forecast arithmetic only; model presence,
  // magnitude_sd (forecast variance), and the source distribution stay on
  // the f64 models the view was extracted from.
  const auto tmp_forecast = [&](TemporalSeries which,
                                std::span<const double> series) {
    return view != nullptr ? view->temporal_forecast(family, which, series)
                           : temporal->forecast_next(which, series);
  };
  StFeatures features;
  if (temporal != nullptr && !family_series.magnitude.empty()) {
    pred.magnitude = std::max(
        1.0, tmp_forecast(TemporalSeries::kMagnitude,
                          family_series.magnitude));
    if (const auto& arima = temporal->model(TemporalSeries::kMagnitude)) {
      pred.magnitude_sd = std::sqrt(arima->forecast_variance(1));
    }
    features.tmp_hour = tmp_forecast(TemporalSeries::kHour,
                                     family_series.hour);
    features.tmp_interval_s = std::max(
        30.0, tmp_forecast(TemporalSeries::kInterval,
                           family_series.interval_s));
  } else {
    pred.magnitude = target.magnitude.back();
    features.tmp_hour = target.hour.back();
    features.tmp_interval_s = 86400.0;
  }

  // Spatial component: per-target duration / hour / interval forecasts and
  // the source-AS distribution.
  const SpatialModel* spatial = st_.spatial(target_asn);
  const auto spa_forecast = [&](SpatialSeries which,
                                std::span<const double> series) {
    return view != nullptr ? view->spatial_forecast(target_asn, which, series)
                           : spatial->forecast_next(which, series);
  };
  if (spatial != nullptr) {
    pred.duration_s = std::max(
        30.0, spa_forecast(SpatialSeries::kDuration, target.duration_s));
    features.spa_hour = spa_forecast(SpatialSeries::kHour, target.hour);
    features.spa_interval_s = std::max(
        30.0, spa_forecast(SpatialSeries::kInterval, target.interval_s));
    std::vector<std::unordered_map<net::Asn, double>> dists;
    dists.reserve(target_attacks.size());
    for (const trace::Attack* attack : target_attacks) {
      dists.push_back(source_asn_distribution(*attack, ip_map_));
    }
    pred.source_distribution = spatial->predict_source_distribution(dists);
  } else {
    // Cold target: fall back to its own last observations.
    double mean_duration = 0.0;
    for (double d : target.duration_s) mean_duration += d;
    pred.duration_s = mean_duration / static_cast<double>(target.duration_s.size());
    features.spa_hour = target.hour.back();
    features.spa_interval_s = features.tmp_interval_s;
    pred.source_distribution =
        source_asn_distribution(*target_attacks.back(), ip_map_);
  }

  features.prev_hour = target.hour.back();
  features.prev_day = target.day.back();
  double hour_sum = 0.0;
  for (double h : target.hour) hour_sum += h;
  features.mean_hour = hour_sum / static_cast<double>(target.hour.size());
  const std::size_t window =
      std::min<std::size_t>(opts_.magnitude_window, target.magnitude.size());
  double mag = 0.0;
  for (std::size_t i = target.magnitude.size() - window;
       i < target.magnitude.size(); ++i) {
    mag += target.magnitude[i];
  }
  features.avg_magnitude = mag / static_cast<double>(window);

  pred.hour = view != nullptr ? view->predict_hour(features)
                              : st_.predict_hour(features);
  pred.day = view != nullptr ? view->predict_day(features)
                             : st_.predict_day(features);
  // Materialize (day, hour) as a timestamp. When that instant is not
  // strictly in the future of the last observed attack (multistage chains
  // often continue within the same day), fall back to the predicted
  // inter-launch interval instead of skipping a whole day.
  const double day_for_ts = std::max(pred.day, features.prev_day);
  pred.start = dataset_.window_start() +
               static_cast<trace::EpochSeconds>(day_for_ts) * 86400 +
               static_cast<trace::EpochSeconds>(pred.hour * 3600.0);
  const trace::EpochSeconds last_start = target_attacks.back()->start;
  if (pred.start <= last_start) {
    const double interval =
        std::max(30.0, 0.5 * (features.tmp_interval_s + features.spa_interval_s));
    pred.start = last_start + static_cast<trace::EpochSeconds>(interval);
    const trace::DayHour dh =
        trace::decompose_timestamp(pred.start, dataset_.window_start());
    pred.day = dh.day;
    pred.hour = dh.hour;
  }
  return pred;
}

}  // namespace acbm::core
