// Feature extraction (§III of the paper): the attacker-side variables
// A^f (activity level, Eq. 1), A^b (normalized magnitude, Eq. 2),
// A^s (source-distribution coefficient, Eq. 3-4), and the target-side
// variables (durations, inter-launch times, timestamp day/hour parts,
// multistage chains).
#pragma once

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "net/ip_space.h"
#include "net/routing.h"
#include "trace/dataset.h"

namespace acbm::core {

/// All per-attack time series for one botnet family, chronological.
struct FamilySeries {
  std::vector<std::size_t> attack_indices;  ///< Into dataset.attacks().
  std::vector<double> magnitude;        ///< Bots per attack (Fig. 1's y-axis).
  std::vector<double> activity;         ///< A^f, Eq. 1.
  std::vector<double> norm_magnitude;   ///< A^b, Eq. 2.
  std::vector<double> source_coeff;     ///< A^s, Eq. 3 (needs distances).
  std::vector<double> interval_s;       ///< Inter-launch times (first = 0).
  std::vector<double> hour;             ///< Launch hour of day.
  std::vector<double> day;              ///< Day index in the window.
  std::vector<double> duration_s;
};

/// Extracts the family series. `distance` may be null, in which case
/// source_coeff is computed with unit inter-AS distance (intra-AS term
/// only). All series are aligned: entry k describes the k-th attack of the
/// family.
[[nodiscard]] FamilySeries extract_family_series(
    const trace::Dataset& dataset, std::uint32_t family,
    const net::IpToAsnMap& ip_map, net::ValleyFreeDistance* distance);

/// Per-target-AS series (the spatial model's view, §V).
struct TargetSeries {
  net::Asn asn = 0;
  std::vector<std::size_t> attack_indices;
  std::vector<double> duration_s;  ///< T^d.
  std::vector<double> interval_s;  ///< T^i = T^{ts}_{j+1} - T^{ts}_j (first = 0).
  std::vector<double> hour;        ///< T^{hour}.
  std::vector<double> day;         ///< T^{day}.
  std::vector<double> magnitude;
};

[[nodiscard]] TargetSeries extract_target_series(const trace::Dataset& dataset,
                                                 net::Asn target_asn);

/// Normalized attacker source-AS distribution of one attack.
[[nodiscard]] std::unordered_map<net::Asn, double> source_asn_distribution(
    const trace::Attack& attack, const net::IpToAsnMap& ip_map);

/// The paper's A^s coefficient (Eq. 3-4) for one attack: intra-AS
/// concentration divided by mean pairwise inter-AS hop distance. Larger
/// values mean bots packed densely into few, nearby ASes.
[[nodiscard]] double source_distribution_coefficient(
    const trace::Attack& attack, const net::IpToAsnMap& ip_map,
    net::ValleyFreeDistance* distance);

/// Multistage attack chains (§III-A2): consecutive attacks on the same
/// target between 30 s and 24 h apart are stages of one logical attack.
struct MultistageOptions {
  double min_gap_s = 30.0;
  double max_gap_s = 86400.0;
};

/// Groups attack indices (into dataset.attacks()) into multistage chains;
/// every attack appears in exactly one chain (singletons allowed).
/// Chains are chronological, as is the outer list.
[[nodiscard]] std::vector<std::vector<std::size_t>> multistage_chains(
    const trace::Dataset& dataset, const MultistageOptions& opts = {});

/// Turnaround decomposition of a multistage chain (§III-A2): execution is
/// the summed stage durations, waiting the summed idle gaps between stages,
/// and turnaround the wall-clock span from first launch to last stage end.
struct Turnaround {
  double execution_s = 0.0;
  double waiting_s = 0.0;
  double turnaround_s = 0.0;
  std::size_t stages = 0;
};

/// Computes the turnaround of one chain (indices into dataset.attacks(),
/// chronological). Throws std::invalid_argument on an empty chain.
[[nodiscard]] Turnaround chain_turnaround(const trace::Dataset& dataset,
                                          std::span<const std::size_t> chain);

/// Attacks launched per hour by one family over the first `hours` hours of
/// the observation window (the granularity of the paper's hourly reports,
/// §II-C). Length is exactly `hours`; attacks beyond it are ignored.
[[nodiscard]] std::vector<double> hourly_attack_counts(
    const trace::Dataset& dataset, std::uint32_t family, std::size_t hours);

}  // namespace acbm::core
