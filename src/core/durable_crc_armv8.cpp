// ARMv8 CRC extension CRC32C (the __crc32c* intrinsics implement the same
// Castagnoli polynomial as the software table — bit-identical results).
// Compiled with -march=armv8-a+crc (see src/CMakeLists.txt); only selected
// after the HWCAP_CRC32 auxv probe passes at runtime.
#include "core/durable_dispatch.h"

#if defined(__aarch64__)

#include <arm_acle.h>

#include <cstring>

namespace acbm::core::durable::detail {
namespace {

std::uint32_t crc_raw(const unsigned char* data, std::size_t n,
                      std::uint32_t crc) {
  while (n >= 8) {
    std::uint64_t chunk;
    std::memcpy(&chunk, data, 8);
    crc = __crc32cd(crc, chunk);
    data += 8;
    n -= 8;
  }
  while (n-- > 0) {
    crc = __crc32cb(crc, *data++);
  }
  return crc;
}

}  // namespace

CrcRawFn crc32c_armv8() noexcept { return &crc_raw; }

}  // namespace acbm::core::durable::detail

#else

namespace acbm::core::durable::detail {
CrcRawFn crc32c_armv8() noexcept { return nullptr; }
}  // namespace acbm::core::durable::detail

#endif
