#include "core/ingest.h"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstring>
#include <fstream>
#include <limits>
#include <sstream>
#include <stdexcept>
#include <thread>

#include "core/checkpoint.h"
#include "core/observe.h"
#include "core/robust.h"

#if defined(__unix__) || defined(__APPLE__)
#define ACBM_INGEST_POSIX_IO 1
#include <fcntl.h>
#include <unistd.h>
#endif

namespace acbm::core::ingest {

namespace fs = std::filesystem;

namespace {

constexpr std::string_view kSegmentKind = "ingest_segment";
constexpr int kSegmentVersion = 1;

/// Extracts the integer value of a `#window_start=` header line from a
/// canonical snapshot CSV (the first line Dataset::save_csv writes).
std::optional<trace::EpochSeconds> csv_window_start(std::string_view csv) {
  constexpr std::string_view tag = "#window_start=";
  const auto pos = csv.find(tag);
  if (pos == std::string_view::npos) return std::nullopt;
  const auto end = csv.find('\n', pos);
  const std::string value(
      csv.substr(pos + tag.size(), end == std::string_view::npos
                                       ? std::string_view::npos
                                       : end - pos - tag.size()));
  try {
    return static_cast<trace::EpochSeconds>(std::stoll(value));
  } catch (const std::exception&) {
    return std::nullopt;
  }
}

/// `families_a` is a prefix of (or equal to) `families_b` or vice versa.
/// Family indices in stored attack rows point into the list, so the lists
/// of successive snapshots must agree wherever they overlap — otherwise
/// rows would silently remap to different families.
bool families_consistent(const std::vector<std::string>& a,
                         const std::vector<std::string>& b) {
  const std::size_t common = std::min(a.size(), b.size());
  return std::equal(a.begin(), a.begin() + static_cast<std::ptrdiff_t>(common),
                    b.begin());
}

/// One framed log record: envelope + the "hour=<h>\n" stamp + the snapshot.
std::string encode_segment(std::size_t hour, std::string_view csv) {
  std::string payload = "hour=" + std::to_string(hour) + "\n";
  payload.append(csv);
  return durable::frame_payload(kSegmentKind, kSegmentVersion, payload);
}

/// Appends `record` to `path` and makes it durable before returning. The
/// ingest.torn_tail fault writes only the first half and throws, modeling a
/// crash mid-append (recovery truncates the torn half).
void durable_append(const fs::path& path, std::string_view record,
                    bool torn_tail) {
  const std::size_t n = torn_tail ? record.size() / 2 : record.size();
#ifdef ACBM_INGEST_POSIX_IO
  const int fd = ::open(path.c_str(), O_WRONLY | O_APPEND | O_CREAT, 0644);
  if (fd < 0) {
    throw durable::WriteFailure("ingest: cannot open " + path.string() +
                                " for append: " + std::strerror(errno));
  }
  std::size_t written = 0;
  while (written < n) {
    const ::ssize_t w = ::write(fd, record.data() + written, n - written);
    if (w < 0) {
      const int saved = errno;
      ::close(fd);
      throw durable::WriteFailure("ingest: append to " + path.string() +
                                  " failed: " + std::strerror(saved));
    }
    written += static_cast<std::size_t>(w);
  }
  if (torn_tail) {
    ::close(fd);
    throw durable::WriteFailure("injected fault: ingest.torn_tail " +
                                path.string());
  }
  if (::fsync(fd) != 0) {
    const int saved = errno;
    ::close(fd);
    throw durable::WriteFailure("ingest: fsync of " + path.string() +
                                " failed: " + std::strerror(saved));
  }
  ::close(fd);
#else
  {
    std::ofstream os(path, std::ios::binary | std::ios::app);
    os.write(record.data(), static_cast<std::streamsize>(n));
    os.flush();
    if (!os) {
      throw durable::WriteFailure("ingest: append to " + path.string() +
                                  " failed");
    }
  }
  if (torn_tail) {
    throw durable::WriteFailure("injected fault: ingest.torn_tail " +
                                path.string());
  }
#endif
}

/// First free `<base>.corrupt-<n>` path (mirrors durable::quarantine naming,
/// but recovery writes extracted byte ranges rather than moving a file).
fs::path quarantine_slot(const fs::path& base) {
  for (int n = 1;; ++n) {
    fs::path candidate = base;
    candidate += ".corrupt-" + std::to_string(n);
    if (!fs::exists(candidate)) return candidate;
  }
}

struct ParsedSegment {
  std::size_t hour = 0;
  std::string csv;
  std::size_t end = 0;  ///< Offset one past the segment's last byte.
};

/// Parses the log record starting at `pos`; nullopt when the bytes there
/// are not one intact, CRC-verified segment.
std::optional<ParsedSegment> parse_segment(std::string_view bytes,
                                           std::size_t pos) {
  const auto header_end = bytes.find('\n', pos);
  if (header_end == std::string_view::npos) return std::nullopt;
  std::istringstream header(
      std::string(bytes.substr(pos, header_end - pos)));
  std::string magic, kind, version, len_field, crc_field;
  header >> magic >> kind >> version >> len_field >> crc_field;
  if (magic != durable::kFrameMagic || kind != kSegmentKind ||
      version != "v" + std::to_string(kSegmentVersion) ||
      len_field.rfind("len=", 0) != 0 || crc_field.rfind("crc32c=", 0) != 0) {
    return std::nullopt;
  }
  std::size_t len = 0;
  std::uint32_t crc = 0;
  try {
    len = std::stoull(len_field.substr(4));
    crc = static_cast<std::uint32_t>(
        std::stoul(crc_field.substr(7), nullptr, 16));
  } catch (const std::exception&) {
    return std::nullopt;
  }
  const std::size_t payload_begin = header_end + 1;
  if (payload_begin + len > bytes.size()) return std::nullopt;
  const std::string_view payload = bytes.substr(payload_begin, len);
  if (durable::crc32c(payload) != crc) return std::nullopt;
  const auto stamp_end = payload.find('\n');
  if (stamp_end == std::string_view::npos ||
      payload.substr(0, 5) != "hour=") {
    return std::nullopt;
  }
  ParsedSegment out;
  try {
    out.hour = std::stoull(std::string(payload.substr(5, stamp_end - 5)));
  } catch (const std::exception&) {
    return std::nullopt;
  }
  out.csv = std::string(payload.substr(stamp_end + 1));
  out.end = payload_begin + len;
  return out;
}

}  // namespace

const char* to_string(AppendStatus status) noexcept {
  switch (status) {
    case AppendStatus::kAccepted:
      return "accepted";
    case AppendStatus::kRepaired:
      return "repaired";
    case AppendStatus::kRejected:
      return "rejected";
    case AppendStatus::kDuplicate:
      return "duplicate";
  }
  return "unknown";
}

// --- SnapshotLog ------------------------------------------------------------

SnapshotLog::SnapshotLog(fs::path dir)
    : dir_(std::move(dir)), log_path_(dir_ / "snapshots.log") {
  fs::create_directories(dir_);
  recover();
}

void SnapshotLog::recover() {
  ACBM_SPAN("ingest.recover");
  segments_.clear();
  recovery_ = LogRecovery{};
  if (!fs::exists(log_path_)) return;
  const std::string bytes = durable::read_file(log_path_);

  std::string corrupt_bytes;
  std::size_t pos = 0;
  std::size_t good_tail = 0;  // End of the last intact, in-order segment.
  bool interior_corruption = false;
  while (pos < bytes.size()) {
    auto segment = parse_segment(bytes, pos);
    // An intact segment whose hour does not advance violates the append
    // invariant (hours strictly increase) and is treated like corruption so
    // the invariant holds for every reader.
    if (segment && !segments_.empty() &&
        segment->hour <= segments_.back().hour) {
      segment.reset();
    }
    if (segment) {
      segments_.push_back({segment->hour, std::move(segment->csv)});
      pos = segment->end;
      good_tail = pos;
      continue;
    }
    // Resync at the next segment boundary; no boundary means the bad bytes
    // run to EOF — a torn tail from a crash mid-append.
    const auto next = bytes.find("\nACBMF1 ", pos);
    if (next == std::string::npos) {
      recovery_.torn_tail_bytes = bytes.size() - pos;
      ACBM_COUNT("ingest.recovered.torn_tail", 1);
      break;
    }
    corrupt_bytes.append(bytes, pos, next + 1 - pos);
    ++recovery_.quarantined_ranges;
    interior_corruption = true;
    pos = next + 1;
  }

  if (!corrupt_bytes.empty()) {
    const fs::path slot = quarantine_slot(log_path_);
    durable::atomic_write_file(slot, corrupt_bytes);
    recovery_.quarantine_path = slot.string();
    ACBM_COUNT("ingest.recovered.quarantined", recovery_.quarantined_ranges);
  }
  if (interior_corruption) {
    // Compact the log to its surviving segments so every later reader (and
    // append offset) sees a clean, contiguous record stream.
    std::string clean;
    for (const Segment& s : segments_) clean += encode_segment(s.hour, s.csv);
    rewrite(clean);
  } else if (recovery_.torn_tail_bytes > 0) {
    // The prefix up to good_tail is intact; truncating in place removes the
    // half-written record without rewriting the whole log.
    std::error_code ec;
    fs::resize_file(log_path_, good_tail, ec);
    if (ec) {
      throw durable::WriteFailure("ingest: truncating torn tail of " +
                                  log_path_.string() +
                                  " failed: " + ec.message());
    }
  }
}

void SnapshotLog::rewrite(const std::string& bytes) {
  durable::atomic_write_file(log_path_, bytes);
}

AppendOutcome SnapshotLog::append(std::size_t hour,
                                  std::string_view snapshot_csv) {
  ACBM_SPAN_KV("ingest.append", "hour=" + std::to_string(hour));
  AppendOutcome outcome;

  if (!segments_.empty() && hour <= last_hour()) {
    // Idempotent crash-retry: the previous append durably landed before the
    // caller learned of it; replaying the same hour changes nothing.
    outcome.status = AppendStatus::kDuplicate;
    outcome.detail = "hour " + std::to_string(hour) +
                     " at or before the log's last hour " +
                     std::to_string(last_hour());
    ACBM_COUNT("ingest.snapshots.duplicate", 1);
    return outcome;
  }

  const auto reject = [&](std::string detail) {
    outcome.status = AppendStatus::kRejected;
    outcome.detail = std::move(detail);
    const fs::path qdir = dir_ / "quarantine";
    fs::create_directories(qdir);
    const fs::path slot =
        quarantine_slot(qdir / ("hour-" + std::to_string(hour) + ".csv"));
    durable::atomic_write_file(slot, snapshot_csv);
    outcome.quarantined_to = slot.string();
    ACBM_COUNT("ingest.snapshots.rejected", 1);
    return outcome;
  };

  // Validation: parse through Dataset so its ValidationReport machinery
  // classifies the snapshot (see the policy in ingest.h).
  trace::Dataset snapshot;
  try {
    std::istringstream is{std::string(snapshot_csv)};
    snapshot = trace::Dataset::load_csv(is);
  } catch (const std::exception& e) {
    return reject(std::string("unparseable snapshot: ") + e.what());
  }
  if (!segments_.empty()) {
    const auto base_ws = csv_window_start(segments_.front().csv);
    if (base_ws && snapshot.window_start() != *base_ws) {
      return reject("window_start " +
                    std::to_string(snapshot.window_start()) +
                    " differs from the log's " + std::to_string(*base_ws));
    }
    if (!families_consistent(cumulative_families(), snapshot.family_names())) {
      return reject("family list contradicts the log's (indices would remap)");
    }
  }
  outcome.validation = snapshot.validation();
  outcome.status = outcome.validation.clean() ? AppendStatus::kAccepted
                                              : AppendStatus::kRepaired;

  // Store the canonical (repaired, sorted) form, not the raw bytes, so
  // cumulative() replay and a cold fit on the exported dataset agree.
  std::ostringstream canonical;
  snapshot.save_csv(canonical);
  const std::string record = encode_segment(hour, canonical.str());

  FaultInjector& injector = FaultInjector::instance();
  const std::string key = "hour=" + std::to_string(hour);
  if (injector.enabled() && injector.fires("ingest.append", key)) {
    // Crash before any byte lands: retrying the append converges.
    throw durable::WriteFailure("injected fault: ingest.append " + key);
  }
  const bool torn = injector.enabled() && injector.fires("ingest.torn_tail", key);
  durable_append(log_path_, record, torn);

  segments_.push_back({hour, canonical.str()});
  ACBM_COUNT(outcome.status == AppendStatus::kAccepted
                 ? "ingest.snapshots.accepted"
                 : "ingest.snapshots.repaired",
             1);
  return outcome;
}

std::vector<std::string> SnapshotLog::cumulative_families() const {
  // Family lists only ever extend (enforced by append), so the last
  // segment's list is the cumulative one.
  std::vector<std::string> families;
  for (const Segment& s : segments_) {
    try {
      std::istringstream is(s.csv);
      const trace::Dataset d = trace::Dataset::load_csv(is);
      if (d.family_names().size() > families.size()) {
        families = d.family_names();
      }
    } catch (const std::exception&) {
      // CRC-verified segments parse; a failure here would mean a schema
      // bug, and cumulative() surfaces it.
    }
  }
  return families;
}

trace::Dataset SnapshotLog::cumulative() const {
  if (segments_.empty()) {
    throw std::logic_error("ingest: cumulative() on an empty snapshot log");
  }
  std::vector<std::string> families;
  std::vector<trace::Attack> attacks;
  trace::EpochSeconds window_start = 0;
  for (std::size_t i = 0; i < segments_.size(); ++i) {
    std::istringstream is(segments_[i].csv);
    const trace::Dataset d = trace::Dataset::load_csv(is);
    if (i == 0) window_start = d.window_start();
    if (d.family_names().size() > families.size()) {
      families = d.family_names();
    }
    attacks.insert(attacks.end(), d.attacks().begin(), d.attacks().end());
  }
  // Dataset construction re-sorts, re-validates, and reindexes — the result
  // is exactly what a cold full fit on the exported dataset consumes.
  return trace::Dataset(std::move(families), std::move(attacks), {},
                        window_start);
}

// --- Drift detection --------------------------------------------------------

std::vector<DriftTrip> detect_drift(
    const trace::Dataset& cumulative,
    const std::vector<FamilyDriftBaseline>& baselines,
    std::size_t served_hour, std::size_t last_hour,
    const DriftPolicy& policy) {
  ACBM_SPAN("drift.check");
  std::vector<DriftTrip> trips;

  // Per-family replay state.
  struct FamilyState {
    const FamilyDriftBaseline* baseline = nullptr;
    CorrectedEma rate{0.0}, volume{0.0}, interval{0.0};
    std::optional<trace::EpochSeconds> prev_start;
    std::size_t count_this_hour = 0;
    int consecutive = 0;
    bool tripped = false;
  };
  const auto& families = cumulative.family_names();
  std::vector<FamilyState> state(families.size());
  for (auto& s : state) {
    s.rate = CorrectedEma(policy.alpha);
    s.volume = CorrectedEma(policy.alpha);
    s.interval = CorrectedEma(policy.alpha);
  }
  for (const FamilyDriftBaseline& b : baselines) {
    if (b.family < state.size()) state[b.family].baseline = &b;
  }

  const auto z_of = [](double live, double mean, double spread) {
    return std::abs(live - mean) / std::max(spread, 1e-9);
  };

  // Hour-by-hour replay of the cumulative dataset (attacks are sorted by
  // start time). Per-attack channels (volume, interval) update as attacks
  // arrive; the rate channel and the trip condition evaluate at each hour
  // boundary, matching the hourly ingest cadence.
  const trace::EpochSeconds ws = cumulative.window_start();
  std::size_t attack_i = 0;
  const auto& attacks = cumulative.attacks();
  for (std::size_t hour = 0; hour <= last_hour; ++hour) {
    const trace::EpochSeconds hour_end =
        ws + static_cast<trace::EpochSeconds>((hour + 1) * 3600);
    for (; attack_i < attacks.size() && attacks[attack_i].start < hour_end;
         ++attack_i) {
      const trace::Attack& a = attacks[attack_i];
      if (a.family >= state.size()) continue;
      FamilyState& s = state[a.family];
      ++s.count_this_hour;
      if (s.baseline == nullptr) continue;
      s.volume.update(static_cast<double>(a.magnitude()));
      if (s.prev_start) {
        const double interval_s = static_cast<double>(a.start - *s.prev_start);
        // Deviation of the live inter-arrival from the fit-time mean,
        // z-scored against the residual spread the fitted temporal model
        // could not explain (see FamilyDriftBaseline).
        s.interval.update(interval_s - s.baseline->interval_mean);
      }
      s.prev_start = a.start;
    }
    for (std::size_t f = 0; f < state.size(); ++f) {
      FamilyState& s = state[f];
      const std::size_t n = s.count_this_hour;
      s.count_this_hour = 0;
      if (s.baseline == nullptr || s.tripped) continue;
      s.rate.update(static_cast<double>(n));
      double z_max = z_of(s.rate.value(), s.baseline->rate_mean,
                          s.baseline->rate_std);
      std::string channel = "rate";
      if (s.volume.warm()) {
        const double z = z_of(s.volume.value(), s.baseline->magnitude_mean,
                              s.baseline->magnitude_std);
        if (z > z_max) {
          z_max = z;
          channel = "volume";
        }
      }
      if (s.interval.warm()) {
        const double z =
            z_of(s.interval.value(), 0.0, s.baseline->interval_residual_std);
        if (z > z_max) {
          z_max = z;
          channel = "interval";
        }
      }
      if (z_max > policy.z_threshold) {
        ++s.consecutive;
      } else {
        s.consecutive = 0;
      }
      // Trips at or before the last refit hour were served by that refit
      // and must not re-fire on replay after a crash.
      if (s.consecutive >= policy.consecutive_hours && hour > served_hour) {
        s.tripped = true;
        trips.push_back({static_cast<std::uint32_t>(f), hour, z_max, channel});
      }
    }
  }

  FaultInjector& injector = FaultInjector::instance();
  if (injector.enabled()) {
    for (std::size_t f = 0; f < families.size(); ++f) {
      if (f < state.size() && state[f].tripped) continue;
      if (injector.fires("drift.false_trip", "family=" + families[f])) {
        trips.push_back({static_cast<std::uint32_t>(f), last_hour,
                         policy.z_threshold, "injected"});
      }
    }
  }
  ACBM_COUNT("drift.trips", trips.size());
  return trips;
}

// --- Ingestor ---------------------------------------------------------------

Ingestor::Ingestor(IngestorOptions opts)
    : opts_(std::move(opts)), log_(opts_.dir) {}

bool Ingestor::initialized() const { return fs::exists(model_path()); }

void Ingestor::init(const trace::Dataset& base, const net::IpToAsnMap& ip_map) {
  if (initialized()) {
    throw std::logic_error("ingest: directory already initialized (" +
                           model_path().string() + " exists)");
  }
  if (log_.empty()) {
    std::ostringstream csv;
    base.save_csv(csv);
    const std::size_t base_hour =
        base.attacks().empty()
            ? 0
            : static_cast<std::size_t>(
                  std::max<trace::EpochSeconds>(
                      0, base.attacks().back().start - base.window_start()) /
                  3600);
    const AppendOutcome out = log_.append(base_hour, csv.str());
    if (out.status == AppendStatus::kRejected) {
      throw std::invalid_argument("ingest: base dataset rejected: " +
                                  out.detail);
    }
  }
  std::ostringstream map_os;
  ip_map.save(map_os);
  durable::save_artifact(opts_.dir / "ipmap.art", "ipmap", 1, map_os.str());

  const RefitResult result = refit(log_.cumulative(), {});
  if (!result.published) {
    throw std::runtime_error("ingest: initial fit failed: " + result.error);
  }
}

AppendOutcome Ingestor::append(std::size_t hour,
                               std::string_view snapshot_csv) {
  return log_.append(hour, snapshot_csv);
}

RefitResult Ingestor::check_and_refit(bool force) {
  if (!initialized()) {
    throw std::logic_error("ingest: directory not initialized (run --init)");
  }
  std::vector<FamilyDriftBaseline> baselines;
  {
    std::ifstream is(model_path(), std::ios::binary);
    const AdversaryModel model = AdversaryModel::load_framed(is);
    baselines = model.drift_baselines();
  }
  const trace::Dataset cumulative = log_.cumulative();
  std::vector<DriftTrip> trips =
      detect_drift(cumulative, baselines, last_refit_hour(), log_.last_hour(),
                   opts_.drift);
  if (trips.empty() && !force) {
    return RefitResult{};
  }
  return refit(cumulative, std::move(trips));
}

std::size_t Ingestor::last_refit_hour() const {
  return read_inputs_state().refit_hour;
}

std::map<std::string, std::uint64_t> Ingestor::stage_input_hashes(
    const trace::Dataset& cumulative) const {
  std::map<std::string, std::uint64_t> hashes;
  const auto& families = cumulative.family_names();

  // temporal/<family>: a family's temporal series is a function of only its
  // own attacks and the window start, so its stage survives appends that
  // touch other families.
  for (std::uint32_t f = 0; f < families.size(); ++f) {
    std::ostringstream rows;
    rows << "temporal " << families[f] << " ws="
         << cumulative.window_start() << "\n";
    rows.precision(17);
    for (const std::size_t i : cumulative.attacks_of_family(f)) {
      const trace::Attack& a = cumulative.attacks()[i];
      rows << a.id << ',' << a.start << ',' << a.duration_s << ','
           << a.magnitude() << '\n';
    }
    hashes["temporal/" + families[f]] = durable::fnv1a64(rows.str());
  }

  // spatial and tree both consume the whole dataset (spatial fits every
  // target from all attacks; the trees combine everything), so any change
  // to the cumulative CSV invalidates both.
  std::ostringstream full;
  cumulative.save_csv(full);
  const std::uint64_t full_hash = durable::fnv1a64(full.str());
  hashes["spatial"] = full_hash;
  hashes["tree"] = full_hash;
  return hashes;
}

net::IpToAsnMap Ingestor::load_ipmap() const {
  const std::string payload =
      durable::load_artifact(opts_.dir / "ipmap.art", "ipmap", 1, 1,
                             /*legacy_ok=*/false);
  std::istringstream is(payload);
  return net::IpToAsnMap::load(is);
}

std::uint64_t Ingestor::checkpoint_config_hash() const {
  // Deliberately excludes the dataset bytes: the log grows every hour, and
  // a data-dependent hash would orphan every completed stage on each
  // append. Stage freshness is enforced by the per-stage input hashes in
  // inputs.state instead (refit() invalidates exactly what changed).
  std::uint64_t h = durable::fnv1a64("acbm-ingest-fit");
  h = durable::fnv1a64(durable::read_file(opts_.dir / "ipmap.art"), h);
  h = durable::fnv1a64("grid_search=0", h);
  return h;
}

Ingestor::InputsState Ingestor::read_inputs_state() const {
  InputsState state;
  const fs::path path = opts_.dir / "inputs.state";
  std::string payload;
  try {
    payload = durable::load_artifact(path, "ingest_inputs", 1, 1,
                                     /*legacy_ok=*/false);
  } catch (const durable::LoadFailure&) {
    // Missing or corrupt (the corrupt copy is quarantined by the loader):
    // with no recorded hashes every stage counts as changed, so the next
    // refit is a full one — wasteful but convergent, never stale.
    return state;
  }
  std::istringstream is(payload);
  std::string tag;
  if (!(is >> tag >> state.refit_hour) || tag != "refit_hour") {
    return InputsState{};
  }
  std::size_t n = 0;
  if (!(is >> tag >> n) || tag != "stages") return InputsState{};
  for (std::size_t i = 0; i < n; ++i) {
    std::string stage, hex;
    if (!(is >> tag >> stage >> hex) || tag != "stage") return InputsState{};
    try {
      state.hashes[stage] = std::stoull(hex, nullptr, 16);
    } catch (const std::exception&) {
      return InputsState{};
    }
  }
  return state;
}

RefitResult Ingestor::refit(const trace::Dataset& cumulative,
                            std::vector<DriftTrip> trips) {
  ACBM_SPAN("ingest.refit");
  RefitResult result;
  result.attempted = true;
  result.trips = std::move(trips);

  const auto hashes = stage_input_hashes(cumulative);
  const InputsState prev = read_inputs_state();
  std::vector<std::string> changed;
  for (const auto& [stage, hash] : hashes) {
    const auto it = prev.hashes.find(stage);
    if (it != prev.hashes.end() && it->second == hash) continue;
    changed.push_back(stage);
    ++result.stages_invalidated;
  }
  ACBM_COUNT("refit.stages", result.stages_invalidated);

  const net::IpToAsnMap ip_map = load_ipmap();
  const std::size_t refit_hour = log_.last_hour();
  FaultInjector& injector = FaultInjector::instance();
  const int attempts = 1 + std::max(0, opts_.refit_max_retries);
  // Opening the checkpoint dir and invalidating stale stages write durably,
  // so they sit inside the retried attempt like the fit itself. The stale
  // set is invalidated exactly once: after it succeeds, later attempts keep
  // whatever stages the failed fit managed to complete and resume from them
  // (a crash mid-invalidation just re-runs it — invalidate is idempotent).
  bool invalidated = false;
  for (int attempt = 0; attempt < attempts; ++attempt) {
    try {
      const std::string key = "hour=" + std::to_string(refit_hour) +
                              "/attempt=" + std::to_string(attempt);
      if (injector.enabled() && injector.fires("refit.fail", key)) {
        throw durable::WriteFailure("injected fault: refit.fail " + key);
      }
      CheckpointDir::Options ckpt_opts;
      ckpt_opts.config_hash = checkpoint_config_hash();
      ckpt_opts.resume = true;
      CheckpointDir ckpt(opts_.dir / "checkpoint", ckpt_opts);
      if (!invalidated) {
        for (const std::string& stage : changed) {
          if (ckpt.is_complete(stage)) ckpt.invalidate(stage);
        }
        invalidated = true;
      }
      AdversaryModel model(opts_.model);
      model.set_checkpoint(&ckpt);
      model.fit(cumulative, ip_map);
      publish(model, hashes, refit_hour);
      result.published = true;
      return result;
    } catch (const std::exception& e) {
      result.error = e.what();
      if (attempt + 1 < attempts) {
        ++result.retries;
        ACBM_COUNT("refit.retries", 1);
        const auto backoff = std::chrono::milliseconds(
            static_cast<std::int64_t>(std::max(0, opts_.refit_backoff_ms))
            << attempt);
        std::this_thread::sleep_for(backoff);
      }
    }
  }
  // Terminal fallback: retries exhausted. The previously published model
  // generation is untouched and keeps serving ("never serve nothing");
  // stages that did complete are checkpointed, so the next attempt resumes
  // from them.
  result.fallback = true;
  ACBM_COUNT("refit.fallbacks", 1);
  return result;
}

void Ingestor::publish(const AdversaryModel& model,
                       const std::map<std::string, std::uint64_t>& hashes,
                       std::size_t refit_hour) {
  std::ostringstream body;
  model.save(body);

  // Generation rotation with a COPY (not a rename) of the live model, so
  // model.art stays loadable at every instant of publication:
  //   g1 -> g2 (rename)        model.art still the old generation
  //   model.art -> g1 (copy)   model.art still the old generation
  //   save_artifact(model.art) atomic swap old -> new
  const fs::path live = model_path();
  if (fs::exists(live)) {
    const fs::path g1 = live.string() + ".g1";
    const fs::path g2 = live.string() + ".g2";
    std::error_code ec;
    if (fs::exists(g1)) {
      fs::rename(g1, g2, ec);  // Overwrites g2; failure only loses a spare.
    }
    fs::copy_file(live, g1, fs::copy_options::overwrite_existing, ec);
  }
  durable::save_artifact(live, "adversary_model", 4, body.str());

  // inputs.state last: a crash between the model publish and this write
  // leaves stale hashes, which at worst re-invalidate already-fresh stages
  // on the next refit — deterministic extra work, never a wrong model.
  std::ostringstream state;
  state << "refit_hour " << refit_hour << "\n";
  state << "stages " << hashes.size() << "\n";
  for (const auto& [stage, hash] : hashes) {
    state << "stage " << stage << " " << durable::to_hex(hash) << "\n";
  }
  durable::save_artifact(opts_.dir / "inputs.state", "ingest_inputs", 1,
                         state.str());
}

}  // namespace acbm::core::ingest
