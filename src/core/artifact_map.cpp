#include "core/artifact_map.h"

#include <algorithm>
#include <cstring>
#include <set>
#include <stdexcept>
#include <utility>
#include <vector>

#include "core/durable.h"
#include "core/features.h"
#include "core/pipeline.h"
#include "core/spatial_model.h"
#include "core/spatiotemporal_model.h"
#include "core/temporal_model.h"
#include "nn/mlp.h"
#include "nn/nar.h"
#include "stats/descriptive.h"
#include "stats/ols.h"
#include "tree/cart.h"
#include "tree/model_tree.h"
#include "ts/arima.h"
#include "ts/arma.h"

namespace acbm::core::armm {

namespace {

using durable::LoadError;
using durable::LoadFailure;

[[nodiscard]] LoadFailure corrupt(LoadError code, const std::string& detail) {
  return LoadFailure(code, "armm: " + detail);
}

// --- pack_model builder ------------------------------------------------------

/// Accumulates the typed pools and record arrays, then assembles the
/// aligned, CRC'd file image.
class Builder {
 public:
  Ref put_f64(std::span<const double> xs) {
    const Ref ref{f64_.size(), xs.size()};
    f64_.insert(f64_.end(), xs.begin(), xs.end());
    return ref;
  }
  Ref put_f32(std::span<const float> xs) {
    const Ref ref{f32_.size(), xs.size()};
    f32_.insert(f32_.end(), xs.begin(), xs.end());
    return ref;
  }
  /// Single-rounding down-conversion of an f64 span into the f32 pool.
  Ref put_f64_as_f32(std::span<const double> xs) {
    const Ref ref{f32_.size(), xs.size()};
    f32_.reserve(f32_.size() + xs.size());
    for (double v : xs) f32_.push_back(static_cast<float>(v));
    return ref;
  }
  Ref put_u32(std::span<const std::uint32_t> xs) {
    const Ref ref{u32_.size(), xs.size()};
    u32_.insert(u32_.end(), xs.begin(), xs.end());
    return ref;
  }
  Ref put_i64(std::span<const std::int64_t> xs) {
    const Ref ref{i64_.size(), xs.size()};
    i64_.insert(i64_.end(), xs.begin(), xs.end());
    return ref;
  }
  Ref put_chars(std::string_view text) {
    const Ref ref{chars_.size(), text.size()};
    chars_ += text;
    return ref;
  }

  ArimaRec put_arima(const ts::ArimaModel& model) {
    const ts::ArmaModel& arma = model.arma();
    ArimaRec rec;
    rec.present = 1;
    rec.d = static_cast<std::uint32_t>(model.order().d);
    rec.intercept = arma.intercept();
    rec.sigma2 = arma.sigma2();
    rec.phi = put_f64(arma.phi());
    rec.theta = put_f64(arma.theta());
    rec.phi32 = put_f64_as_f32(arma.phi());
    rec.theta32 = put_f64_as_f32(arma.theta());
    rec.intercept32 = static_cast<float>(arma.intercept());
    return rec;
  }

  /// Appends a NAR's MLP (layers + scalers, both precisions) and returns
  /// its index in the kMlps section.
  std::uint64_t put_nar(const nn::NarModel& nar) {
    const nn::Mlp& mlp = nar.network();
    MlpRec rec;
    rec.delays = nar.delays();
    rec.input_dim = mlp.input_dim();
    rec.layer_off = layers_.size();
    const std::vector<nn::MlpLayerView> views = mlp.layer_views();
    rec.layer_count = views.size();
    for (const nn::MlpLayerView& v : views) {
      MlpLayerRec layer;
      layer.in = v.in;
      layer.out = v.out;
      layer.weights = put_f64(v.weights);
      layer.biases = put_f64(v.biases);
      // Transposed f32 [in x out], the layout gemv_t_f32 wants — same
      // element order as nn::MlpF32View's constructor.
      const Ref wt{f32_.size(), v.weights.size()};
      f32_.reserve(f32_.size() + v.weights.size());
      for (std::size_t i = 0; i < v.in; ++i) {
        for (std::size_t o = 0; o < v.out; ++o) {
          f32_.push_back(static_cast<float>(v.weights[o * v.in + i]));
        }
      }
      layer.weights_t32 = wt;
      layer.biases32 = put_f64_as_f32(v.biases);
      layers_.push_back(layer);
    }
    std::vector<double> means;
    std::vector<double> sds;
    means.reserve(mlp.input_scalers().size());
    sds.reserve(mlp.input_scalers().size());
    for (const stats::ZScore& z : mlp.input_scalers()) {
      means.push_back(z.mean);
      sds.push_back(z.sd);
    }
    rec.in_mean = put_f64(means);
    rec.in_sd = put_f64(sds);
    rec.in_mean32 = put_f64_as_f32(means);
    rec.in_sd32 = put_f64_as_f32(sds);
    rec.out_mean = mlp.output_scaler().mean;
    rec.out_sd = mlp.output_scaler().sd;
    mlps_.push_back(rec);
    return mlps_.size() - 1;
  }

  /// Appends a fitted ModelTree's nodes and returns (offset, count) in the
  /// kTreeNodes section; (0, 0) when not fitted.
  std::pair<std::uint64_t, std::uint64_t> put_tree(
      const tree::ModelTree& tree) {
    if (!tree.fitted()) return {0, 0};
    const std::uint64_t off = tree_nodes_.size();
    const std::vector<tree::CartNode>& nodes = tree.structure().nodes();
    const std::vector<tree::LeafModelExport> models =
        tree.export_leaf_models();
    for (std::size_t id = 0; id < nodes.size(); ++id) {
      TreeNodeRec rec;
      rec.left = nodes[id].left;
      rec.right = nodes[id].right;
      rec.feature = static_cast<std::uint32_t>(nodes[id].feature);
      rec.threshold = nodes[id].threshold;
      rec.mean = models[id].mean;
      if (models[id].use_linear) {
        rec.use_linear = 1;
        rec.intercept = models[id].intercept;
        rec.intercept32 = static_cast<float>(models[id].intercept);
        rec.coef = put_f64(models[id].coefficients);
        rec.coef32 = put_f64_as_f32(models[id].coefficients);
      }
      tree_nodes_.push_back(rec);
    }
    return {off, nodes.size()};
  }

  LinearRec put_linear(const std::optional<stats::LinearRegression>& reg) {
    LinearRec rec;
    if (!reg || !reg->fitted()) return rec;
    rec.present = 1;
    rec.intercept = reg->intercept();
    rec.intercept32 = static_cast<float>(reg->intercept());
    rec.coef = put_f64(reg->coefficients());
    rec.coef32 = put_f64_as_f32(reg->coefficients());
    return rec;
  }

  std::vector<FamilyRec> families;
  std::vector<TemporalSlotRec> temporal_slots;
  std::vector<TargetRec> targets;
  std::vector<SpatialSlotRec> spatial_slots;
  MetaRec meta;

  [[nodiscard]] std::string assemble();

  [[nodiscard]] std::size_t mlp_count() const noexcept { return mlps_.size(); }
  [[nodiscard]] std::size_t mlp_layer_count() const noexcept {
    return layers_.size();
  }
  [[nodiscard]] std::size_t tree_node_count() const noexcept {
    return tree_nodes_.size();
  }

 private:
  std::vector<double> f64_;
  std::vector<float> f32_;
  std::vector<std::uint32_t> u32_;
  std::vector<std::int64_t> i64_;
  std::string chars_;
  std::vector<MlpRec> mlps_;
  std::vector<MlpLayerRec> layers_;
  std::vector<TreeNodeRec> tree_nodes_;
};

template <typename T>
[[nodiscard]] std::string_view bytes_of(const std::vector<T>& xs) {
  return {reinterpret_cast<const char*>(xs.data()), xs.size() * sizeof(T)};
}

std::string Builder::assemble() {
  struct Section {
    SectionId id;
    std::string_view bytes;
  };
  const std::string_view meta_bytes{reinterpret_cast<const char*>(&meta),
                                    sizeof(MetaRec)};
  const Section sections[kSectionCount] = {
      {SectionId::kMeta, meta_bytes},
      {SectionId::kPoolF64, bytes_of(f64_)},
      {SectionId::kPoolF32, bytes_of(f32_)},
      {SectionId::kPoolU32, bytes_of(u32_)},
      {SectionId::kPoolI64, bytes_of(i64_)},
      {SectionId::kPoolChars, std::string_view(chars_)},
      {SectionId::kFamilies, bytes_of(families)},
      {SectionId::kTemporalSlots, bytes_of(temporal_slots)},
      {SectionId::kTargets, bytes_of(targets)},
      {SectionId::kSpatialSlots, bytes_of(spatial_slots)},
      {SectionId::kMlps, bytes_of(mlps_)},
      {SectionId::kMlpLayers, bytes_of(layers_)},
      {SectionId::kTreeNodes, bytes_of(tree_nodes_)},
  };

  const auto align = [](std::size_t off) {
    return (off + kSectionAlign - 1) / kSectionAlign * kSectionAlign;
  };
  std::size_t offset = align(sizeof(FileHeader) +
                             kSectionCount * sizeof(SectionEntry));
  std::vector<SectionEntry> table(kSectionCount);
  for (std::size_t s = 0; s < kSectionCount; ++s) {
    table[s].id = static_cast<std::uint32_t>(sections[s].id);
    table[s].offset = offset;
    table[s].length = sections[s].bytes.size();
    table[s].crc = durable::crc32c(sections[s].bytes);
    offset = align(offset + sections[s].bytes.size());
  }
  const std::size_t file_size = offset;

  FileHeader header;
  std::memcpy(header.magic, kMagic, sizeof(kMagic));
  header.version = kFormatVersion;
  header.endian_check = kEndianCheck;
  header.file_size = file_size;
  header.section_count = kSectionCount;
  header.table_crc = durable::crc32c(bytes_of(table));

  std::string out(file_size, '\0');
  std::memcpy(out.data(), &header, sizeof(header));
  std::memcpy(out.data() + sizeof(header), table.data(),
              table.size() * sizeof(SectionEntry));
  for (std::size_t s = 0; s < kSectionCount; ++s) {
    std::memcpy(out.data() + table[s].offset, sections[s].bytes.data(),
                sections[s].bytes.size());
  }
  return out;
}

}  // namespace

std::string pack_model(const AdversaryModel& model) {
  if (!model.fitted()) {
    throw std::logic_error("pack_model: model not fitted");
  }
  const SpatiotemporalModel& st = model.spatiotemporal();
  const trace::Dataset& dataset = model.dataset();
  const net::IpToAsnMap& ip_map = model.ip_map();
  Builder b;

  // Families: the exact per-family series predict_next_attack extracts at
  // query time, precomputed once here with the same function.
  const std::size_t family_count = dataset.family_names().size();
  for (std::size_t f = 0; f < family_count; ++f) {
    const auto family = static_cast<std::uint32_t>(f);
    const FamilySeries series =
        extract_family_series(dataset, family, ip_map, nullptr);
    FamilyRec rec;
    rec.family = family;
    rec.name = b.put_chars(dataset.family_names()[f]);
    rec.magnitude = b.put_f64(series.magnitude);
    rec.hour = b.put_f64(series.hour);
    rec.interval = b.put_f64(series.interval_s);
    const TemporalModel* tm = st.temporal(family);
    rec.has_temporal = tm != nullptr ? 1 : 0;
    for (std::size_t s = 0; s < kTemporalSeriesCount; ++s) {
      TemporalSlotRec slot;
      if (tm != nullptr) {
        const auto which = static_cast<TemporalSeries>(s);
        slot.seasonal_period = tm->seasonal_period(which);
        slot.fallback_mean = tm->fallback_mean(which);
        if (tm->model(which)) slot.arima = b.put_arima(*tm->model(which));
      }
      b.temporal_slots.push_back(slot);
    }
    b.families.push_back(rec);
  }

  // Targets, sorted by ASN for binary search at serve time.
  std::set<net::Asn> asns;
  for (const trace::Attack& attack : dataset.attacks()) {
    asns.insert(attack.target_asn);
  }
  for (net::Asn asn : asns) {
    const TargetSeries series = extract_target_series(dataset, asn);
    TargetRec rec;
    rec.asn = asn;
    rec.duration = b.put_f64(series.duration_s);
    rec.interval = b.put_f64(series.interval_s);
    rec.hour = b.put_f64(series.hour);
    rec.day = b.put_f64(series.day);
    rec.magnitude = b.put_f64(series.magnitude);

    // Per-attack metadata in chronological order: family and start for the
    // dominant-family vote and the future-timestamp guard, and the source
    // distribution history the share predictor consumes.
    std::vector<std::uint32_t> fams;
    std::vector<std::int64_t> starts;
    std::vector<std::uint32_t> dist_index{0};
    std::vector<std::uint32_t> dist_asn;
    std::vector<double> dist_share;
    for (std::size_t idx : series.attack_indices) {
      const trace::Attack& attack = dataset.attacks()[idx];
      fams.push_back(attack.family);
      starts.push_back(attack.start);
      std::vector<std::pair<net::Asn, double>> dist;
      for (const auto& [src, share] : source_asn_distribution(attack, ip_map)) {
        dist.emplace_back(src, share);
      }
      std::sort(dist.begin(), dist.end());
      for (const auto& [src, share] : dist) {
        dist_asn.push_back(src);
        dist_share.push_back(share);
      }
      dist_index.push_back(static_cast<std::uint32_t>(dist_asn.size()));
    }
    rec.attack_family = b.put_u32(fams);
    rec.attack_start = b.put_i64(starts);
    rec.dist_index = b.put_u32(dist_index);
    rec.dist_asn = b.put_u32(dist_asn);
    rec.dist_share = b.put_f64(dist_share);

    const SpatialModel* sm = st.spatial(asn);
    rec.has_spatial = sm != nullptr ? 1 : 0;
    if (sm != nullptr) {
      rec.tracked = b.put_u32(sm->tracked_ases());
      rec.share_smoothing = sm->share_smoothing();
      rec.share_recency_blend = sm->share_recency_blend();
    }
    for (std::size_t s = 0; s < kSpatialSeriesCount; ++s) {
      SpatialSlotRec slot;
      if (sm != nullptr) {
        const auto which = static_cast<SpatialSeries>(s);
        slot.fallback_mean = sm->fallback_mean(which);
        if (sm->nar(which)) {
          slot.has_nar = 1;
          slot.mlp_index = b.put_nar(*sm->nar(which));
        }
        if (sm->ar(which)) slot.ar = b.put_arima(*sm->ar(which));
      }
      b.spatial_slots.push_back(slot);
    }
    b.targets.push_back(rec);
  }

  std::tie(b.meta.hour_tree_off, b.meta.hour_tree_count) =
      b.put_tree(st.hour_tree());
  std::tie(b.meta.day_tree_off, b.meta.day_tree_count) =
      b.put_tree(st.day_tree());
  b.meta.hour_linear = b.put_linear(st.hour_fallback());
  b.meta.day_linear = b.put_linear(st.day_fallback());

  b.meta.window_start = dataset.window_start();
  b.meta.magnitude_window = model.options().magnitude_window;
  b.meta.family_count = family_count;
  b.meta.target_count = b.targets.size();
  b.meta.mlp_count = b.mlp_count();
  b.meta.mlp_layer_count = b.mlp_layer_count();
  b.meta.tree_node_count = b.tree_node_count();
  return b.assemble();
}

// --- ArtifactView::parse -----------------------------------------------------

namespace {

template <typename T>
std::span<const T> section_span(std::string_view data,
                                const SectionEntry& entry, const char* what) {
  if (entry.length % sizeof(T) != 0) {
    throw corrupt(LoadError::kParse,
                  std::string(what) + " section length " +
                      std::to_string(entry.length) +
                      " is not a multiple of the record size");
  }
  return {reinterpret_cast<const T*>(data.data() + entry.offset),
          static_cast<std::size_t>(entry.length / sizeof(T))};
}

void check_ref(Ref ref, std::size_t pool_len, const char* what) {
  if (ref.off > pool_len || ref.len > pool_len - ref.off) {
    throw corrupt(LoadError::kParse,
                  std::string(what) + " ref [" + std::to_string(ref.off) +
                      ", +" + std::to_string(ref.len) +
                      ") exceeds its pool of " + std::to_string(pool_len));
  }
}

void check_arima(const ArimaRec& rec, std::size_t f64_len, std::size_t f32_len,
                 const char* what) {
  if (rec.present == 0) return;
  check_ref(rec.phi, f64_len, what);
  check_ref(rec.theta, f64_len, what);
  check_ref(rec.phi32, f32_len, what);
  check_ref(rec.theta32, f32_len, what);
  if (rec.phi32.len != rec.phi.len || rec.theta32.len != rec.theta.len) {
    throw corrupt(LoadError::kParse,
                  std::string(what) + " f32 coefficient count mismatch");
  }
}

void check_linear(const LinearRec& rec, std::size_t f64_len,
                  std::size_t f32_len, const char* what) {
  if (rec.present == 0) return;
  check_ref(rec.coef, f64_len, what);
  check_ref(rec.coef32, f32_len, what);
  if (rec.coef32.len != rec.coef.len) {
    throw corrupt(LoadError::kParse,
                  std::string(what) + " f32 coefficient count mismatch");
  }
}

}  // namespace

const TargetRec* ArtifactView::target(net::Asn asn) const noexcept {
  const auto it = std::lower_bound(
      targets_.begin(), targets_.end(), asn,
      [](const TargetRec& rec, net::Asn key) { return rec.asn < key; });
  if (it == targets_.end() || it->asn != asn) return nullptr;
  return &*it;
}

ArtifactView ArtifactView::parse(std::string_view data, bool verify_crc) {
  if (reinterpret_cast<std::uintptr_t>(data.data()) % alignof(double) != 0) {
    throw corrupt(LoadError::kParse, "image buffer is not 8-byte aligned");
  }
  if (data.size() < sizeof(FileHeader)) {
    throw corrupt(LoadError::kTruncated,
                  "file smaller than the " +
                      std::to_string(sizeof(FileHeader)) + "-byte header");
  }
  FileHeader header;
  std::memcpy(&header, data.data(), sizeof(header));
  if (std::memcmp(header.magic, kMagic, sizeof(kMagic)) != 0) {
    throw corrupt(LoadError::kBadMagic, "not an .armm artifact (bad magic)");
  }
  if (header.version != kFormatVersion) {
    throw corrupt(LoadError::kVersionUnsupported,
                  "format v" + std::to_string(header.version) +
                      " is not the supported v" +
                      std::to_string(kFormatVersion));
  }
  if (header.endian_check != kEndianCheck) {
    throw corrupt(LoadError::kParse,
                  "endianness mismatch (artifact written on a different "
                  "architecture)");
  }
  if (header.file_size > data.size()) {
    throw corrupt(LoadError::kTruncated,
                  "header promises " + std::to_string(header.file_size) +
                      " bytes, file has " + std::to_string(data.size()));
  }
  if (header.file_size < data.size()) {
    throw corrupt(LoadError::kParse,
                  std::to_string(data.size() - header.file_size) +
                      " trailing byte(s) after the image");
  }
  if (header.section_count != kSectionCount) {
    throw corrupt(LoadError::kParse,
                  "expected " + std::to_string(kSectionCount) +
                      " sections, header declares " +
                      std::to_string(header.section_count));
  }
  const std::size_t table_bytes = kSectionCount * sizeof(SectionEntry);
  if (data.size() < sizeof(FileHeader) + table_bytes) {
    throw corrupt(LoadError::kTruncated, "section table truncated");
  }
  const std::string_view table_view =
      data.substr(sizeof(FileHeader), table_bytes);
  if (durable::crc32c(table_view) != header.table_crc) {
    throw corrupt(LoadError::kBadChecksum, "section table CRC mismatch");
  }
  SectionEntry table[kSectionCount];
  std::memcpy(table, table_view.data(), table_bytes);

  const SectionEntry* by_id[kSectionCount + 1] = {};
  for (const SectionEntry& entry : table) {
    if (entry.offset % kSectionAlign != 0) {
      throw corrupt(LoadError::kParse,
                    "section " + std::to_string(entry.id) +
                        " offset is not 64-byte aligned");
    }
    if (entry.offset > data.size() ||
        entry.length > data.size() - entry.offset) {
      throw corrupt(LoadError::kTruncated,
                    "section " + std::to_string(entry.id) +
                        " extends past end of file");
    }
    if (entry.id < 1 || entry.id > kSectionCount) {
      throw corrupt(LoadError::kParse,
                    "unknown section id " + std::to_string(entry.id));
    }
    if (by_id[entry.id] != nullptr) {
      throw corrupt(LoadError::kParse,
                    "duplicate section id " + std::to_string(entry.id));
    }
    by_id[entry.id] = &entry;
    if (verify_crc &&
        durable::crc32c(data.substr(entry.offset, entry.length)) !=
            entry.crc) {
      throw corrupt(LoadError::kBadChecksum,
                    "section " + std::to_string(entry.id) + " CRC mismatch");
    }
  }
  const auto section = [&](SectionId id) -> const SectionEntry& {
    return *by_id[static_cast<std::uint32_t>(id)];
  };

  ArtifactView view;
  const SectionEntry& meta_entry = section(SectionId::kMeta);
  if (meta_entry.length != sizeof(MetaRec)) {
    throw corrupt(LoadError::kParse, "meta section has the wrong size");
  }
  view.meta_ = reinterpret_cast<const MetaRec*>(data.data() +
                                                meta_entry.offset);
  view.pool_f64_ = section_span<double>(data, section(SectionId::kPoolF64),
                                        "f64 pool");
  view.pool_f32_ = section_span<float>(data, section(SectionId::kPoolF32),
                                       "f32 pool");
  view.pool_u32_ = section_span<std::uint32_t>(
      data, section(SectionId::kPoolU32), "u32 pool");
  view.pool_i64_ = section_span<std::int64_t>(
      data, section(SectionId::kPoolI64), "i64 pool");
  view.pool_chars_ = std::span<const char>(
      data.data() + section(SectionId::kPoolChars).offset,
      static_cast<std::size_t>(section(SectionId::kPoolChars).length));
  view.families_ = section_span<FamilyRec>(data, section(SectionId::kFamilies),
                                           "families");
  view.temporal_slots_ = section_span<TemporalSlotRec>(
      data, section(SectionId::kTemporalSlots), "temporal slots");
  view.targets_ = section_span<TargetRec>(data, section(SectionId::kTargets),
                                          "targets");
  view.spatial_slots_ = section_span<SpatialSlotRec>(
      data, section(SectionId::kSpatialSlots), "spatial slots");
  view.mlps_ = section_span<MlpRec>(data, section(SectionId::kMlps), "mlps");
  view.mlp_layers_ = section_span<MlpLayerRec>(
      data, section(SectionId::kMlpLayers), "mlp layers");
  view.tree_nodes_ = section_span<TreeNodeRec>(
      data, section(SectionId::kTreeNodes), "tree nodes");

  // Structural validation: counts and every stored Ref, so the serving hot
  // path never bounds-checks.
  const MetaRec& meta = *view.meta_;
  const std::size_t nf64 = view.pool_f64_.size();
  const std::size_t nf32 = view.pool_f32_.size();
  const std::size_t nu32 = view.pool_u32_.size();
  const std::size_t ni64 = view.pool_i64_.size();
  const std::size_t nchars = view.pool_chars_.size();
  if (view.families_.size() != meta.family_count ||
      view.temporal_slots_.size() != meta.family_count * kTemporalSeriesCount ||
      view.targets_.size() != meta.target_count ||
      view.spatial_slots_.size() != meta.target_count * kSpatialSeriesCount ||
      view.mlps_.size() != meta.mlp_count ||
      view.mlp_layers_.size() != meta.mlp_layer_count ||
      view.tree_nodes_.size() != meta.tree_node_count) {
    throw corrupt(LoadError::kParse,
                  "record counts disagree with the meta section");
  }

  for (std::size_t f = 0; f < view.families_.size(); ++f) {
    const FamilyRec& rec = view.families_[f];
    if (rec.family != f) {
      throw corrupt(LoadError::kParse, "family ids are not contiguous");
    }
    check_ref(rec.name, nchars, "family name");
    check_ref(rec.magnitude, nf64, "family magnitude");
    check_ref(rec.hour, nf64, "family hour");
    check_ref(rec.interval, nf64, "family interval");
  }
  for (const TemporalSlotRec& slot : view.temporal_slots_) {
    check_arima(slot.arima, nf64, nf32, "temporal arima");
  }
  for (std::size_t t = 0; t < view.targets_.size(); ++t) {
    const TargetRec& rec = view.targets_[t];
    if (t > 0 && view.targets_[t - 1].asn >= rec.asn) {
      throw corrupt(LoadError::kParse, "targets are not sorted by ASN");
    }
    const std::uint64_t n = rec.attack_family.len;
    if (n == 0 || rec.attack_start.len != n || rec.duration.len != n ||
        rec.interval.len != n || rec.hour.len != n || rec.day.len != n ||
        rec.magnitude.len != n || rec.dist_index.len != n + 1) {
      throw corrupt(LoadError::kParse,
                    "target series lengths disagree for AS" +
                        std::to_string(rec.asn));
    }
    check_ref(rec.duration, nf64, "target duration");
    check_ref(rec.interval, nf64, "target interval");
    check_ref(rec.hour, nf64, "target hour");
    check_ref(rec.day, nf64, "target day");
    check_ref(rec.magnitude, nf64, "target magnitude");
    check_ref(rec.attack_family, nu32, "target attack families");
    check_ref(rec.attack_start, ni64, "target attack starts");
    check_ref(rec.dist_index, nu32, "target dist index");
    check_ref(rec.dist_asn, nu32, "target dist asns");
    check_ref(rec.dist_share, nf64, "target dist shares");
    check_ref(rec.tracked, nu32, "target tracked ases");
    if (rec.dist_share.len != rec.dist_asn.len) {
      throw corrupt(LoadError::kParse, "dist share/asn length mismatch");
    }
    const std::span<const std::uint32_t> index = view.u32(rec.dist_index);
    for (std::size_t i = 0; i < index.size(); ++i) {
      if (index[i] > rec.dist_asn.len || (i > 0 && index[i] < index[i - 1])) {
        throw corrupt(LoadError::kParse, "dist index is not a prefix array");
      }
    }
    if (index.back() != rec.dist_asn.len) {
      throw corrupt(LoadError::kParse, "dist index does not cover the pool");
    }
    for (std::uint32_t fam : view.u32(rec.attack_family)) {
      if (fam >= meta.family_count) {
        throw corrupt(LoadError::kParse, "attack family id out of range");
      }
    }
  }
  for (const SpatialSlotRec& slot : view.spatial_slots_) {
    if (slot.has_nar != 0 && slot.mlp_index >= meta.mlp_count) {
      throw corrupt(LoadError::kParse, "spatial slot mlp index out of range");
    }
    check_arima(slot.ar, nf64, nf32, "spatial ar");
  }
  for (const MlpRec& mlp : view.mlps_) {
    if (mlp.layer_off > meta.mlp_layer_count ||
        mlp.layer_count > meta.mlp_layer_count - mlp.layer_off ||
        mlp.layer_count == 0) {
      throw corrupt(LoadError::kParse, "mlp layer range out of bounds");
    }
    if (mlp.in_mean.len != mlp.input_dim || mlp.in_sd.len != mlp.input_dim ||
        mlp.in_mean32.len != mlp.input_dim ||
        mlp.in_sd32.len != mlp.input_dim || mlp.delays != mlp.input_dim) {
      throw corrupt(LoadError::kParse, "mlp scaler/delay dims disagree");
    }
    check_ref(mlp.in_mean, nf64, "mlp in_mean");
    check_ref(mlp.in_sd, nf64, "mlp in_sd");
    check_ref(mlp.in_mean32, nf32, "mlp in_mean32");
    check_ref(mlp.in_sd32, nf32, "mlp in_sd32");
    std::uint64_t width = mlp.input_dim;
    for (std::uint64_t l = 0; l < mlp.layer_count; ++l) {
      const MlpLayerRec& layer = view.mlp_layers_[mlp.layer_off + l];
      if (layer.in != width ||
          layer.weights.len != layer.in * layer.out ||
          layer.biases.len != layer.out ||
          layer.weights_t32.len != layer.weights.len ||
          layer.biases32.len != layer.out) {
        throw corrupt(LoadError::kParse, "mlp layer dims disagree");
      }
      check_ref(layer.weights, nf64, "mlp weights");
      check_ref(layer.biases, nf64, "mlp biases");
      check_ref(layer.weights_t32, nf32, "mlp weights_t32");
      check_ref(layer.biases32, nf32, "mlp biases32");
      width = layer.out;
    }
    if (width != 1) {
      throw corrupt(LoadError::kParse, "mlp final layer width is not 1");
    }
  }
  const auto check_tree = [&](std::uint64_t off, std::uint64_t count,
                              const char* what) {
    if (off > meta.tree_node_count ||
        count > meta.tree_node_count - off) {
      throw corrupt(LoadError::kParse,
                    std::string(what) + " node range out of bounds");
    }
    for (std::uint64_t i = 0; i < count; ++i) {
      const TreeNodeRec& node = view.tree_nodes_[off + i];
      const bool leaf = node.left < 0;
      if (leaf != (node.right < 0) ||
          (!leaf && (static_cast<std::uint64_t>(node.left) >= count ||
                     static_cast<std::uint64_t>(node.right) >= count))) {
        throw corrupt(LoadError::kParse,
                      std::string(what) + " child index out of range");
      }
      if (node.use_linear != 0) {
        check_ref(node.coef, nf64, "tree coef");
        check_ref(node.coef32, nf32, "tree coef32");
        if (node.coef32.len != node.coef.len) {
          throw corrupt(LoadError::kParse, "tree f32 coef count mismatch");
        }
      }
    }
    if (count > 0) {
      // The walk starts at relative node 0; an empty tree means "not
      // fitted", never a zero-node walk.
      const TreeNodeRec& root = view.tree_nodes_[off];
      (void)root;
    }
  };
  check_tree(meta.hour_tree_off, meta.hour_tree_count, "hour tree");
  check_tree(meta.day_tree_off, meta.day_tree_count, "day tree");
  check_linear(meta.hour_linear, nf64, nf32, "hour linear");
  check_linear(meta.day_linear, nf64, nf32, "day linear");
  return view;
}

}  // namespace acbm::core::armm
