// Float32 inference views (--precision f32): compact serving-side replicas
// extracted once from the fitted f64 models. Weights are down-converted a
// single time into contiguous buffers; the hot filters (ARIMA innovations,
// NAR forward passes, leaf linear models) then run in f32 with
// preallocated scratch, while cheap structural decisions stay in f64 so
// the f32 path never routes differently than the f64 one:
//
//  - ArimaF32 differences and integrates in f64 (exact subtractions of the
//    caller's history) and runs the O(n * (p + q)) innovations filter in
//    f32 — the f64 model allocates three vectors per forecast, the view
//    allocates none after warm-up.
//  - TreeF32 keeps split thresholds in f64, so every sample lands in the
//    same leaf as the source tree; only the leaf linear models run in f32.
//  - InferenceView mirrors the degradation ladders of
//    TemporalModel::forecast_next / SpatialModel::forecast_next and
//    SpatiotemporalModel::predict_hour/predict_day rung for rung.
//
// Accuracy versus f64 is bounded by tests/core/inference_f32_test.cpp and
// documented in DESIGN.md §6. Views keep mutable scratch, so a view must
// not be shared across threads — extract one per serving thread.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "core/spatiotemporal_model.h"
#include "nn/inference_f32.h"
#include "ts/arima.h"

namespace acbm::core {

/// Arithmetic precision of the serving path (--precision CLI flag).
enum class Precision {
  kF64,  ///< Fitted models as-is (default; bit-identical to prior releases).
  kF32,  ///< InferenceView replicas (faster; documented rel-error bound).
};

[[nodiscard]] std::string_view precision_name(Precision precision) noexcept;

/// Parses "f64" / "f32"; throws std::invalid_argument on anything else.
[[nodiscard]] Precision parse_precision(std::string_view text);

/// f32 replica of a fitted ARIMA(p, d, q). Not thread-safe (scratch).
class ArimaF32 {
 public:
  /// Throws std::logic_error when the source is not fitted.
  explicit ArimaF32(const ts::ArimaModel& model);

  /// One-step forecast following `history` (original scale). Throws
  /// std::invalid_argument when history.size() <= d.
  [[nodiscard]] double forecast_one(std::span<const double> history) const;

  [[nodiscard]] std::size_t d() const noexcept { return d_; }

 private:
  std::size_t d_ = 0;
  std::vector<float> phi_;
  std::vector<float> theta_;
  float intercept_ = 0.0f;
  mutable std::vector<double> diff_;  ///< d-times differenced history (f64).
  mutable std::vector<float> x_;      ///< Differenced series, f32.
  mutable std::vector<float> e_;      ///< Filtered innovations, f32.
};

/// f32 replica of a fitted ModelTree: f64 split walk (identical leaf
/// routing), f32 leaf linear models in one flattened coefficient buffer.
class TreeF32 {
 public:
  /// nullopt when the source tree is not fitted.
  [[nodiscard]] static std::optional<TreeF32> from(
      const tree::ModelTree& tree);

  [[nodiscard]] double predict(std::span<const double> features) const;

 private:
  struct Node {
    std::int32_t left = -1;
    std::int32_t right = -1;
    std::uint32_t feature = 0;
    std::uint32_t coef_off = 0;  ///< Into coefs_; len == 0 -> mean leaf.
    std::uint32_t coef_len = 0;
    float intercept = 0.0f;
    double threshold = 0.0;  ///< Kept f64: routing matches the source tree.
    double mean = 0.0;
  };

  std::vector<Node> nodes_;
  std::vector<float> coefs_;
};

/// Serving-side replica of a fitted SpatiotemporalModel and its sub-model
/// maps. Holds no reference to the source model. Not thread-safe.
class InferenceView {
 public:
  /// Throws std::logic_error when the model is not fitted.
  [[nodiscard]] static InferenceView extract(const SpatiotemporalModel& model);

  /// Combining-tree predictions; same rungs and clamping as
  /// SpatiotemporalModel::predict_hour / predict_day.
  [[nodiscard]] double predict_hour(const StFeatures& features) const;
  [[nodiscard]] double predict_day(const StFeatures& features) const;

  [[nodiscard]] bool has_temporal(std::uint32_t family) const;
  [[nodiscard]] bool has_spatial(net::Asn target) const;

  /// f32 counterparts of TemporalModel::forecast_next /
  /// SpatialModel::forecast_next (same history repair and degradation
  /// ladder). Throw std::invalid_argument for an unknown family/target.
  [[nodiscard]] double temporal_forecast(std::uint32_t family,
                                         TemporalSeries which,
                                         std::span<const double> history) const;
  [[nodiscard]] double spatial_forecast(net::Asn target, SpatialSeries which,
                                        std::span<const double> history) const;

 private:
  /// f32 linear model (pooled-linear combiner rung).
  struct LinearF32 {
    float intercept = 0.0f;
    std::vector<float> coef;

    [[nodiscard]] double predict(std::span<const double> features) const;
  };

  struct TemporalSlotF32 {
    std::optional<ArimaF32> arima;
    std::size_t seasonal_period = 0;
    double fallback_mean = 0.0;
  };
  struct SpatialSlotF32 {
    std::optional<nn::NarF32View> nar;
    std::optional<ArimaF32> ar;  ///< AR rung (an ARIMA with q == 0).
    double fallback_mean = 0.0;
  };

  [[nodiscard]] std::span<const double> repair(std::span<const double> history,
                                               double fill) const;

  std::unordered_map<std::uint32_t,
                     std::array<TemporalSlotF32, kTemporalSeriesCount>>
      temporal_;
  std::unordered_map<net::Asn, std::array<SpatialSlotF32, kSpatialSeriesCount>>
      spatial_;
  std::optional<TreeF32> hour_tree_;
  std::optional<TreeF32> day_tree_;
  std::optional<LinearF32> hour_linear_;
  std::optional<LinearF32> day_linear_;
  mutable std::vector<double> repair_scratch_;
};

}  // namespace acbm::core
