// The mmap-native serving artifact (`.armm`, written by `acbm pack`): the
// kenlm idiom applied to the adversary model. Every number the predict
// path needs — ARIMA coefficient tables, NAR/MLP weight blocks (f64
// row-major AND the transposed f32 layout gemv_t_f32 wants), combining-tree
// split/threshold/leaf arrays, per-family and per-target history series,
// and the per-attack source-AS distributions — is laid out in typed pools
// referenced by (offset, length) records, so the file is usable in place:
// startup is mmap + header/CRC validation, zero deserialization, O(µs)
// regardless of model size.
//
// On-disk layout (all little-endian, natural C++ alignment):
//
//   FileHeader                   32 B   magic, version, endianness probe,
//                                       file size, section count, table CRC
//   SectionEntry[section_count]  32 B   id, byte offset (64-aligned), byte
//                               each    length, CRC32C of the section
//   --- 64-byte-aligned sections ---
//   kMeta          one MetaRec (counts, window_start, combiner models)
//   kPoolF64/F32/U32/I64/Chars   the typed pools every Ref points into
//   kFamilies      FamilyRec[family_count]      (family id == index)
//   kTemporalSlots TemporalSlotRec[family_count * kTemporalSeriesCount]
//   kTargets       TargetRec[target_count]      (sorted by ASN)
//   kSpatialSlots  SpatialSlotRec[target_count * kSpatialSeriesCount]
//   kMlps          MlpRec[mlp_count]            (one per NAR rung)
//   kMlpLayers     MlpLayerRec[mlp_layer_count]
//   kTreeNodes     TreeNodeRec[tree_node_count] (hour tree then day tree)
//
// A Ref is an (element offset, element count) pair into one typed pool;
// every Ref is bounds-checked once at load time (ArtifactView::parse), so
// the serving hot path does no per-access validation. Records are
// trivially copyable with explicit padding and static_asserted sizes: the
// reader casts mapped bytes directly, it never parses.
//
// Corruption surfaces as the durable.h LoadError taxonomy (kBadMagic /
// kTruncated / kBadChecksum / kVersionUnsupported / kParse) — same
// contract as the framed text artifacts, minus the copy.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <type_traits>

#include "net/ip_space.h"
#include "trace/dataset.h"

namespace acbm::core {

class AdversaryModel;  // pipeline.h

namespace armm {

inline constexpr char kMagic[8] = {'A', 'C', 'B', 'M', 'M', 'M', '1', '\0'};
inline constexpr std::uint32_t kFormatVersion = 1;
inline constexpr std::uint32_t kEndianCheck = 0x01020304;
inline constexpr std::size_t kSectionAlign = 64;

enum class SectionId : std::uint32_t {
  kMeta = 1,
  kPoolF64 = 2,
  kPoolF32 = 3,
  kPoolU32 = 4,
  kPoolI64 = 5,
  kPoolChars = 6,
  kFamilies = 7,
  kTemporalSlots = 8,
  kTargets = 9,
  kSpatialSlots = 10,
  kMlps = 11,
  kMlpLayers = 12,
  kTreeNodes = 13,
};
inline constexpr std::size_t kSectionCount = 13;

struct FileHeader {
  char magic[8] = {};
  std::uint32_t version = 0;
  std::uint32_t endian_check = 0;
  std::uint64_t file_size = 0;
  std::uint32_t section_count = 0;
  std::uint32_t table_crc = 0;  ///< CRC32C of the section table bytes.
};
static_assert(sizeof(FileHeader) == 32);

struct SectionEntry {
  std::uint32_t id = 0;
  std::uint32_t reserved = 0;
  std::uint64_t offset = 0;  ///< From file start; kSectionAlign-aligned.
  std::uint64_t length = 0;  ///< Bytes.
  std::uint32_t crc = 0;     ///< CRC32C of the section bytes.
  std::uint32_t reserved2 = 0;
};
static_assert(sizeof(SectionEntry) == 32);

/// (element offset, element count) into one typed pool. Which pool is
/// fixed by the field, not the Ref.
struct Ref {
  std::uint64_t off = 0;
  std::uint64_t len = 0;
};
static_assert(sizeof(Ref) == 16);

/// A fitted ARIMA(p, d, q): enough to replay ArimaModel::forecast_one
/// bit-for-bit (f64 pools) and ArimaF32::forecast_one (f32 pools).
struct ArimaRec {
  std::uint32_t present = 0;
  std::uint32_t d = 0;
  double intercept = 0.0;
  double sigma2 = 0.0;
  Ref phi;       ///< f64 pool.
  Ref theta;     ///< f64 pool.
  Ref phi32;     ///< f32 pool.
  Ref theta32;   ///< f32 pool.
  float intercept32 = 0.0f;
  std::uint32_t pad = 0;
};
static_assert(sizeof(ArimaRec) == 96);

/// One TemporalModel degradation slot (ARIMA -> seasonal-naive -> mean).
struct TemporalSlotRec {
  ArimaRec arima;
  std::uint64_t seasonal_period = 0;
  double fallback_mean = 0.0;
};
static_assert(sizeof(TemporalSlotRec) == 112);

/// Per-family record: the pack-time extract_family_series() output the
/// predict path reads, plus the display name. Index == family id.
struct FamilyRec {
  std::uint32_t family = 0;
  std::uint32_t has_temporal = 0;  ///< st.temporal(family) != nullptr.
  Ref name;       ///< chars pool.
  Ref magnitude;  ///< f64 pool.
  Ref hour;       ///< f64 pool.
  Ref interval;   ///< f64 pool (interval_s).
};
static_assert(sizeof(FamilyRec) == 72);

/// One MLP layer: f64 row-major [out x in] (bit-identical forward via
/// stats::gemv) and the transposed f32 layout [in x out] for gemv_t_f32.
struct MlpLayerRec {
  std::uint64_t in = 0;
  std::uint64_t out = 0;
  Ref weights;      ///< f64 pool, row-major.
  Ref biases;       ///< f64 pool.
  Ref weights_t32;  ///< f32 pool, input-major (transposed).
  Ref biases32;     ///< f32 pool.
};
static_assert(sizeof(MlpLayerRec) == 80);

/// One NAR network (delays + MLP + scalers). Layers live contiguously in
/// the kMlpLayers section at [layer_off, layer_off + layer_count).
struct MlpRec {
  std::uint64_t delays = 0;
  std::uint64_t input_dim = 0;
  std::uint64_t layer_off = 0;
  std::uint64_t layer_count = 0;
  Ref in_mean;    ///< f64 pool (ZScore means).
  Ref in_sd;      ///< f64 pool (ZScore sds).
  Ref in_mean32;  ///< f32 pool.
  Ref in_sd32;    ///< f32 pool.
  double out_mean = 0.0;
  double out_sd = 1.0;
};
static_assert(sizeof(MlpRec) == 112);

/// One SpatialModel degradation slot (NAR -> AR -> mean).
struct SpatialSlotRec {
  std::uint32_t has_nar = 0;
  std::uint32_t pad = 0;
  std::uint64_t mlp_index = 0;  ///< Into kMlps; valid when has_nar.
  ArimaRec ar;                  ///< The AR rung (q == 0).
  double fallback_mean = 0.0;
};
static_assert(sizeof(SpatialSlotRec) == 120);

/// One combining-tree node (CartNode + LeafModelExport flattened). The
/// split threshold stays f64 so leaf routing matches the source tree in
/// both precisions; leaves carry both f64 and f32 linear models.
struct TreeNodeRec {
  std::int32_t left = -1;
  std::int32_t right = -1;
  std::uint32_t feature = 0;
  std::uint32_t use_linear = 0;
  double threshold = 0.0;
  double mean = 0.0;
  double intercept = 0.0;
  Ref coef;    ///< f64 pool.
  Ref coef32;  ///< f32 pool.
  float intercept32 = 0.0f;
  std::uint32_t pad = 0;
};
static_assert(sizeof(TreeNodeRec) == 80);

/// A pooled-linear combiner rung (SpatiotemporalModel::hour_fallback /
/// day_fallback), embedded in MetaRec.
struct LinearRec {
  std::uint32_t present = 0;
  std::uint32_t pad = 0;
  double intercept = 0.0;
  Ref coef;    ///< f64 pool.
  Ref coef32;  ///< f32 pool.
  float intercept32 = 0.0f;
  std::uint32_t pad2 = 0;
};
static_assert(sizeof(LinearRec) == 56);

/// Per-target record: the pack-time extract_target_series() output plus
/// per-attack metadata (family, start, source-AS distribution) and the
/// spatial share-predictor state. dist_index is a prefix array of n+1
/// element offsets (relative to dist_asn/dist_share) delimiting attack
/// a's sources as [dist_index[a], dist_index[a+1]), sorted by ASN.
struct TargetRec {
  std::uint32_t asn = 0;
  std::uint32_t has_spatial = 0;  ///< st.spatial(asn) != nullptr.
  Ref duration;       ///< f64 pool (duration_s).
  Ref interval;       ///< f64 pool (interval_s).
  Ref hour;           ///< f64 pool.
  Ref day;            ///< f64 pool.
  Ref magnitude;      ///< f64 pool.
  Ref attack_family;  ///< u32 pool, len == attack count.
  Ref attack_start;   ///< i64 pool, len == attack count.
  Ref dist_index;     ///< u32 pool, len == attack count + 1.
  Ref dist_asn;       ///< u32 pool (flattened source ASNs).
  Ref dist_share;     ///< f64 pool (parallel shares).
  Ref tracked;        ///< u32 pool (tracked ASes, fitted order).
  double share_smoothing = 0.0;
  double share_recency_blend = 0.0;
};
static_assert(sizeof(TargetRec) == 200);

struct MetaRec {
  std::int64_t window_start = 0;
  std::uint64_t magnitude_window = 0;
  std::uint64_t family_count = 0;
  std::uint64_t target_count = 0;
  std::uint64_t mlp_count = 0;
  std::uint64_t mlp_layer_count = 0;
  std::uint64_t tree_node_count = 0;
  std::uint64_t hour_tree_off = 0;    ///< Into kTreeNodes.
  std::uint64_t hour_tree_count = 0;  ///< 0 = hour tree not fitted.
  std::uint64_t day_tree_off = 0;
  std::uint64_t day_tree_count = 0;
  LinearRec hour_linear;
  LinearRec day_linear;
};
static_assert(sizeof(MetaRec) == 200);

static_assert(std::is_trivially_copyable_v<FileHeader> &&
              std::is_trivially_copyable_v<SectionEntry> &&
              std::is_trivially_copyable_v<FamilyRec> &&
              std::is_trivially_copyable_v<TemporalSlotRec> &&
              std::is_trivially_copyable_v<TargetRec> &&
              std::is_trivially_copyable_v<SpatialSlotRec> &&
              std::is_trivially_copyable_v<MlpRec> &&
              std::is_trivially_copyable_v<MlpLayerRec> &&
              std::is_trivially_copyable_v<TreeNodeRec> &&
              std::is_trivially_copyable_v<MetaRec>);

/// Validated zero-copy reader over an `.armm` image. Holds only spans into
/// the caller's buffer (a durable::MappedFile or an in-memory pack_model()
/// image) — keep that buffer alive for the view's lifetime. parse() does
/// all structural and bounds validation up front (every Ref of every
/// record is checked against its pool), so accessors are unchecked reads.
class ArtifactView {
 public:
  /// Throws durable::LoadFailure on any corruption. `verify_crc` covers
  /// the per-section CRC32C sweep (on by default; structural validation
  /// always runs). The buffer must be 8-byte aligned (mmap and heap
  /// allocations both are).
  [[nodiscard]] static ArtifactView parse(std::string_view data,
                                          bool verify_crc = true);

  [[nodiscard]] const MetaRec& meta() const noexcept { return *meta_; }
  [[nodiscard]] std::span<const FamilyRec> families() const noexcept {
    return families_;
  }
  [[nodiscard]] std::span<const TemporalSlotRec> temporal_slots()
      const noexcept {
    return temporal_slots_;
  }
  [[nodiscard]] std::span<const TargetRec> targets() const noexcept {
    return targets_;
  }
  [[nodiscard]] std::span<const SpatialSlotRec> spatial_slots()
      const noexcept {
    return spatial_slots_;
  }
  [[nodiscard]] std::span<const MlpRec> mlps() const noexcept { return mlps_; }
  [[nodiscard]] std::span<const MlpLayerRec> mlp_layers() const noexcept {
    return mlp_layers_;
  }
  [[nodiscard]] std::span<const TreeNodeRec> tree_nodes() const noexcept {
    return tree_nodes_;
  }

  /// Family record by id (== index); nullptr when out of range.
  [[nodiscard]] const FamilyRec* family(std::uint32_t id) const noexcept {
    return id < families_.size() ? &families_[id] : nullptr;
  }
  /// Target record by ASN (binary search); nullptr when never attacked.
  [[nodiscard]] const TargetRec* target(net::Asn asn) const noexcept;
  /// Index of a target record within targets() (for slot lookup).
  [[nodiscard]] std::size_t target_index(const TargetRec& rec) const noexcept {
    return static_cast<std::size_t>(&rec - targets_.data());
  }

  // Typed pool reads (unchecked: parse() validated every stored Ref).
  [[nodiscard]] std::span<const double> f64(Ref ref) const noexcept {
    return pool_f64_.subspan(ref.off, ref.len);
  }
  [[nodiscard]] std::span<const float> f32(Ref ref) const noexcept {
    return pool_f32_.subspan(ref.off, ref.len);
  }
  [[nodiscard]] std::span<const std::uint32_t> u32(Ref ref) const noexcept {
    return pool_u32_.subspan(ref.off, ref.len);
  }
  [[nodiscard]] std::span<const std::int64_t> i64(Ref ref) const noexcept {
    return pool_i64_.subspan(ref.off, ref.len);
  }
  [[nodiscard]] std::string_view chars(Ref ref) const noexcept {
    return std::string_view(pool_chars_.data() + ref.off,
                            static_cast<std::size_t>(ref.len));
  }

 private:
  const MetaRec* meta_ = nullptr;
  std::span<const FamilyRec> families_;
  std::span<const TemporalSlotRec> temporal_slots_;
  std::span<const TargetRec> targets_;
  std::span<const SpatialSlotRec> spatial_slots_;
  std::span<const MlpRec> mlps_;
  std::span<const MlpLayerRec> mlp_layers_;
  std::span<const TreeNodeRec> tree_nodes_;
  std::span<const double> pool_f64_;
  std::span<const float> pool_f32_;
  std::span<const std::uint32_t> pool_u32_;
  std::span<const std::int64_t> pool_i64_;
  std::span<const char> pool_chars_;
};

/// Serializes a fitted (or loaded) AdversaryModel into a complete `.armm`
/// file image. Everything predict_next_attack touches at query time is
/// precomputed here with the exact same functions the f64 path uses
/// (extract_family_series / extract_target_series /
/// source_asn_distribution), so serving never needs the dataset or IP map.
/// Throws std::logic_error when the model is not fitted.
[[nodiscard]] std::string pack_model(const AdversaryModel& model);

}  // namespace armm
}  // namespace acbm::core
