// SSE4.2 CRC32C: the crc32 instruction implements exactly the Castagnoli
// polynomial the software table uses, so this path is bit-identical, just
// 8 bytes per instruction instead of one table lookup per byte. Compiled
// with -msse4.2 (see src/CMakeLists.txt); only selected after
// __builtin_cpu_supports("sse4.2") passes at runtime.
#include "core/durable_dispatch.h"

#if defined(__x86_64__) || defined(_M_X64)

#include <nmmintrin.h>

#include <cstring>

namespace acbm::core::durable::detail {
namespace {

std::uint32_t crc_raw(const unsigned char* data, std::size_t n,
                      std::uint32_t crc) {
  std::uint64_t state = crc;
  while (n >= 8) {
    std::uint64_t chunk;
    std::memcpy(&chunk, data, 8);
    state = _mm_crc32_u64(state, chunk);
    data += 8;
    n -= 8;
  }
  std::uint32_t crc32 = static_cast<std::uint32_t>(state);
  while (n-- > 0) {
    crc32 = _mm_crc32_u8(crc32, *data++);
  }
  return crc32;
}

}  // namespace

CrcRawFn crc32c_sse42() noexcept { return &crc_raw; }

}  // namespace acbm::core::durable::detail

#else

namespace acbm::core::durable::detail {
CrcRawFn crc32c_sse42() noexcept { return nullptr; }
}  // namespace acbm::core::durable::detail

#endif
