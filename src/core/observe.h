// Zero-cost-when-disabled observability substrate: an RAII span tracer
// (ACBM_SPAN), a process-wide metrics registry (counters / gauges /
// fixed-bucket histograms), and export sinks (Chrome trace_event JSON,
// Prometheus-style text, a human-readable profile tree). See
// OBSERVABILITY.md for naming conventions and the determinism contract.
//
// Thread-safety and cost model:
//   - Every instrumentation macro compiles to one relaxed atomic load of
//     the global enabled flag plus a branch; when the flag is off nothing
//     else runs, no memory is allocated, and no lock is taken — model
//     outputs and kernel timings are unaffected.
//   - Span events are emitted into a lock-free single-producer /
//     single-consumer ring buffer owned by the emitting thread (producer)
//     and drained by Tracer::collect() (consumer). A full ring drops the
//     event and counts the drop; it never blocks the producer.
//   - Counters and histograms use relaxed atomics and may be updated from
//     any thread; Metrics::instance() registration takes a mutex but every
//     macro caches the returned reference in a function-local static, so
//     the registry lock is paid once per call site, not per update.
//   - Registered metrics are never erased, so references returned by
//     counter()/gauge()/histogram() stay valid for the process lifetime.
//   - Tracer::reset() / Metrics::reset() require quiescence: call them only
//     while no instrumented code is running (tests do this between cases).
//
// This is the bottom layer of the library (below acbm_robust); it must not
// include any other acbm header.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace acbm::core::observe {

// --- Master switch --------------------------------------------------------

namespace detail {
extern std::atomic<bool> g_enabled;
}  // namespace detail

/// True when instrumentation is collecting. Relaxed load: this is the only
/// cost an instrumented call site pays when observability is off.
[[nodiscard]] inline bool enabled() noexcept {
  return detail::g_enabled.load(std::memory_order_relaxed);
}

/// Turns collection on/off process-wide (the CLI flips this for
/// --trace/--metrics/--profile). Safe to call at any time; spans that are
/// already open keep recording so the stack stays balanced.
void set_enabled(bool on) noexcept;

// --- Metrics registry -----------------------------------------------------

/// Monotonic event count. add() is wait-free and may race freely.
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-writer-wins instantaneous value (e.g. queue depth).
class Gauge {
 public:
  void set(double v) noexcept { value_.store(v, std::memory_order_relaxed); }
  [[nodiscard]] double value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram. A sample lands in the first bucket whose upper
/// bound is >= the value (Prometheus `le` semantics); values above every
/// bound land in the implicit +Inf bucket. observe() is lock-free.
class Histogram {
 public:
  /// `upper_bounds` must be strictly increasing and non-empty.
  explicit Histogram(std::vector<double> upper_bounds);

  void observe(double value) noexcept;

  [[nodiscard]] const std::vector<double>& bounds() const noexcept {
    return bounds_;
  }
  /// Per-bucket (non-cumulative) counts; the last entry is the +Inf bucket.
  [[nodiscard]] std::vector<std::uint64_t> bucket_counts() const;
  [[nodiscard]] std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] double sum() const noexcept {
    return sum_.load(std::memory_order_relaxed);
  }
  void reset() noexcept;

 private:
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> buckets_;  // bounds+1 slots.
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// Default histogram bounds for millisecond latencies.
[[nodiscard]] std::vector<double> default_latency_bounds_ms();

/// Process-wide metric registry. Lookup registers on first use; names are
/// dot-separated paths (see OBSERVABILITY.md for the inventory).
class Metrics {
 public:
  static Metrics& instance();

  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  /// Empty `upper_bounds` selects default_latency_bounds_ms(). Bounds are
  /// fixed by the first registration; later calls ignore the argument.
  Histogram& histogram(std::string_view name,
                       std::span<const double> upper_bounds = {});

  /// Current value of a counter, 0 when it was never registered.
  [[nodiscard]] std::uint64_t counter_value(std::string_view name) const;

  /// Every registered counter and its current value, sorted by name.
  /// Deterministic; used to ship a worker process's counters to the
  /// coordinator for aggregation (core/shard.h).
  [[nodiscard]] std::vector<std::pair<std::string, std::uint64_t>>
  counters_snapshot() const;

  /// One-shot Prometheus text-exposition dump (acbm_ prefix, dots become
  /// underscores, counters get _total). Deterministic: sorted by name.
  void write_prometheus(std::ostream& os) const;

  /// Zeroes every value but keeps registrations (cached references held by
  /// call sites stay valid). Requires quiescence.
  void reset();

 private:
  Metrics() = default;

  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

// --- Span tracer ----------------------------------------------------------

/// One closed span, as drained from a ring. `seq` is a process-global
/// span-open sequence number: sorting events by seq reproduces the exact
/// open order, which is the deterministic merge key across threads.
struct SpanEvent {
  std::uint64_t seq = 0;       ///< 1-based open-order id (0 = "no span").
  std::uint64_t parent = 0;    ///< seq of the enclosing span, 0 for roots.
  std::uint32_t thread = 0;    ///< Tracer registration index of the thread.
  const char* name = nullptr;  ///< Static string from the ACBM_SPAN site.
  std::string tags;            ///< "k=v,..." from ACBM_SPAN_KV; may be empty.
  std::int64_t start_ns = 0;   ///< Open time (steady clock, ns).
  std::int64_t wall_ns = 0;    ///< Wall-clock duration.
  std::int64_t cpu_ns = 0;     ///< Thread CPU duration (0 if unsupported).
};

/// Lock-free single-producer/single-consumer ring of span events. The
/// owning thread pushes, Tracer::collect() drains; a full ring drops the
/// newest event and counts it. Capacity is rounded up to a power of two.
class SpanRing {
 public:
  static constexpr std::size_t kDefaultCapacity = std::size_t{1} << 13;

  explicit SpanRing(std::size_t capacity = kDefaultCapacity);

  /// Producer side. Returns false (and counts a drop) when full.
  bool push(SpanEvent&& event) noexcept;
  /// Consumer side: appends every pending event to `out` in push order.
  std::size_t drain(std::vector<SpanEvent>& out);

  [[nodiscard]] std::uint64_t dropped() const noexcept {
    return dropped_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::size_t capacity() const noexcept { return slots_.size(); }
  /// Requires quiescence (no concurrent push).
  void clear();

 private:
  std::vector<SpanEvent> slots_;
  std::size_t mask_;
  std::atomic<std::uint64_t> head_{0};  // Next write position (producer).
  std::atomic<std::uint64_t> tail_{0};  // Next read position (consumer).
  std::atomic<std::uint64_t> dropped_{0};
};

/// Owns one SpanRing per registered thread and merges them on collect().
/// Rings are created on a thread's first span and never freed before
/// process exit, so producers never race a deallocation.
class Tracer {
 public:
  static Tracer& instance();

  /// Drains every ring and returns all events accumulated since the last
  /// collect()/reset(), sorted by seq (deterministic span-open order).
  /// Spans still open are not included. Consuming: a second collect()
  /// returns only newer events.
  [[nodiscard]] std::vector<SpanEvent> collect();

  /// Total events dropped across all rings since the last reset().
  [[nodiscard]] std::uint64_t dropped() const;

  /// Drops all collected/pending events and restarts the seq counter.
  /// Requires quiescence (no spans open, no instrumented code running).
  void reset();

  /// The calling thread's ring and registration index (registering the
  /// thread on first use). Used by Span; not part of the public surface.
  struct ThreadSlot {
    SpanRing* ring = nullptr;
    std::uint32_t index = 0;
  };
  [[nodiscard]] ThreadSlot local_slot();

 private:
  Tracer() = default;

  mutable std::mutex mutex_;
  std::vector<std::unique_ptr<SpanRing>> rings_;
  std::vector<SpanEvent> drained_;
};

/// The seq of the innermost span open on this thread (0 when none). Used
/// by the thread pool to carry the submitting thread's span across to its
/// workers so the span tree is identical at any thread count.
[[nodiscard]] std::uint64_t current_span() noexcept;

/// Pushes an inherited parent span onto this thread's span stack for the
/// current scope (see current_span()). Cheap and always-on: a thread_local
/// vector push/pop, taken once per pool task, never per index.
class ScopedParent {
 public:
  explicit ScopedParent(std::uint64_t parent_seq);
  ~ScopedParent();
  ScopedParent(const ScopedParent&) = delete;
  ScopedParent& operator=(const ScopedParent&) = delete;
};

/// RAII span. Open/close must happen on the same thread (keep instances
/// stack-local; never move one across threads). When observability is
/// disabled at construction the span records nothing.
class Span {
 public:
  explicit Span(const char* name) {
    if (enabled()) open(name, {});
  }
  Span(const char* name, std::string tags) {
    if (enabled()) open(name, std::move(tags));
  }
  ~Span() {
    if (seq_ != 0) close();
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  void open(const char* name, std::string tags);
  void close() noexcept;

  const char* name_ = nullptr;
  std::string tags_;
  std::uint64_t seq_ = 0;
  std::uint64_t parent_ = 0;
  std::int64_t start_wall_ = 0;
  std::int64_t start_cpu_ = 0;
};

// --- Export sinks ---------------------------------------------------------

/// Chrome trace_event JSON ("X" complete events, microsecond timestamps
/// rebased to the earliest span). Loads in chrome://tracing and Perfetto.
void write_chrome_trace(std::ostream& os, std::span<const SpanEvent> events);

/// One node of the merged span tree: spans with the same root-to-node name
/// path are aggregated (count + summed wall/CPU time). For a fixed input
/// and ACBM_FAULTS spec the set of (path, count) pairs is identical at any
/// ACBM_THREADS — this is the determinism contract tests pin down.
struct SpanAggregate {
  std::string path;  ///< "/"-joined names from the root.
  std::string name;  ///< Leaf name (last path component).
  int depth = 0;
  std::uint64_t count = 0;
  std::int64_t wall_ns = 0;
  std::int64_t cpu_ns = 0;
};

/// Merges events into the aggregated span tree, depth-first, children in
/// lexicographic name order. Events whose parent is absent (still open or
/// dropped) are treated as roots.
[[nodiscard]] std::vector<SpanAggregate> aggregate_spans(
    std::span<const SpanEvent> events);

/// Human-readable profile tree (the --profile sink): one line per
/// aggregate with wall ms, CPU ms, and count, plus a drop summary.
void write_profile(std::ostream& os, std::span<const SpanEvent> events,
                   std::uint64_t dropped = 0);

// --- Instrumentation macros -----------------------------------------------

#define ACBM_OBS_CONCAT_INNER(a, b) a##b
#define ACBM_OBS_CONCAT(a, b) ACBM_OBS_CONCAT_INNER(a, b)

/// Opens a span for the rest of the enclosing scope. `name` must be a
/// string literal (it is stored by pointer).
#define ACBM_SPAN(name)                                       \
  ::acbm::core::observe::Span ACBM_OBS_CONCAT(acbm_obs_span_, \
                                              __LINE__)(name)

/// Span with tags; the tag expression (any std::string) is only evaluated
/// when observability is enabled.
#define ACBM_SPAN_KV(name, kv)                                           \
  ::acbm::core::observe::Span ACBM_OBS_CONCAT(acbm_obs_span_, __LINE__)( \
      name, ::acbm::core::observe::enabled() ? (kv) : ::std::string())

/// Adds `n` to the named counter. `name` must be a string literal: the
/// registry reference is cached in a function-local static so the steady
/// state is one relaxed load, one branch, one relaxed fetch_add.
#define ACBM_COUNT(name, n)                                             \
  do {                                                                  \
    if (::acbm::core::observe::enabled()) {                             \
      static ::acbm::core::observe::Counter& ACBM_OBS_CONCAT(           \
          acbm_obs_counter_, __LINE__) =                                \
          ::acbm::core::observe::Metrics::instance().counter(name);     \
      ACBM_OBS_CONCAT(acbm_obs_counter_, __LINE__)                      \
          .add(static_cast<std::uint64_t>(n));                          \
    }                                                                   \
  } while (0)

/// Sets the named gauge to `v` (same caching pattern as ACBM_COUNT).
#define ACBM_GAUGE_SET(name, v)                                         \
  do {                                                                  \
    if (::acbm::core::observe::enabled()) {                             \
      static ::acbm::core::observe::Gauge& ACBM_OBS_CONCAT(             \
          acbm_obs_gauge_, __LINE__) =                                  \
          ::acbm::core::observe::Metrics::instance().gauge(name);       \
      ACBM_OBS_CONCAT(acbm_obs_gauge_, __LINE__)                        \
          .set(static_cast<double>(v));                                 \
    }                                                                   \
  } while (0)

/// Records `v` in the named histogram (default latency buckets).
#define ACBM_HISTOGRAM(name, v)                                         \
  do {                                                                  \
    if (::acbm::core::observe::enabled()) {                             \
      static ::acbm::core::observe::Histogram& ACBM_OBS_CONCAT(         \
          acbm_obs_hist_, __LINE__) =                                   \
          ::acbm::core::observe::Metrics::instance().histogram(name);   \
      ACBM_OBS_CONCAT(acbm_obs_hist_, __LINE__)                         \
          .observe(static_cast<double>(v));                             \
    }                                                                   \
  } while (0)

}  // namespace acbm::core::observe
