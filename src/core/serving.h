// Immutable shared inference view over a zero-copy .armm artifact
// (core/artifact_map.h), split from the fitting-side AdversaryModel.
//
// A ServingModel wraps a parsed ArtifactView plus the mapping (or owned
// image) that backs it. It is immutable after construction and safe to
// share across threads: predict() touches only const mapped state plus a
// thread_local scratch arena, so one model instance serves any number of
// concurrent callers with zero synchronization.
//
// Numeric contract: predict() mirrors AdversaryModel::predict_next_attack
// on a freshly loaded model (no live observations) operation for
// operation. The f64 path is byte-identical to the batch CLI; the f32 path
// is byte-identical to the InferenceView (--precision f32) path. The
// serving tests assert both across every target of a fitted model.
#pragma once

#include <cstdint>
#include <filesystem>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/artifact_map.h"
#include "core/durable.h"
#include "core/inference.h"
#include "core/pipeline.h"

namespace acbm::core {

class ServingModel {
 public:
  ServingModel() = default;

  /// Maps an .armm artifact and validates it in place (O(µs) startup plus
  /// the optional CRC sweep); no deserialization, no allocation
  /// proportional to model size. Throws durable::LoadFailure on
  /// corruption.
  [[nodiscard]] static ServingModel map_file(const std::filesystem::path& path,
                                             bool verify_crc = true);

  /// Parses an in-memory image (copied into an owned 8-byte-aligned
  /// buffer). For tests and for models packed on the fly.
  [[nodiscard]] static ServingModel from_image(std::string_view image);

  /// Loads either format: .armm artifacts map directly; framed model.art
  /// artifacts are mapped (durable::load_framed_view), deserialized, and
  /// packed in memory. The daemon uses this as its .art fallback path.
  [[nodiscard]] static ServingModel load_any(const std::filesystem::path& path);

  [[nodiscard]] bool loaded() const noexcept { return loaded_; }

  /// Next-attack forecast for one target, mirroring
  /// AdversaryModel::predict_next_attack (f64) / the InferenceView path
  /// (f32). Returns nullopt for targets with no attack history.
  /// Thread-safe; uses thread_local scratch only.
  [[nodiscard]] std::optional<AttackPrediction> predict(
      net::Asn target_asn, Precision precision = Precision::kF64) const;

  /// All target ASNs in the artifact, ascending.
  [[nodiscard]] std::vector<net::Asn> targets() const;
  [[nodiscard]] bool has_target(net::Asn asn) const noexcept {
    return view_.target(asn) != nullptr;
  }

  [[nodiscard]] std::string_view family_name(std::uint32_t family) const;
  [[nodiscard]] trace::EpochSeconds window_start() const noexcept;
  [[nodiscard]] const armm::ArtifactView& view() const noexcept {
    return view_;
  }
  /// Size in bytes of the backing image / mapping.
  [[nodiscard]] std::size_t image_size() const noexcept;
  /// The raw .armm image bytes backing this model (mapping or owned
  /// buffer); valid while the model is alive. `acbm pack` writes this.
  [[nodiscard]] std::string_view image() const noexcept;

 private:
  durable::MappedFile file_;            ///< map_file path.
  std::vector<std::uint64_t> image_;    ///< from_image path (aligned).
  std::size_t image_bytes_ = 0;
  armm::ArtifactView view_;
  bool loaded_ = false;
};

}  // namespace acbm::core
