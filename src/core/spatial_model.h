// The spatial model (§V): per-target-network (AS-level) nonlinear
// autoregression. Durations, launch hours, and inter-launch intervals of
// the attacks on one target are modeled by NAR networks (Eq. 6-7, tanh
// hidden layer, grid-searched delays/hidden nodes); the attacker source-AS
// distribution is modeled per source AS and renormalized (Fig. 2).
#pragma once

#include <cstddef>
#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "core/features.h"
#include "core/robust.h"
#include "nn/grid_search.h"
#include "nn/nar.h"
#include "ts/arima.h"

namespace acbm::core {

enum class SpatialSeries {
  kDuration,  ///< T^d.
  kInterval,  ///< Time between attacks on this target.
  kHour,      ///< Launch hour.
};
inline constexpr std::size_t kSpatialSeriesCount = 3;

struct SpatialModelOptions {
  /// Grid-search delays and hidden nodes per series (§V-A); when false the
  /// fixed NAR settings below are used (DESIGN.md ablation #2).
  bool grid_search = true;
  nn::NarGridOptions grid;
  nn::NarOptions fixed;
  /// Series shorter than this are modeled by their mean.
  std::size_t min_fit_length = 20;
  /// NAR fit attempts before falling to the AR rung; attempts beyond the
  /// first reseed the network init from a substream of the base seed.
  std::size_t max_fit_attempts = 2;
  /// Source-AS distribution: shares tracked for the most common ASes; the
  /// rest aggregate into an "other" bucket.
  std::size_t top_source_ases = 32;
  /// Recency weight of the share predictor's EWMA component.
  double share_smoothing = 0.2;
  /// Blend between the recency EWMA (this weight) and the historical mean
  /// share (the remainder): robust when sources are stable, adaptive when
  /// the botmaster rotates the pool.
  double share_recency_blend = 0.45;

  SpatialModelOptions() {
    // Spatial series are short (per-target); keep candidate networks small
    // and training fast.
    grid.delay_grid = {1, 2, 3};
    grid.hidden_grid = {2, 4};
    grid.mlp.max_epochs = 150;
    grid.mlp.hidden_layers = {4};
    fixed.delays = 2;
    fixed.hidden_nodes = 4;
    fixed.mlp.max_epochs = 150;
  }
};

/// Per-target spatial model.
class SpatialModel {
 public:
  SpatialModel() = default;
  explicit SpatialModel(SpatialModelOptions opts) : opts_(std::move(opts)) {}

  /// Fits on a target's training series; also learns the source-AS share
  /// dynamics from the same attacks.
  void fit(const TargetSeries& train, const trace::Dataset& dataset,
           const net::IpToAsnMap& ip_map);

  [[nodiscard]] bool fitted() const noexcept { return fitted_; }
  [[nodiscard]] net::Asn target_asn() const noexcept { return asn_; }

  /// Causal one-step predictions over a full (train+test) series.
  [[nodiscard]] std::vector<double> one_step_predictions(
      SpatialSeries which, std::span<const double> full_series,
      std::size_t start) const;

  [[nodiscard]] double forecast_next(SpatialSeries which,
                                     std::span<const double> history) const;

  /// Predicted source-AS distribution of the target's next attack, given the
  /// distributions of the attacks observed so far (chronological). The
  /// result is normalized; the unattributed remainder appears under ASN 0.
  [[nodiscard]] std::unordered_map<net::Asn, double> predict_source_distribution(
      std::span<const std::unordered_map<net::Asn, double>> history) const;

  /// The ASes whose shares the model tracks (fitted order, most common
  /// first).
  [[nodiscard]] const std::vector<net::Asn>& tracked_ases() const noexcept {
    return tracked_ases_;
  }

  /// Share-predictor weights (persisted by save(); serving-artifact
  /// extraction mirrors predict_source_distribution with them).
  [[nodiscard]] double share_smoothing() const noexcept {
    return opts_.share_smoothing;
  }
  [[nodiscard]] double share_recency_blend() const noexcept {
    return opts_.share_recency_blend;
  }

  /// The degradation-ladder rung the series landed on:
  /// NAR -> NAR retry (perturbed init) -> AR(1) -> mean.
  [[nodiscard]] FitRung rung(SpatialSeries which) const;

  /// Inference-extraction accessors (core::InferenceView): the fitted
  /// models and fallback mean of a series' degradation slot.
  [[nodiscard]] const std::optional<nn::NarModel>& nar(
      SpatialSeries which) const;
  [[nodiscard]] const std::optional<ts::ArimaModel>& ar(
      SpatialSeries which) const;
  [[nodiscard]] double fallback_mean(SpatialSeries which) const;

  /// One record per series from the last fit() (not serialized).
  [[nodiscard]] const FitReport& fit_report() const noexcept {
    return report_;
  }

  /// Text serialization of the fitted state (prediction-relevant options
  /// are persisted; fitting options reset to defaults on load).
  void save(std::ostream& os) const;
  [[nodiscard]] static SpatialModel load(std::istream& is);

  /// Framed (v3) serialization: the v2 body wrapped in durable.h's
  /// magic/version/CRC32C envelope. load_framed also accepts legacy bare
  /// v2 streams; corruption throws a typed durable::LoadFailure.
  void save_framed(std::ostream& os) const;
  [[nodiscard]] static SpatialModel load_framed(std::istream& is);

 private:
  struct SeriesModel {
    std::optional<nn::NarModel> nar;     ///< kNar / kNarRetry rungs.
    std::optional<ts::ArimaModel> ar;    ///< kAr rung.
    double fallback_mean = 0.0;
    FitRung rung = FitRung::kMean;
    FitRecord record;  ///< Staged per-series, merged in index order by fit().
  };

  void fit_one(SpatialSeries which, std::span<const double> series);
  [[nodiscard]] const SeriesModel& series_model(SpatialSeries which) const;

  SpatialModelOptions opts_;
  net::Asn asn_ = 0;
  std::vector<SeriesModel> models_{kSpatialSeriesCount};
  std::vector<net::Asn> tracked_ases_;
  FitReport report_;
  bool fitted_ = false;
};

}  // namespace acbm::core
