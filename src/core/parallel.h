// The parallel execution runtime: a fixed-size thread pool and the
// deterministic fan-out primitives (`parallel_for`, `parallel_map`) the hot
// paths build on — NAR grid search, per-target/per-family model fits,
// evaluation sweeps, trace generation, and the blocked matrix multiply.
//
// Determinism contract: every parallelized call site partitions its work by
// index, writes results into index-addressed slots, and reduces them in
// index order, so the output is bit-identical regardless of thread count.
// Stochastic tasks draw from per-task Rng substreams
// (stats::substream_seed) instead of a shared stream. `ACBM_THREADS=1`
// forces the serial path for debugging; `ACBM_THREADS=N` pins the pool
// size; unset defaults to std::thread::hardware_concurrency().
//
// This header lives under core/ but is a dependency-free base layer (its
// own CMake target, acbm_parallel) so stats/nn/trace can use it without a
// layering cycle.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <type_traits>
#include <vector>

namespace acbm::core {

/// A fixed-size worker pool with a shared task queue. Construction spawns
/// the workers; destruction drains nothing — it stops accepting work, wakes
/// every worker, and joins them (pending batches must finish first via
/// for_each_index, which blocks until its own work completes).
class ThreadPool {
 public:
  /// Spawns `threads` workers (clamped to at least 1).
  explicit ThreadPool(std::size_t threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t size() const noexcept { return workers_.size(); }

  /// Runs fn(i) for every i in [begin, end), distributing index chunks of
  /// `grain` across the workers, and blocks until all indices complete.
  /// If invocations throw, the exception from the lowest throwing index is
  /// rethrown here (remaining chunks are abandoned once a failure is seen).
  /// Called from a worker thread of any pool, it degrades to a serial
  /// inline loop — nested fan-out cannot deadlock.
  void for_each_index(std::size_t begin, std::size_t end,
                      const std::function<void(std::size_t)>& fn,
                      std::size_t grain = 1);

  /// True when the calling thread is a worker of any ThreadPool.
  [[nodiscard]] static bool on_worker_thread() noexcept;

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::mutex mutex_;
  std::condition_variable cv_;
  std::queue<std::function<void()>> tasks_;
  bool stop_ = false;
};

/// Thread count the shared runtime fans out to. Resolution order: the
/// set_num_threads() override, the ACBM_THREADS environment variable, then
/// std::thread::hardware_concurrency() (floor 1).
[[nodiscard]] std::size_t num_threads();

/// Overrides the shared thread count (0 restores automatic resolution).
/// Takes effect on the next parallel_for; the shared pool is rebuilt
/// lazily. Not safe to call concurrently with an active parallel_for.
void set_num_threads(std::size_t n);

/// Runs fn(i) for i in [begin, end) on the shared pool. Serial inline when
/// the resolved thread count is 1, the range has a single index, or the
/// caller is already a pool worker (nested fan-out). Exceptions propagate
/// as in ThreadPool::for_each_index.
void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& fn,
                  std::size_t grain = 1);

/// Ordered map: returns {fn(0), ..., fn(n-1)} with out[i] written only by
/// the task that owns index i, so a subsequent index-order reduction is
/// deterministic regardless of thread count. The result type must be
/// default-constructible (wrap in std::optional otherwise).
template <typename F>
auto parallel_map(std::size_t n, F&& fn) {
  using R = std::decay_t<std::invoke_result_t<F&, std::size_t>>;
  static_assert(std::is_default_constructible_v<R>,
                "parallel_map: result must be default-constructible");
  std::vector<R> out(n);
  parallel_for(0, n, [&](std::size_t i) { out[i] = fn(i); });
  return out;
}

}  // namespace acbm::core
