// IP address space: CIDR prefix allocation per AS and longest-prefix-match
// IP -> ASN resolution. Substitutes the paper's commercial whois-based
// mapping dataset (§V-A) with a ground-truth-by-construction equivalent.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <optional>
#include <unordered_map>
#include <vector>

#include "net/as_graph.h"
#include "net/ipv4.h"
#include "stats/rng.h"

namespace acbm::net {

/// Immutable longest-prefix-match table from CIDR prefixes to ASNs.
class IpToAsnMap {
 public:
  IpToAsnMap() = default;

  /// Builds the table; overlapping prefixes are allowed (longest wins).
  /// Throws std::invalid_argument if two identical prefixes map to
  /// different ASNs.
  explicit IpToAsnMap(std::vector<std::pair<Prefix, Asn>> entries);

  /// Resolves an address; nullopt when no prefix covers it.
  [[nodiscard]] std::optional<Asn> lookup(Ipv4 addr) const;

  [[nodiscard]] std::size_t prefix_count() const noexcept {
    return entries_.size();
  }

  /// All prefixes announced by an AS.
  [[nodiscard]] std::vector<Prefix> prefixes_of(Asn asn) const;

  /// Total number of addresses covered by an AS's prefixes (the paper's
  /// N_{AS_j} denominator in Eq. 4).
  [[nodiscard]] std::uint64_t address_count(Asn asn) const;

  /// Text serialization: one "prefix,asn" line per entry.
  void save(std::ostream& os) const;
  [[nodiscard]] static IpToAsnMap load(std::istream& is);

 private:
  struct Entry {
    Prefix prefix;
    Asn asn = 0;
  };
  // Sorted by (network, -length) so lower_bound + backward scan finds the
  // longest match.
  std::vector<Entry> entries_;
  std::unordered_map<Asn, std::uint64_t> sizes_;
};

struct AllocationOptions {
  /// Prefix length for each allocated block.
  std::uint8_t prefix_length = 20;
  /// Blocks per AS are 1 + Zipf(rank, skew): big ASes get more space.
  double size_skew = 1.0;
  std::size_t max_blocks_per_as = 8;
  /// First octet of the allocation pool (blocks are carved sequentially).
  std::uint8_t pool_first_octet = 10;
};

/// Carves non-overlapping blocks out of a pool and assigns them to the ASes
/// of a graph; ASes with higher degree receive more blocks. Deterministic
/// given the rng state.
[[nodiscard]] IpToAsnMap allocate_address_space(const AsGraph& graph,
                                                const AllocationOptions& opts,
                                                acbm::stats::Rng& rng);

}  // namespace acbm::net
