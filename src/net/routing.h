// Valley-free (policy-compliant) route computation: the BGP export rules
// "customer routes go to everyone; peer/provider routes go only to
// customers" with the standard preference customer > peer > provider and
// shortest-AS-path tie-breaking. Produces the AS paths that (a) feed Gao
// relationship inference and (b) define the inter-AS hop distances of the
// paper's A^s feature (Eq. 4).
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "net/as_graph.h"

namespace acbm::net {

/// How the best route was learned, which encodes its export policy.
enum class RouteClass : std::uint8_t { kCustomer, kPeer, kProvider };

struct Route {
  std::vector<Asn> path;  ///< source first, destination last.
  RouteClass learned = RouteClass::kCustomer;

  [[nodiscard]] std::size_t hops() const noexcept { return path.size() - 1; }
};

/// Computes best valley-free routes toward single destinations.
class RouteComputer {
 public:
  /// The graph must outlive the computer.
  explicit RouteComputer(const AsGraph& graph) : graph_(&graph) {}

  /// Best route from every AS that can reach `dest` (dest itself maps to the
  /// trivial route). Throws std::invalid_argument for an unknown dest.
  [[nodiscard]] std::unordered_map<Asn, Route> routes_to(Asn dest) const;

 private:
  const AsGraph* graph_;
};

/// Routing-table dump: the best path from each vantage AS to every other AS.
/// This is the Route Views-style input Gao inference consumes.
[[nodiscard]] std::vector<std::vector<Asn>> dump_paths(
    const AsGraph& graph, const std::vector<Asn>& vantage_points);

/// Valley-free hop-distance oracle with per-destination caching.
/// distance(a, b) follows the policy-preferred route from a to b.
class ValleyFreeDistance {
 public:
  explicit ValleyFreeDistance(const AsGraph& graph) : computer_(graph) {}

  /// Hops from `from` to `to`; nullopt when unreachable or unknown.
  [[nodiscard]] std::optional<std::size_t> distance(Asn from, Asn to);

  [[nodiscard]] std::size_t cached_destinations() const noexcept {
    return cache_.size();
  }

 private:
  RouteComputer computer_;
  std::unordered_map<Asn, std::unordered_map<Asn, Route>> cache_;
};

}  // namespace acbm::net
