#include "net/ipv4.h"

#include <charconv>
#include <stdexcept>

namespace acbm::net {

std::string Ipv4::to_string() const {
  std::string out;
  out.reserve(15);
  for (int shift = 24; shift >= 0; shift -= 8) {
    out += std::to_string((value >> shift) & 0xFF);
    if (shift > 0) out += '.';
  }
  return out;
}

Ipv4 parse_ipv4(std::string_view text) {
  std::uint32_t value = 0;
  const char* ptr = text.data();
  const char* end = text.data() + text.size();
  for (int octet = 0; octet < 4; ++octet) {
    unsigned int part = 0;
    const auto [next, ec] = std::from_chars(ptr, end, part);
    if (ec != std::errc{} || part > 255 || next == ptr) {
      throw std::invalid_argument("parse_ipv4: malformed address");
    }
    value = (value << 8) | part;
    ptr = next;
    if (octet < 3) {
      if (ptr == end || *ptr != '.') {
        throw std::invalid_argument("parse_ipv4: malformed address");
      }
      ++ptr;
    }
  }
  if (ptr != end) throw std::invalid_argument("parse_ipv4: trailing characters");
  return Ipv4(value);
}

Prefix::Prefix(Ipv4 net, std::uint8_t len) : length(len) {
  if (len > 32) throw std::invalid_argument("Prefix: length > 32");
  const std::uint32_t mask =
      len == 0 ? 0 : (~std::uint32_t{0} << (32 - len));
  network = Ipv4(net.value & mask);
}

bool Prefix::contains(Ipv4 addr) const noexcept {
  const std::uint32_t mask =
      length == 0 ? 0 : (~std::uint32_t{0} << (32 - length));
  return (addr.value & mask) == network.value;
}

Ipv4 Prefix::last() const noexcept {
  const std::uint32_t host_bits =
      length == 32 ? 0 : (~std::uint32_t{0} >> length);
  return Ipv4(network.value | host_bits);
}

std::string Prefix::to_string() const {
  return network.to_string() + "/" + std::to_string(length);
}

Prefix parse_prefix(std::string_view text) {
  const auto slash = text.find('/');
  if (slash == std::string_view::npos) {
    throw std::invalid_argument("parse_prefix: missing '/'");
  }
  const Ipv4 net = parse_ipv4(text.substr(0, slash));
  const std::string_view len_text = text.substr(slash + 1);
  unsigned int len = 0;
  const auto [next, ec] =
      std::from_chars(len_text.data(), len_text.data() + len_text.size(), len);
  if (ec != std::errc{} || len > 32 ||
      next != len_text.data() + len_text.size()) {
    throw std::invalid_argument("parse_prefix: malformed length");
  }
  return Prefix(net, static_cast<std::uint8_t>(len));
}

}  // namespace acbm::net
