// IPv4 address representation and parsing. Bot source addresses in the trace
// are IPv4; the IP->ASN mapper (ip_space.h) works on this representation.
#pragma once

#include <compare>
#include <cstdint>
#include <string>
#include <string_view>

namespace acbm::net {

/// An IPv4 address as a host-order 32-bit integer with value semantics.
struct Ipv4 {
  std::uint32_t value = 0;

  constexpr Ipv4() = default;
  constexpr explicit Ipv4(std::uint32_t v) : value(v) {}
  constexpr Ipv4(std::uint8_t a, std::uint8_t b, std::uint8_t c, std::uint8_t d)
      : value((std::uint32_t{a} << 24) | (std::uint32_t{b} << 16) |
              (std::uint32_t{c} << 8) | std::uint32_t{d}) {}

  auto operator<=>(const Ipv4&) const = default;

  [[nodiscard]] std::string to_string() const;
};

/// Parses dotted-quad notation ("192.0.2.1").
/// Throws std::invalid_argument on malformed input.
[[nodiscard]] Ipv4 parse_ipv4(std::string_view text);

/// A CIDR prefix (network address + length). The network address is
/// canonicalized (host bits zeroed) on construction.
struct Prefix {
  Ipv4 network;
  std::uint8_t length = 0;

  Prefix() = default;

  /// Throws std::invalid_argument if length > 32.
  Prefix(Ipv4 net, std::uint8_t len);

  [[nodiscard]] bool contains(Ipv4 addr) const noexcept;
  [[nodiscard]] Ipv4 first() const noexcept { return network; }
  [[nodiscard]] Ipv4 last() const noexcept;
  [[nodiscard]] std::uint64_t size() const noexcept {
    return std::uint64_t{1} << (32 - length);
  }
  [[nodiscard]] std::string to_string() const;

  friend bool operator==(const Prefix&, const Prefix&) = default;
};

/// Parses "a.b.c.d/len". Throws std::invalid_argument on malformed input.
[[nodiscard]] Prefix parse_prefix(std::string_view text);

}  // namespace acbm::net
