#include "net/as_graph.h"

#include <stdexcept>
#include <unordered_set>

namespace acbm::net {

void AsGraph::add_as(Asn asn) {
  const auto [it, inserted] = adj_.try_emplace(asn);
  if (inserted) order_.push_back(asn);
}

void AsGraph::add_edge(Asn from, Asn to, LinkType type) {
  if (from == to) throw std::invalid_argument("AsGraph::add_edge: self-loop");
  add_as(from);
  add_as(to);
  const auto upsert = [this](Asn a, Asn b, LinkType t) {
    for (Link& link : adj_[a]) {
      if (link.neighbor == b) {
        link.type = t;
        return false;
      }
    }
    adj_[a].push_back({b, t});
    return true;
  };
  const bool inserted = upsert(from, to, type);
  upsert(to, from, reverse(type));
  if (inserted) ++edge_count_;
}

bool AsGraph::contains(Asn asn) const { return adj_.contains(asn); }

std::span<const Link> AsGraph::links(Asn asn) const {
  const auto it = adj_.find(asn);
  if (it == adj_.end()) return {};
  return it->second;
}

std::optional<LinkType> AsGraph::link_type(Asn from, Asn to) const {
  for (const Link& link : links(from)) {
    if (link.neighbor == to) return link.type;
  }
  return std::nullopt;
}

bool AsGraph::connected() const {
  if (order_.empty()) return true;
  std::unordered_set<Asn> seen{order_.front()};
  std::vector<Asn> stack{order_.front()};
  while (!stack.empty()) {
    const Asn cur = stack.back();
    stack.pop_back();
    for (const Link& link : links(cur)) {
      if (seen.insert(link.neighbor).second) stack.push_back(link.neighbor);
    }
  }
  return seen.size() == order_.size();
}

bool AsGraph::customer_hierarchy_acyclic() const {
  // Iterative three-color DFS over provider->customer edges.
  enum class Color : std::uint8_t { kWhite, kGray, kBlack };
  std::unordered_map<Asn, Color> color;
  color.reserve(order_.size());
  for (Asn asn : order_) color[asn] = Color::kWhite;

  struct Frame {
    Asn asn;
    std::size_t next_link = 0;
  };
  for (Asn root : order_) {
    if (color[root] != Color::kWhite) continue;
    std::vector<Frame> stack{{root}};
    color[root] = Color::kGray;
    while (!stack.empty()) {
      Frame& frame = stack.back();
      const std::span<const Link> nbrs = links(frame.asn);
      bool descended = false;
      while (frame.next_link < nbrs.size()) {
        const Link& link = nbrs[frame.next_link++];
        if (link.type != LinkType::kCustomer) continue;
        const Color c = color[link.neighbor];
        if (c == Color::kGray) return false;  // Back edge: cycle.
        if (c == Color::kWhite) {
          color[link.neighbor] = Color::kGray;
          stack.push_back({link.neighbor});
          descended = true;
          break;
        }
      }
      if (!descended && (stack.empty() || &stack.back() == &frame)) {
        color[frame.asn] = Color::kBlack;
        stack.pop_back();
      }
    }
  }
  return true;
}

}  // namespace acbm::net
