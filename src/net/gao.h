// Gao's AS relationship inference algorithm (L. Gao, "On inferring
// autonomous system relationships in the Internet", 2001) — the paper
// (§IV-A3) builds its inter-AS distance tool on this algorithm, fed with
// Route Views routing tables. Given a set of AS paths, each path is split at
// its highest-degree AS into an uphill and a downhill segment; transit-pair
// counts then classify each adjacent pair as provider-customer, sibling, or
// (for edges bridging the top of a path without transit evidence) peering.
#pragma once

#include <cstddef>
#include <vector>

#include "net/as_graph.h"

namespace acbm::net {

struct GaoOptions {
  /// Both directions observed more than this many times => siblings.
  std::size_t sibling_threshold = 1;
  /// Degree-ratio bound for peering candidates (Gao's R parameter): an edge
  /// may be reclassified as peering only if the endpoint degrees differ by
  /// less than this factor.
  double peer_degree_ratio = 60.0;
  /// Peering requires both endpoints to have at least this observed degree:
  /// single-homed stubs adjacent to the top of short paths would otherwise
  /// be indistinguishable from small peers.
  std::size_t peer_min_degree = 4;
};

struct GaoResult {
  /// The inferred relationship graph over all ASes seen in the paths.
  AsGraph graph;
  std::size_t provider_customer_edges = 0;
  std::size_t peer_edges = 0;
  std::size_t sibling_edges = 0;
};

/// Runs Gao inference over routing-table paths (each path ordered from the
/// vantage AS to the destination AS). Paths shorter than 2 are ignored.
[[nodiscard]] GaoResult infer_relationships(
    const std::vector<std::vector<Asn>>& paths, const GaoOptions& opts = {});

/// Fraction of edges in `truth` that exist in `inferred` with the same
/// relationship type (sibling matches sibling; provider/customer must match
/// orientation). Edges absent from the inferred graph count as wrong.
[[nodiscard]] double relationship_accuracy(const AsGraph& truth,
                                           const AsGraph& inferred);

/// Per-relationship-type precision/recall of the inference.
struct RelationshipScores {
  double p2c_precision = 0.0;  ///< Of inferred provider-customer edges,
                               ///< fraction correct (orientation included).
  double p2c_recall = 0.0;
  double peer_precision = 0.0;
  double peer_recall = 0.0;
};

[[nodiscard]] RelationshipScores relationship_scores(const AsGraph& truth,
                                                     const AsGraph& inferred);

}  // namespace acbm::net
