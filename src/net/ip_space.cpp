#include "net/ip_space.h"

#include <algorithm>
#include <cmath>
#include <istream>
#include <ostream>
#include <stdexcept>
#include <string>

namespace acbm::net {

IpToAsnMap::IpToAsnMap(std::vector<std::pair<Prefix, Asn>> entries) {
  entries_.reserve(entries.size());
  for (const auto& [prefix, asn] : entries) {
    entries_.push_back({prefix, asn});
    sizes_[asn] += prefix.size();
  }
  std::sort(entries_.begin(), entries_.end(),
            [](const Entry& a, const Entry& b) {
              if (a.prefix.network.value != b.prefix.network.value) {
                return a.prefix.network.value < b.prefix.network.value;
              }
              return a.prefix.length > b.prefix.length;
            });
  for (std::size_t i = 0; i + 1 < entries_.size(); ++i) {
    if (entries_[i].prefix == entries_[i + 1].prefix &&
        entries_[i].asn != entries_[i + 1].asn) {
      throw std::invalid_argument(
          "IpToAsnMap: identical prefix mapped to different ASNs");
    }
  }
}

std::optional<Asn> IpToAsnMap::lookup(Ipv4 addr) const {
  if (entries_.empty()) return std::nullopt;
  // Find the first entry with network > addr, then scan backwards for the
  // longest (most specific) containing prefix.
  auto it = std::upper_bound(
      entries_.begin(), entries_.end(), addr,
      [](Ipv4 a, const Entry& e) { return a.value < e.prefix.network.value; });
  std::optional<Asn> best;
  std::uint8_t best_len = 0;
  while (it != entries_.begin()) {
    --it;
    if (it->prefix.contains(addr)) {
      if (!best || it->prefix.length > best_len) {
        best = it->asn;
        best_len = it->prefix.length;
      }
    }
    // Any prefix containing addr must start at or before addr and cover it;
    // once networks drop below addr - max block size we can stop. Blocks are
    // at most /0 in theory, so use the conservative check: stop when even a
    // /8 starting here could not reach addr.
    if (addr.value - it->prefix.network.value > (std::uint32_t{1} << 24)) {
      break;
    }
  }
  return best;
}

std::vector<Prefix> IpToAsnMap::prefixes_of(Asn asn) const {
  std::vector<Prefix> out;
  for (const Entry& entry : entries_) {
    if (entry.asn == asn) out.push_back(entry.prefix);
  }
  return out;
}

std::uint64_t IpToAsnMap::address_count(Asn asn) const {
  const auto it = sizes_.find(asn);
  return it == sizes_.end() ? 0 : it->second;
}

void IpToAsnMap::save(std::ostream& os) const {
  for (const Entry& entry : entries_) {
    os << entry.prefix.to_string() << ',' << entry.asn << '\n';
  }
}

IpToAsnMap IpToAsnMap::load(std::istream& is) {
  std::vector<std::pair<Prefix, Asn>> entries;
  std::string line;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    const auto comma = line.find(',');
    if (comma == std::string::npos) {
      throw std::invalid_argument("IpToAsnMap::load: malformed line");
    }
    entries.emplace_back(parse_prefix(line.substr(0, comma)),
                         static_cast<Asn>(std::stoul(line.substr(comma + 1))));
  }
  return IpToAsnMap(std::move(entries));
}

IpToAsnMap allocate_address_space(const AsGraph& graph,
                                  const AllocationOptions& opts,
                                  acbm::stats::Rng& rng) {
  if (opts.prefix_length < 8 || opts.prefix_length > 30) {
    throw std::invalid_argument(
        "allocate_address_space: prefix_length out of [8, 30]");
  }
  if (opts.max_blocks_per_as == 0) {
    throw std::invalid_argument("allocate_address_space: zero blocks per AS");
  }

  // Rank ASes by degree so well-connected ASes draw more blocks.
  std::vector<Asn> ranked = graph.ases();
  std::sort(ranked.begin(), ranked.end(), [&](Asn a, Asn b) {
    return graph.degree(a) > graph.degree(b);
  });

  std::vector<std::pair<Prefix, Asn>> entries;
  std::uint32_t cursor = std::uint32_t{opts.pool_first_octet} << 24;
  const std::uint32_t block = std::uint32_t{1} << (32 - opts.prefix_length);
  for (std::size_t rank = 0; rank < ranked.size(); ++rank) {
    // Zipf-shaped block count: top-ranked ASes get up to max_blocks.
    const double share =
        1.0 / std::pow(static_cast<double>(rank + 1), opts.size_skew);
    auto blocks = static_cast<std::size_t>(
        1 + share * static_cast<double>(opts.max_blocks_per_as - 1) +
        rng.uniform(0.0, 0.5));
    blocks = std::min(blocks, opts.max_blocks_per_as);
    for (std::size_t b = 0; b < blocks; ++b) {
      entries.emplace_back(Prefix(Ipv4(cursor), opts.prefix_length),
                           ranked[rank]);
      cursor += block;
    }
  }
  return IpToAsnMap(std::move(entries));
}

}  // namespace acbm::net
