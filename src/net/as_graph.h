// The AS-level Internet graph with business relationships. Relationships
// drive both valley-free routing (routing.h) and the inter-AS distance term
// of the paper's source-distribution feature A^s (Eq. 4).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

namespace acbm::net {

using Asn = std::uint32_t;

/// Role of a neighbor relative to the AS that owns the adjacency entry.
enum class LinkType : std::uint8_t {
  kCustomer,  ///< The neighbor is my customer (I provide transit).
  kProvider,  ///< The neighbor is my provider.
  kPeer,      ///< Settlement-free peering.
  kSibling,   ///< Same organization; transit in both directions.
};

[[nodiscard]] constexpr LinkType reverse(LinkType t) noexcept {
  switch (t) {
    case LinkType::kCustomer: return LinkType::kProvider;
    case LinkType::kProvider: return LinkType::kCustomer;
    case LinkType::kPeer: return LinkType::kPeer;
    case LinkType::kSibling: return LinkType::kSibling;
  }
  return LinkType::kPeer;
}

struct Link {
  Asn neighbor = 0;
  LinkType type = LinkType::kPeer;
};

/// Undirected AS graph with typed edges. Both endpoints hold an adjacency
/// entry; the invariant link(a,b) == reverse(link(b,a)) is maintained by the
/// mutation API.
class AsGraph {
 public:
  /// Registers an AS with no links (idempotent).
  void add_as(Asn asn);

  /// Adds or replaces an edge. `type` is the neighbor's role as seen from
  /// `from` (e.g. add_edge(a, b, kCustomer) makes b a customer of a).
  /// Self-loops are rejected with std::invalid_argument.
  void add_edge(Asn from, Asn to, LinkType type);

  /// Convenience: provider -> customer edge.
  void add_provider_customer(Asn provider, Asn customer) {
    add_edge(provider, customer, LinkType::kCustomer);
  }
  void add_peering(Asn a, Asn b) { add_edge(a, b, LinkType::kPeer); }
  void add_sibling(Asn a, Asn b) { add_edge(a, b, LinkType::kSibling); }

  [[nodiscard]] bool contains(Asn asn) const;
  [[nodiscard]] std::size_t as_count() const noexcept { return adj_.size(); }
  [[nodiscard]] std::size_t edge_count() const noexcept { return edge_count_; }

  /// Neighbors of an AS (empty for unknown AS).
  [[nodiscard]] std::span<const Link> links(Asn asn) const;

  /// Relationship of `to` relative to `from`, if the edge exists.
  [[nodiscard]] std::optional<LinkType> link_type(Asn from, Asn to) const;

  [[nodiscard]] std::size_t degree(Asn asn) const { return links(asn).size(); }

  /// All registered ASNs in insertion order.
  [[nodiscard]] const std::vector<Asn>& ases() const noexcept { return order_; }

  /// True if the graph is connected (ignoring edge types). Empty graphs
  /// count as connected.
  [[nodiscard]] bool connected() const;

  /// True if no AS can reach itself by a chain of provider->customer edges
  /// (a sanity invariant for generated topologies).
  [[nodiscard]] bool customer_hierarchy_acyclic() const;

 private:
  std::unordered_map<Asn, std::vector<Link>> adj_;
  std::vector<Asn> order_;
  std::size_t edge_count_ = 0;
};

}  // namespace acbm::net
