#include "net/gao.h"

#include <algorithm>
#include <cstdint>
#include <unordered_map>
#include <unordered_set>

namespace acbm::net {

namespace {

using EdgeKey = std::uint64_t;

EdgeKey directed_key(Asn a, Asn b) {
  return (static_cast<EdgeKey>(a) << 32) | b;
}

EdgeKey undirected_key(Asn a, Asn b) {
  return a < b ? directed_key(a, b) : directed_key(b, a);
}

}  // namespace

GaoResult infer_relationships(const std::vector<std::vector<Asn>>& paths,
                              const GaoOptions& opts) {
  // Degree of each AS in the union of all observed adjacencies.
  std::unordered_map<Asn, std::unordered_set<Asn>> neighbors;
  for (const auto& path : paths) {
    for (std::size_t i = 0; i + 1 < path.size(); ++i) {
      neighbors[path[i]].insert(path[i + 1]);
      neighbors[path[i + 1]].insert(path[i]);
    }
  }
  const auto degree = [&](Asn asn) {
    const auto it = neighbors.find(asn);
    return it == neighbors.end() ? std::size_t{0} : it->second.size();
  };

  // Phase 1 — transit counting. Each path is split at its highest-degree AS
  // (the "top provider"); pairs before it climb (right AS provides transit),
  // pairs after it descend (left AS provides transit).
  // transit[key(u, v)] counts observations of "v provides transit to u".
  std::unordered_map<EdgeKey, std::size_t> transit;
  // Edges that bridge the top of some path (candidates for peering), and
  // how often each edge appears strictly inside an uphill/downhill segment
  // (true peer edges are only ever traversed at the top of a valley-free
  // path, so any interior occurrence rules peering out).
  std::unordered_set<EdgeKey> top_edges;
  std::unordered_map<EdgeKey, std::size_t> interior_count;

  for (const auto& path : paths) {
    if (path.size() < 2) continue;
    std::size_t top = 0;
    for (std::size_t i = 1; i < path.size(); ++i) {
      if (degree(path[i]) > degree(path[top])) top = i;
    }
    for (std::size_t i = 0; i + 1 < path.size(); ++i) {
      if (i + 1 <= top) {
        ++transit[directed_key(path[i], path[i + 1])];
      }
      if (i >= top) {
        ++transit[directed_key(path[i + 1], path[i])];
      }
      const bool top_adjacent = (i + 1 == top) || (i == top);
      if (!top_adjacent) {
        ++interior_count[undirected_key(path[i], path[i + 1])];
      }
    }
    // The edge(s) adjacent to the top AS are peering candidates.
    if (top > 0) top_edges.insert(undirected_key(path[top - 1], path[top]));
    if (top + 1 < path.size()) {
      top_edges.insert(undirected_key(path[top], path[top + 1]));
    }
  }

  // Phase 2 — relationship assignment from transit counts.
  GaoResult result;
  std::unordered_set<EdgeKey> done;
  for (const auto& [asn, nbrs] : neighbors) {
    for (Asn other : nbrs) {
      const EdgeKey ukey = undirected_key(asn, other);
      if (!done.insert(ukey).second) continue;
      const Asn a = asn;
      const Asn b = other;
      const auto t_ab_it = transit.find(directed_key(a, b));
      const auto t_ba_it = transit.find(directed_key(b, a));
      const std::size_t t_ab = t_ab_it == transit.end() ? 0 : t_ab_it->second;
      const std::size_t t_ba = t_ba_it == transit.end() ? 0 : t_ba_it->second;

      if (t_ab > opts.sibling_threshold && t_ba > opts.sibling_threshold) {
        result.graph.add_sibling(a, b);
        ++result.sibling_edges;
      } else if (t_ab >= t_ba && t_ab > 0) {
        // b provides transit to a => b is a's provider.
        result.graph.add_provider_customer(b, a);
        ++result.provider_customer_edges;
      } else if (t_ba > 0) {
        result.graph.add_provider_customer(a, b);
        ++result.provider_customer_edges;
      } else {
        // No transit evidence at all: default to peering.
        result.graph.add_peering(a, b);
        ++result.peer_edges;
      }
    }
  }

  // Phase 3 — peering refinement (Gao's final heuristic, sharpened with
  // positional evidence): an edge that bridges the top of paths, is never
  // traversed strictly inside an uphill/downhill segment, and connects ASes
  // of comparable degree is reclassified as peering. This catches core
  // peering meshes whose mutual customer-cone transit otherwise looks like
  // a sibling relationship.
  for (const EdgeKey ukey : top_edges) {
    const Asn a = static_cast<Asn>(ukey >> 32);
    const Asn b = static_cast<Asn>(ukey & 0xFFFFFFFFu);
    const auto current = result.graph.link_type(a, b);
    if (!current || *current == LinkType::kPeer) continue;
    const auto iit = interior_count.find(ukey);
    if (iit != interior_count.end() && iit->second > 0) continue;
    if (degree(a) < opts.peer_min_degree || degree(b) < opts.peer_min_degree) {
      continue;  // Too small to be peering with the core.
    }
    const double da = static_cast<double>(std::max<std::size_t>(degree(a), 1));
    const double db = static_cast<double>(std::max<std::size_t>(degree(b), 1));
    const double ratio = da > db ? da / db : db / da;
    if (ratio >= opts.peer_degree_ratio) continue;
    if (*current == LinkType::kSibling) {
      --result.sibling_edges;
    } else {
      --result.provider_customer_edges;
    }
    result.graph.add_peering(a, b);
    ++result.peer_edges;
  }
  return result;
}

RelationshipScores relationship_scores(const AsGraph& truth,
                                       const AsGraph& inferred) {
  // Counted over undirected edges; a provider-customer match requires the
  // right orientation.
  std::size_t p2c_truth = 0;
  std::size_t p2c_inferred = 0;
  std::size_t p2c_hits = 0;
  std::size_t peer_truth = 0;
  std::size_t peer_inferred = 0;
  std::size_t peer_hits = 0;

  const auto count_edges = [](const AsGraph& g, std::size_t& p2c,
                              std::size_t& peer) {
    std::unordered_set<EdgeKey> seen;
    for (Asn a : g.ases()) {
      for (const Link& link : g.links(a)) {
        if (!seen.insert(undirected_key(a, link.neighbor)).second) continue;
        if (link.type == LinkType::kCustomer || link.type == LinkType::kProvider) {
          ++p2c;
        } else if (link.type == LinkType::kPeer) {
          ++peer;
        }
      }
    }
  };
  count_edges(truth, p2c_truth, peer_truth);
  count_edges(inferred, p2c_inferred, peer_inferred);

  std::unordered_set<EdgeKey> seen;
  for (Asn a : truth.ases()) {
    for (const Link& link : truth.links(a)) {
      if (!seen.insert(undirected_key(a, link.neighbor)).second) continue;
      const auto got = inferred.link_type(a, link.neighbor);
      if (!got) continue;
      if (link.type == LinkType::kCustomer && *got == LinkType::kCustomer) {
        ++p2c_hits;
      } else if (link.type == LinkType::kProvider &&
                 *got == LinkType::kProvider) {
        ++p2c_hits;
      } else if (link.type == LinkType::kPeer && *got == LinkType::kPeer) {
        ++peer_hits;
      }
    }
  }

  RelationshipScores scores;
  if (p2c_inferred > 0) {
    scores.p2c_precision =
        static_cast<double>(p2c_hits) / static_cast<double>(p2c_inferred);
  }
  if (p2c_truth > 0) {
    scores.p2c_recall =
        static_cast<double>(p2c_hits) / static_cast<double>(p2c_truth);
  }
  if (peer_inferred > 0) {
    scores.peer_precision =
        static_cast<double>(peer_hits) / static_cast<double>(peer_inferred);
  }
  if (peer_truth > 0) {
    scores.peer_recall =
        static_cast<double>(peer_hits) / static_cast<double>(peer_truth);
  }
  return scores;
}

double relationship_accuracy(const AsGraph& truth, const AsGraph& inferred) {
  std::size_t total = 0;
  std::size_t correct = 0;
  std::unordered_set<std::uint64_t> seen;
  for (Asn a : truth.ases()) {
    for (const Link& link : truth.links(a)) {
      const std::uint64_t key = undirected_key(a, link.neighbor);
      if (!seen.insert(key).second) continue;
      ++total;
      const auto got = inferred.link_type(a, link.neighbor);
      if (got && *got == link.type) ++correct;
    }
  }
  return total == 0 ? 1.0 : static_cast<double>(correct) /
                            static_cast<double>(total);
}

}  // namespace acbm::net
