#include "net/topology.h"

#include <stdexcept>

namespace acbm::net {

Topology generate_topology(const TopologyOptions& opts,
                           acbm::stats::Rng& rng) {
  if (opts.num_tier1 < 2) {
    throw std::invalid_argument("generate_topology: need at least 2 tier-1 ASes");
  }
  if (opts.max_transit_providers == 0 || opts.max_stub_providers == 0) {
    throw std::invalid_argument("generate_topology: provider counts must be >= 1");
  }
  Topology topo;
  Asn next_asn = opts.first_asn;

  // Tier-1 clique: every pair peers, so the core is fully meshed.
  for (std::size_t i = 0; i < opts.num_tier1; ++i) {
    const Asn asn = next_asn++;
    topo.graph.add_as(asn);
    topo.tiers[asn] = Tier::kTier1;
    topo.tier1.push_back(asn);
  }
  for (std::size_t i = 0; i < topo.tier1.size(); ++i) {
    for (std::size_t j = i + 1; j < topo.tier1.size(); ++j) {
      topo.graph.add_peering(topo.tier1[i], topo.tier1[j]);
    }
  }

  // Degree-preferential provider selection among a candidate pool.
  const auto pick_providers = [&](const std::vector<Asn>& pool,
                                  std::size_t count) {
    std::vector<double> weights;
    weights.reserve(pool.size());
    for (Asn asn : pool) {
      weights.push_back(static_cast<double>(topo.graph.degree(asn)) + 1.0);
    }
    std::vector<Asn> chosen;
    std::vector<double> w = weights;
    for (std::size_t k = 0; k < count && k < pool.size(); ++k) {
      const std::size_t pick = rng.categorical(w);
      chosen.push_back(pool[pick]);
      w[pick] = 0.0;  // Without replacement.
    }
    return chosen;
  };

  // Transit tier: providers come from tier-1 plus already-created transit
  // ASes (so the middle tier forms its own hierarchy).
  std::vector<Asn> transit_pool = topo.tier1;
  for (std::size_t i = 0; i < opts.num_transit; ++i) {
    const Asn asn = next_asn++;
    topo.graph.add_as(asn);
    topo.tiers[asn] = Tier::kTransit;
    const auto n_providers = static_cast<std::size_t>(rng.uniform_int(
        1, static_cast<std::int64_t>(opts.max_transit_providers)));
    for (Asn provider : pick_providers(transit_pool, n_providers)) {
      topo.graph.add_provider_customer(provider, asn);
    }
    // Lateral peering between transit ASes.
    for (Asn other : topo.transit) {
      if (rng.bernoulli(opts.transit_peering_prob /
                        static_cast<double>(topo.transit.size() + 1))) {
        topo.graph.add_peering(asn, other);
      }
    }
    topo.transit.push_back(asn);
    transit_pool.push_back(asn);
  }

  // Stubs: multihomed to transit providers, with tier-1s also selling
  // direct transit (keeps core degrees at the top of the hierarchy, as in
  // the real AS graph).
  std::vector<Asn> stub_pool = topo.transit;
  stub_pool.insert(stub_pool.end(), topo.tier1.begin(), topo.tier1.end());
  for (std::size_t i = 0; i < opts.num_stub; ++i) {
    const Asn asn = next_asn++;
    topo.graph.add_as(asn);
    topo.tiers[asn] = Tier::kStub;
    const auto n_providers = static_cast<std::size_t>(rng.uniform_int(
        1, static_cast<std::int64_t>(opts.max_stub_providers)));
    for (Asn provider : pick_providers(stub_pool, n_providers)) {
      topo.graph.add_provider_customer(provider, asn);
    }
    topo.stubs.push_back(asn);
  }
  return topo;
}

}  // namespace acbm::net
