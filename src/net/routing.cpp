#include "net/routing.h"

#include <deque>
#include <queue>
#include <stdexcept>

namespace acbm::net {

namespace {

struct Candidate {
  std::size_t hops;
  Asn asn;
  // Min-heap on hop count.
  [[nodiscard]] bool operator>(const Candidate& other) const noexcept {
    return hops > other.hops;
  }
};

}  // namespace

std::unordered_map<Asn, Route> RouteComputer::routes_to(Asn dest) const {
  if (!graph_->contains(dest)) {
    throw std::invalid_argument("RouteComputer::routes_to: unknown destination");
  }

  // next_hop[u] is u's chosen neighbor toward dest; hops[u] the path length.
  std::unordered_map<Asn, Asn> next_hop;
  std::unordered_map<Asn, std::size_t> hops;
  std::unordered_map<Asn, RouteClass> learned;

  // Phase 1 — customer routes climb the hierarchy: the origin announces to
  // its providers, which announce to their providers (and siblings), etc.
  // BFS yields shortest customer-learned paths.
  {
    std::deque<Asn> queue{dest};
    hops[dest] = 0;
    learned[dest] = RouteClass::kCustomer;
    while (!queue.empty()) {
      const Asn u = queue.front();
      queue.pop_front();
      for (const Link& link : graph_->links(u)) {
        // u announces to its providers (they see a customer route) and to
        // siblings (mutual transit).
        if (link.type != LinkType::kProvider && link.type != LinkType::kSibling) {
          continue;
        }
        const Asn v = link.neighbor;
        if (hops.contains(v)) continue;
        hops[v] = hops[u] + 1;
        next_hop[v] = u;
        learned[v] = RouteClass::kCustomer;
        queue.push_back(v);
      }
    }
  }

  // Phase 2 — one peer edge: every AS holding a customer route announces it
  // to peers; peers without a customer route adopt the best (shortest).
  {
    std::vector<std::pair<Asn, std::size_t>> customer_holders;
    customer_holders.reserve(hops.size());
    for (const auto& [asn, h] : hops) customer_holders.emplace_back(asn, h);
    for (const auto& [u, hu] : customer_holders) {
      for (const Link& link : graph_->links(u)) {
        if (link.type != LinkType::kPeer) continue;
        const Asn v = link.neighbor;
        const auto it = learned.find(v);
        if (it != learned.end() && it->second == RouteClass::kCustomer) {
          continue;  // Customer routes always win.
        }
        const std::size_t cand = hu + 1;
        if (it == learned.end() || cand < hops[v]) {
          hops[v] = cand;
          next_hop[v] = u;
          learned[v] = RouteClass::kPeer;
        }
      }
    }
  }

  // Phase 3 — downhill: all routes are announced to customers. Customers
  // without customer/peer routes adopt provider routes; Dijkstra order
  // (uniform weights, heterogeneous seeds) gives shortest provider paths.
  {
    std::priority_queue<Candidate, std::vector<Candidate>, std::greater<>> pq;
    for (const auto& [asn, h] : hops) pq.push({h, asn});
    while (!pq.empty()) {
      const auto [hu, u] = pq.top();
      pq.pop();
      if (hu != hops[u]) continue;  // Stale entry.
      for (const Link& link : graph_->links(u)) {
        // u announces down to customers; they see a provider route.
        if (link.type != LinkType::kCustomer) continue;
        const Asn v = link.neighbor;
        const auto it = learned.find(v);
        if (it != learned.end() && it->second != RouteClass::kProvider) {
          continue;  // v already has a customer or peer route.
        }
        const std::size_t cand = hu + 1;
        if (it == learned.end() || cand < hops[v]) {
          hops[v] = cand;
          next_hop[v] = u;
          learned[v] = RouteClass::kProvider;
          pq.push({cand, v});
        }
      }
    }
  }

  // Materialize paths by walking next-hop pointers.
  std::unordered_map<Asn, Route> out;
  out.reserve(hops.size());
  for (const auto& [asn, h] : hops) {
    Route route;
    route.learned = learned[asn];
    route.path.reserve(h + 1);
    Asn cur = asn;
    route.path.push_back(cur);
    while (cur != dest) {
      cur = next_hop.at(cur);
      route.path.push_back(cur);
    }
    out.emplace(asn, std::move(route));
  }
  return out;
}

std::vector<std::vector<Asn>> dump_paths(const AsGraph& graph,
                                         const std::vector<Asn>& vantage_points) {
  std::vector<std::vector<Asn>> out;
  const RouteComputer computer(graph);
  for (Asn dest : graph.ases()) {
    const auto routes = computer.routes_to(dest);
    for (Asn vantage : vantage_points) {
      const auto it = routes.find(vantage);
      if (it == routes.end() || it->second.path.size() < 2) continue;
      out.push_back(it->second.path);
    }
  }
  return out;
}

std::optional<std::size_t> ValleyFreeDistance::distance(Asn from, Asn to) {
  if (from == to) return 0;
  auto it = cache_.find(to);
  if (it == cache_.end()) {
    try {
      it = cache_.emplace(to, computer_.routes_to(to)).first;
    } catch (const std::invalid_argument&) {
      return std::nullopt;
    }
  }
  const auto rit = it->second.find(from);
  if (rit == it->second.end()) return std::nullopt;
  return rit->second.hops();
}

}  // namespace acbm::net
