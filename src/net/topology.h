// Synthetic Internet-like AS topology: a tier-1 clique, a transit middle
// tier attached by degree-preferential multihoming, and stub leaves. This is
// the ground truth against which Gao relationship inference (gao.h) is
// evaluated, and the substrate over which bot source ASes are placed.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "net/as_graph.h"
#include "stats/rng.h"

namespace acbm::net {

enum class Tier : std::uint8_t { kTier1, kTransit, kStub };

struct TopologyOptions {
  std::size_t num_tier1 = 8;
  std::size_t num_transit = 40;
  std::size_t num_stub = 150;
  /// Providers per transit AS are drawn from [1, max_transit_providers].
  std::size_t max_transit_providers = 2;
  /// Providers per stub AS are drawn from [1, max_stub_providers].
  std::size_t max_stub_providers = 3;
  /// Probability that two transit ASes with a common provider peer directly.
  double transit_peering_prob = 0.15;
  Asn first_asn = 1;
};

struct Topology {
  AsGraph graph;
  std::unordered_map<Asn, Tier> tiers;
  std::vector<Asn> tier1;
  std::vector<Asn> transit;
  std::vector<Asn> stubs;
};

/// Generates a connected, customer-acyclic topology. Degree-preferential
/// provider choice yields the heavy-tailed degree distribution real AS
/// graphs show. Deterministic for a given (options, rng state).
[[nodiscard]] Topology generate_topology(const TopologyOptions& opts,
                                         acbm::stats::Rng& rng);

}  // namespace acbm::net
