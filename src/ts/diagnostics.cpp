#include "ts/diagnostics.h"

#include <cmath>
#include <stdexcept>

#include "stats/descriptive.h"

namespace acbm::ts {

namespace {

// Regularized lower incomplete gamma P(a, x) by series (x < a + 1) or
// continued fraction (x >= a + 1); standard Numerical-Recipes-style forms.
double gamma_p(double a, double x) {
  if (x < 0.0 || a <= 0.0) {
    throw std::invalid_argument("gamma_p: bad arguments");
  }
  if (x == 0.0) return 0.0;
  const double gln = std::lgamma(a);
  if (x < a + 1.0) {
    double ap = a;
    double sum = 1.0 / a;
    double del = sum;
    for (int i = 0; i < 500; ++i) {
      ap += 1.0;
      del *= x / ap;
      sum += del;
      if (std::abs(del) < std::abs(sum) * 1e-14) break;
    }
    return sum * std::exp(-x + a * std::log(x) - gln);
  }
  // Continued fraction for Q(a, x), then P = 1 - Q.
  double b = x + 1.0 - a;
  double c = 1e300;
  double d = 1.0 / b;
  double h = d;
  for (int i = 1; i < 500; ++i) {
    const double an = -static_cast<double>(i) * (static_cast<double>(i) - a);
    b += 2.0;
    d = an * d + b;
    if (std::abs(d) < 1e-300) d = 1e-300;
    c = b + an / c;
    if (std::abs(c) < 1e-300) c = 1e-300;
    d = 1.0 / d;
    const double del = d * c;
    h *= del;
    if (std::abs(del - 1.0) < 1e-14) break;
  }
  const double q = std::exp(-x + a * std::log(x) - gln) * h;
  return 1.0 - q;
}

}  // namespace

double chi_squared_sf(double x, double k) {
  if (k <= 0.0) throw std::invalid_argument("chi_squared_sf: k <= 0");
  if (x <= 0.0) return 1.0;
  return 1.0 - gamma_p(k / 2.0, x / 2.0);
}

LjungBoxResult ljung_box(std::span<const double> residuals, std::size_t lags,
                         std::size_t fitted_params) {
  const std::size_t n = residuals.size();
  if (lags == 0 || n <= lags + 1) {
    throw std::invalid_argument("ljung_box: series too short for lag count");
  }
  if (fitted_params >= lags) {
    throw std::invalid_argument("ljung_box: dof would be non-positive");
  }
  LjungBoxResult out;
  out.lags = lags;
  out.dof = lags - fitted_params;
  double q = 0.0;
  for (std::size_t k = 1; k <= lags; ++k) {
    const double rho = acbm::stats::autocorrelation(residuals, k);
    q += rho * rho / static_cast<double>(n - k);
  }
  out.statistic = static_cast<double>(n) * (static_cast<double>(n) + 2.0) * q;
  out.p_value = chi_squared_sf(out.statistic, static_cast<double>(out.dof));
  return out;
}

}  // namespace acbm::ts
