#include "ts/arima.h"

#include <stdexcept>

#include "stats/serialize.h"
#include "ts/differencing.h"

namespace acbm::ts {

void ArimaModel::fit(std::span<const double> series) {
  if (series.size() <= order_.d + 1) {
    throw std::invalid_argument("ArimaModel::fit: series too short to difference");
  }
  const std::vector<double> diffed = difference(series, order_.d);
  arma_ = ArmaModel({order_.p, order_.q});
  arma_.fit(diffed);
}

std::vector<double> ArimaModel::forecast(std::span<const double> history,
                                         std::size_t h) const {
  if (!fitted()) throw std::logic_error("ArimaModel::forecast: not fitted");
  if (history.size() <= order_.d) {
    throw std::invalid_argument("ArimaModel::forecast: history too short");
  }
  const std::vector<double> diffed = difference(history, order_.d);
  const std::vector<double> f = arma_.forecast(diffed, h);
  return integrate_forecast(f, history, order_.d);
}

double ArimaModel::forecast_one(std::span<const double> history) const {
  return forecast(history, 1).front();
}

double ArimaModel::forecast_variance(std::size_t h) const {
  if (!fitted()) {
    throw std::logic_error("ArimaModel::forecast_variance: not fitted");
  }
  if (h == 0) {
    throw std::invalid_argument("ArimaModel::forecast_variance: h == 0");
  }
  std::vector<double> psi = arma_.psi_weights(h);
  // Integrating the process d times cumulative-sums its psi weights d times.
  for (std::size_t pass = 0; pass < order_.d; ++pass) {
    double running = 0.0;
    for (double& w : psi) {
      running += w;
      w = running;
    }
  }
  double acc = 0.0;
  for (double w : psi) acc += w * w;
  return arma_.sigma2() * acc;
}

void ArimaModel::save(std::ostream& os) const {
  namespace io = acbm::stats::io;
  io::write_header(os, "arima", 1);
  io::write_scalar(os, "d", order_.d);
  arma_.save(os);
}

ArimaModel ArimaModel::load(std::istream& is) {
  namespace io = acbm::stats::io;
  io::expect_header(is, "arima", 1);
  const auto d = io::read_scalar<std::size_t>(is, "d");
  ArmaModel arma = ArmaModel::load(is);
  ArimaModel model({arma.order().p, d, arma.order().q});
  model.arma_ = std::move(arma);
  return model;
}

std::vector<double> ArimaModel::one_step_predictions(
    std::span<const double> series, std::size_t start) const {
  if (!fitted()) {
    throw std::logic_error("ArimaModel::one_step_predictions: not fitted");
  }
  if (start <= order_.d || start > series.size()) {
    throw std::invalid_argument("ArimaModel::one_step_predictions: bad start");
  }
  if (order_.d == 0) {
    return arma_.one_step_predictions(series, start);
  }
  // On the differenced series, the prediction of diffed[t] corresponds to
  // series[t + d]; add back the previous original value(s).
  const std::vector<double> diffed = difference(series, order_.d);
  const std::size_t dstart = start - order_.d;
  const std::vector<double> dpred = arma_.one_step_predictions(diffed, dstart);
  std::vector<double> out;
  out.reserve(dpred.size());
  for (std::size_t i = 0; i < dpred.size(); ++i) {
    const std::size_t t = start + i;  // Index being predicted, original scale.
    // Integrate a single step: take the last d original values before t.
    const std::span<const double> tail = std::span<const double>(series)
                                             .subspan(t - order_.d, order_.d);
    const std::vector<double> one = integrate_forecast(
        std::span<const double>(&dpred[i], 1), tail, order_.d);
    out.push_back(one.front());
  }
  return out;
}

}  // namespace acbm::ts
