// ARIMA(p, d, q): ARMA estimation on the d-times differenced series with
// forecast integration back to the original scale. This is the model class
// of the paper's temporal component (§IV).
#pragma once

#include <cstddef>
#include <iosfwd>
#include <span>
#include <vector>

#include "ts/arma.h"

namespace acbm::ts {

struct ArimaOrder {
  std::size_t p = 1;
  std::size_t d = 0;
  std::size_t q = 0;
};

class ArimaModel {
 public:
  ArimaModel() = default;
  explicit ArimaModel(ArimaOrder order) : order_(order) {}

  /// Fits on the original-scale series. Throws std::invalid_argument when
  /// the differenced series is too short for the ARMA order.
  void fit(std::span<const double> series);

  /// h-step forecast on the original scale following `history`.
  [[nodiscard]] std::vector<double> forecast(std::span<const double> history,
                                             std::size_t h) const;

  [[nodiscard]] double forecast_one(std::span<const double> history) const;

  /// Walk-forward one-step predictions for series[start..] on the original
  /// scale, each using only data strictly before the predicted point.
  [[nodiscard]] std::vector<double> one_step_predictions(
      std::span<const double> series, std::size_t start) const;

  [[nodiscard]] bool fitted() const noexcept { return arma_.fitted(); }
  [[nodiscard]] ArimaOrder order() const noexcept { return order_; }
  [[nodiscard]] const ArmaModel& arma() const noexcept { return arma_; }
  [[nodiscard]] double aic() const { return arma_.aic(); }
  [[nodiscard]] double bic() const { return arma_.bic(); }

  /// Variance of the h-step-ahead forecast error on the original scale:
  /// the differenced process's psi weights are cumulative-summed d times
  /// before squaring. Throws std::invalid_argument for h == 0.
  [[nodiscard]] double forecast_variance(std::size_t h) const;

  /// Text serialization of the fitted state.
  void save(std::ostream& os) const;
  [[nodiscard]] static ArimaModel load(std::istream& is);

 private:
  ArimaOrder order_;
  ArmaModel arma_;
};

}  // namespace acbm::ts
