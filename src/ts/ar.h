// Pure autoregressive estimation: Yule-Walker (moment-based) and conditional
// least squares. The long-AR stage of Hannan-Rissanen (arma.cpp) builds on
// the CLS fit.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace acbm::ts {

/// A fitted AR(p) model: x_t = c + sum_i phi_i x_{t-i} + e_t.
struct ArFit {
  std::vector<double> phi;  ///< AR coefficients, phi[0] is lag 1.
  double intercept = 0.0;
  double sigma2 = 0.0;  ///< Innovation variance estimate.

  [[nodiscard]] std::size_t order() const noexcept { return phi.size(); }

  /// One-step forecast given history ordered oldest..newest; requires
  /// history.size() >= order().
  [[nodiscard]] double forecast_one(std::span<const double> history) const;

  /// Residuals e_t for t = p..n-1 under this fit.
  [[nodiscard]] std::vector<double> residuals(
      std::span<const double> series) const;
};

/// Fits AR(p) by solving the Yule-Walker equations on the sample ACF.
/// Requires series.size() > p + 1; throws std::invalid_argument otherwise.
[[nodiscard]] ArFit fit_ar_yule_walker(std::span<const double> series,
                                       std::size_t p);

/// Fits AR(p) by conditional least squares (OLS of x_t on its p lags with an
/// intercept). Requires series.size() >= 2 * p + 2.
[[nodiscard]] ArFit fit_ar_least_squares(std::span<const double> series,
                                         std::size_t p);

}  // namespace acbm::ts
