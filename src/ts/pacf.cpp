#include "ts/pacf.h"

#include <stdexcept>

#include "stats/descriptive.h"

namespace acbm::ts {

std::vector<double> durbin_levinson(std::span<const double> rho,
                                    std::size_t p) {
  if (rho.size() < p + 1) {
    throw std::invalid_argument("durbin_levinson: rho too short");
  }
  std::vector<double> phi(p, 0.0);      // phi_{k,j} for the current order k
  std::vector<double> phi_prev(p, 0.0);
  double v = 1.0;  // Prediction error variance ratio.
  for (std::size_t k = 1; k <= p; ++k) {
    double num = rho[k];
    for (std::size_t j = 1; j < k; ++j) num -= phi_prev[j - 1] * rho[k - j];
    const double reflection = v > 0.0 ? num / v : 0.0;
    phi[k - 1] = reflection;
    for (std::size_t j = 1; j < k; ++j) {
      phi[j - 1] = phi_prev[j - 1] - reflection * phi_prev[k - j - 1];
    }
    v *= (1.0 - reflection * reflection);
    phi_prev = phi;
  }
  return phi;
}

std::vector<double> pacf(std::span<const double> xs, std::size_t max_lag) {
  const std::size_t usable =
      xs.size() > 1 ? std::min(max_lag, xs.size() - 1) : 0;
  std::vector<double> out;
  out.reserve(usable);
  const std::vector<double> rho = acbm::stats::acf(xs, usable);
  for (std::size_t k = 1; k <= usable; ++k) {
    // The PACF at lag k is the k-th (last) coefficient of the AR(k) fit.
    const std::vector<double> phi = durbin_levinson(rho, k);
    out.push_back(phi.back());
  }
  return out;
}

}  // namespace acbm::ts
