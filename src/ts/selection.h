// Order selection for ARIMA: grid search over (p, d, q) by information
// criterion, mirroring standard auto-ARIMA practice. DESIGN.md ablation #1
// compares this against a fixed order.
#pragma once

#include <cstddef>
#include <optional>
#include <span>

#include "ts/arima.h"

namespace acbm::ts {

enum class Criterion { kAic, kBic };

struct AutoArimaOptions {
  std::size_t max_p = 3;
  std::size_t max_d = 1;
  std::size_t max_q = 2;
  Criterion criterion = Criterion::kAic;
};

struct AutoArimaResult {
  ArimaOrder order;
  double score = 0.0;  ///< The winning criterion value.
  ArimaModel model;    ///< Already fitted on the input series.
};

/// Fits every order in the grid and returns the best by the chosen
/// criterion. Orders whose fit fails (series too short, singular system) are
/// skipped. Returns nullopt if no order could be fitted.
[[nodiscard]] std::optional<AutoArimaResult> auto_arima(
    std::span<const double> series, const AutoArimaOptions& opts = {});

}  // namespace acbm::ts
