// Goodness-of-fit diagnostics (§III-C mentions goodness of fit as the
// other validation axis besides prediction): Ljung-Box portmanteau test on
// residual autocorrelation, and a chi-squared survival function to turn the
// statistic into a p-value.
#pragma once

#include <cstddef>
#include <span>

namespace acbm::ts {

struct LjungBoxResult {
  double statistic = 0.0;  ///< Q = n(n+2) sum_k rho_k^2 / (n-k).
  double p_value = 1.0;    ///< Against chi-squared with (lags - fitted_params) dof.
  std::size_t lags = 0;
  std::size_t dof = 0;
};

/// Ljung-Box test of "residuals are white noise" using `lags`
/// autocorrelations; `fitted_params` (p + q of the model that produced the
/// residuals) is subtracted from the degrees of freedom. Throws
/// std::invalid_argument when residuals are shorter than lags + 1 or dof
/// would be zero or negative.
[[nodiscard]] LjungBoxResult ljung_box(std::span<const double> residuals,
                                       std::size_t lags,
                                       std::size_t fitted_params = 0);

/// Upper-tail probability P(X > x) for X ~ chi-squared with k dof,
/// via the regularized incomplete gamma function.
[[nodiscard]] double chi_squared_sf(double x, double k);

}  // namespace acbm::ts
