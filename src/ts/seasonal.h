// Seasonal ARIMA (SARIMA-lite): ordinary and seasonal differencing followed
// by a Hannan-Rissanen fit over ordinary AR lags {1..p}, seasonal AR lags
// {s, 2s, ..., P*s}, and MA lags {1..q}. Built for the trace's hourly
// attack-count series, which carries strong hour-of-day (s = 24)
// seasonality from the families' diurnal launch preferences.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <span>
#include <vector>

namespace acbm::ts {

struct SeasonalOrder {
  std::size_t p = 1;   ///< Ordinary AR lags.
  std::size_t d = 0;   ///< Ordinary differencing.
  std::size_t q = 0;   ///< MA lags.
  std::size_t P = 1;   ///< Seasonal AR lags (multiples of the period).
  std::size_t D = 0;   ///< Seasonal differencing passes.
  std::size_t period = 24;
};

class SeasonalArimaModel {
 public:
  SeasonalArimaModel() = default;
  explicit SeasonalArimaModel(SeasonalOrder order);

  /// Fits on the original-scale series. Requires enough data to difference
  /// and regress (roughly 3 seasons plus the lag span); throws
  /// std::invalid_argument otherwise.
  void fit(std::span<const double> series);

  [[nodiscard]] bool fitted() const noexcept { return fitted_; }
  [[nodiscard]] const SeasonalOrder& order() const noexcept { return order_; }

  /// Coefficients over the combined AR lag set (ordinary lags first, then
  /// seasonal), the MA coefficients, and the intercept.
  [[nodiscard]] const std::vector<std::size_t>& ar_lags() const noexcept {
    return ar_lags_;
  }
  [[nodiscard]] const std::vector<double>& ar_coeff() const noexcept {
    return ar_coeff_;
  }
  [[nodiscard]] const std::vector<double>& ma_coeff() const noexcept {
    return ma_coeff_;
  }
  [[nodiscard]] double intercept() const noexcept { return intercept_; }

  /// h-step forecast on the original scale.
  [[nodiscard]] std::vector<double> forecast(std::span<const double> history,
                                             std::size_t h) const;
  [[nodiscard]] double forecast_one(std::span<const double> history) const;

  /// Causal walk-forward one-step predictions for series[start..).
  [[nodiscard]] std::vector<double> one_step_predictions(
      std::span<const double> series, std::size_t start) const;

 private:
  /// Applies ordinary (d) then seasonal (D at `period`) differencing.
  [[nodiscard]] std::vector<double> difference_all(
      std::span<const double> series) const;

  /// One-step predictions on the differenced scale with innovations filter;
  /// also used by forecast via recursion.
  [[nodiscard]] double predict_at(std::span<const double> diffed,
                                  std::span<const double> innovations,
                                  std::size_t t) const;

  SeasonalOrder order_;
  std::vector<std::size_t> ar_lags_;
  std::vector<double> ar_coeff_;
  std::vector<double> ma_coeff_;
  double intercept_ = 0.0;
  double fallback_mean_ = 0.0;
  bool fitted_ = false;
};

}  // namespace acbm::ts
