#include "ts/arma.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "core/robust.h"
#include "stats/descriptive.h"
#include "stats/matrix.h"
#include "stats/ols.h"
#include "stats/serialize.h"
#include "ts/ar.h"

namespace acbm::ts {

namespace {
// Long-AR order for the first Hannan-Rissanen stage.
std::size_t long_ar_order(std::size_t n, ArmaOrder order) {
  const auto by_length = static_cast<std::size_t>(
      std::ceil(10.0 * std::log10(std::max<double>(static_cast<double>(n), 10.0))));
  std::size_t m = std::max({order.p + order.q, by_length, std::size_t{1}});
  // Keep enough residual rows for the second-stage regression.
  while (m > order.p + order.q + 1 && n < 4 * m) --m;
  return m;
}

bool all_finite(std::span<const double> xs) {
  for (double x : xs) {
    if (!std::isfinite(x)) return false;
  }
  return true;
}
}  // namespace

void ArmaModel::fit(std::span<const double> series) {
  const std::size_t n = series.size();
  const std::size_t params = order_.p + order_.q + 1;
  if (n < params + 4) {
    throw core::FitFailure(core::FitError::kSeriesTooShort,
                           "ArmaModel::fit: series too short for order");
  }
  if (!all_finite(series)) {
    throw core::FitFailure(core::FitError::kNonfiniteInput,
                           "ArmaModel::fit: non-finite input");
  }

  if (order_.q == 0) {
    // Pure AR: conditional least squares directly (skip residual proxying).
    ArFit ar = n >= 2 * order_.p + 2 ? fit_ar_least_squares(series, order_.p)
                                     : fit_ar_yule_walker(series, order_.p);
    if (!all_finite(ar.phi) || !std::isfinite(ar.intercept)) {
      // Yule-Walker on a degenerate (e.g. constant) series divides by a
      // zero lag-0 autocovariance; surface it as a singular system.
      throw core::FitFailure(core::FitError::kSingularSystem,
                             "ArmaModel::fit: singular AR system");
    }
    phi_ = std::move(ar.phi);
    theta_.clear();
    intercept_ = ar.intercept;
    sigma2_ = ar.sigma2;
    n_fit_ = n;
    fitted_ = true;
    return;
  }

  // Stage 1: long AR fit to obtain residual proxies for the unobserved
  // innovations.
  std::size_t m = long_ar_order(n, order_);
  while (m > 1 && series.size() <= 2 * m + 2) --m;
  const ArFit long_ar = series.size() >= 2 * m + 2
                            ? fit_ar_least_squares(series, m)
                            : fit_ar_yule_walker(series, m);
  std::vector<double> e(n, 0.0);
  for (std::size_t t = m; t < n; ++t) {
    e[t] = series[t] - long_ar.forecast_one(series.subspan(0, t));
  }

  // Stage 2: regress x_t on p lags of x and q lags of e.
  const std::size_t start = std::max(order_.p, std::max(order_.q, m));
  if (n - start < params + 2) {
    throw core::FitFailure(core::FitError::kSeriesTooShort,
                           "ArmaModel::fit: too few effective samples");
  }
  const std::size_t rows = n - start;
  acbm::stats::Matrix x(rows, order_.p + order_.q);
  std::vector<double> y(rows);
  for (std::size_t r = 0; r < rows; ++r) {
    const std::size_t t = start + r;
    y[r] = series[t];
    for (std::size_t i = 0; i < order_.p; ++i) x(r, i) = series[t - 1 - i];
    for (std::size_t j = 0; j < order_.q; ++j) {
      x(r, order_.p + j) = e[t - 1 - j];
    }
  }
  // The Hannan-Rissanen regression throws FitFailure(kSingularSystem) when
  // the lag matrix is singular (constant series, collinear lags); let it
  // propagate typed instead of producing non-finite coefficients.
  acbm::stats::LinearRegression reg;
  reg.fit(x, y);
  const std::vector<double>& beta = reg.coefficients();
  phi_.assign(beta.begin(), beta.begin() + static_cast<std::ptrdiff_t>(order_.p));
  theta_.assign(beta.begin() + static_cast<std::ptrdiff_t>(order_.p), beta.end());
  intercept_ = reg.intercept();
  n_fit_ = n;
  fitted_ = true;

  const std::vector<double> innov = innovations(series);
  const std::size_t burn = std::max(order_.p, order_.q);
  const std::span<const double> tail(innov.data() + burn, innov.size() - burn);
  sigma2_ = acbm::stats::population_variance(tail);
}

std::vector<double> ArmaModel::innovations(
    std::span<const double> series) const {
  if (!fitted_) throw std::logic_error("ArmaModel::innovations: not fitted");
  std::vector<double> e(series.size(), 0.0);
  for (std::size_t t = 0; t < series.size(); ++t) {
    double pred = intercept_;
    for (std::size_t i = 0; i < phi_.size(); ++i) {
      if (t > i) pred += phi_[i] * series[t - 1 - i];
    }
    for (std::size_t j = 0; j < theta_.size(); ++j) {
      if (t > j) pred += theta_[j] * e[t - 1 - j];
    }
    e[t] = series[t] - pred;
  }
  return e;
}

double ArmaModel::forecast_one(std::span<const double> history) const {
  return forecast(history, 1).front();
}

std::vector<double> ArmaModel::forecast(std::span<const double> history,
                                        std::size_t h) const {
  if (!fitted_) throw std::logic_error("ArmaModel::forecast: not fitted");
  if (h == 0) return {};
  // Filter innovations over the history, then roll forward with future
  // innovations set to their conditional mean (zero).
  std::vector<double> e = innovations(history);
  std::vector<double> x(history.begin(), history.end());
  e.resize(history.size() + h, 0.0);

  std::vector<double> out;
  out.reserve(h);
  for (std::size_t k = 0; k < h; ++k) {
    const std::size_t t = history.size() + k;
    double pred = intercept_;
    for (std::size_t i = 0; i < phi_.size(); ++i) {
      if (t > i) pred += phi_[i] * x[t - 1 - i];
    }
    for (std::size_t j = 0; j < theta_.size(); ++j) {
      if (t > j) pred += theta_[j] * e[t - 1 - j];
    }
    x.push_back(pred);
    out.push_back(pred);
  }
  return out;
}

std::vector<double> ArmaModel::one_step_predictions(
    std::span<const double> series, std::size_t start) const {
  if (!fitted_) {
    throw std::logic_error("ArmaModel::one_step_predictions: not fitted");
  }
  if (start == 0 || start > series.size()) {
    throw std::invalid_argument("ArmaModel::one_step_predictions: bad start");
  }
  // Single innovation filter pass; the prediction for index t only uses
  // series values and innovations strictly before t.
  std::vector<double> e(series.size(), 0.0);
  std::vector<double> preds;
  preds.reserve(series.size() - start);
  for (std::size_t t = 0; t < series.size(); ++t) {
    double pred = intercept_;
    for (std::size_t i = 0; i < phi_.size(); ++i) {
      if (t > i) pred += phi_[i] * series[t - 1 - i];
    }
    for (std::size_t j = 0; j < theta_.size(); ++j) {
      if (t > j) pred += theta_[j] * e[t - 1 - j];
    }
    e[t] = series[t] - pred;
    if (t >= start) preds.push_back(pred);
  }
  return preds;
}

std::vector<double> ArmaModel::psi_weights(std::size_t n) const {
  if (!fitted_) throw std::logic_error("ArmaModel::psi_weights: not fitted");
  std::vector<double> psi(n, 0.0);
  if (n == 0) return psi;
  psi[0] = 1.0;
  for (std::size_t j = 1; j < n; ++j) {
    double value = j <= theta_.size() ? theta_[j - 1] : 0.0;
    for (std::size_t i = 1; i <= std::min(j, phi_.size()); ++i) {
      value += phi_[i - 1] * psi[j - i];
    }
    psi[j] = value;
  }
  return psi;
}

double ArmaModel::forecast_variance(std::size_t h) const {
  if (h == 0) {
    throw std::invalid_argument("ArmaModel::forecast_variance: h == 0");
  }
  const std::vector<double> psi = psi_weights(h);
  double acc = 0.0;
  for (double w : psi) acc += w * w;
  return sigma2_ * acc;
}

void ArmaModel::save(std::ostream& os) const {
  namespace io = acbm::stats::io;
  io::write_header(os, "arma", 1);
  io::write_scalar(os, "p", order_.p);
  io::write_scalar(os, "q", order_.q);
  io::write_scalar(os, "fitted", fitted_ ? 1 : 0);
  io::write_scalar(os, "intercept", intercept_);
  io::write_scalar(os, "sigma2", sigma2_);
  io::write_scalar(os, "n_fit", n_fit_);
  io::write_vector<double>(os, "phi", phi_);
  io::write_vector<double>(os, "theta", theta_);
}

ArmaModel ArmaModel::load(std::istream& is) {
  namespace io = acbm::stats::io;
  io::expect_header(is, "arma", 1);
  ArmaOrder order;
  order.p = io::read_scalar<std::size_t>(is, "p");
  order.q = io::read_scalar<std::size_t>(is, "q");
  ArmaModel model(order);
  model.fitted_ = io::read_scalar<int>(is, "fitted") != 0;
  model.intercept_ = io::read_scalar<double>(is, "intercept");
  model.sigma2_ = io::read_scalar<double>(is, "sigma2");
  model.n_fit_ = io::read_scalar<std::size_t>(is, "n_fit");
  model.phi_ = io::read_vector<double>(is, "phi");
  model.theta_ = io::read_vector<double>(is, "theta");
  return model;
}

double ArmaModel::aic() const {
  if (!fitted_) throw std::logic_error("ArmaModel::aic: not fitted");
  const auto k = static_cast<double>(order_.p + order_.q + 1);
  const auto n = static_cast<double>(n_fit_);
  const double s2 = std::max(sigma2_, 1e-12);
  return n * std::log(s2) + 2.0 * k;
}

double ArmaModel::bic() const {
  if (!fitted_) throw std::logic_error("ArmaModel::bic: not fitted");
  const auto k = static_cast<double>(order_.p + order_.q + 1);
  const auto n = static_cast<double>(n_fit_);
  const double s2 = std::max(sigma2_, 1e-12);
  return n * std::log(s2) + k * std::log(n);
}

}  // namespace acbm::ts
