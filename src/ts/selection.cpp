#include "ts/selection.h"

#include <limits>
#include <stdexcept>

namespace acbm::ts {

std::optional<AutoArimaResult> auto_arima(std::span<const double> series,
                                          const AutoArimaOptions& opts) {
  std::optional<AutoArimaResult> best;
  double best_score = std::numeric_limits<double>::infinity();
  for (std::size_t d = 0; d <= opts.max_d; ++d) {
    for (std::size_t p = 0; p <= opts.max_p; ++p) {
      for (std::size_t q = 0; q <= opts.max_q; ++q) {
        if (p == 0 && q == 0) continue;  // Degenerate constant model.
        ArimaModel model({p, d, q});
        try {
          model.fit(series);
        } catch (const std::invalid_argument&) {
          continue;
        } catch (const std::domain_error&) {
          continue;
        }
        const double score = opts.criterion == Criterion::kAic ? model.aic()
                                                               : model.bic();
        if (score < best_score) {
          best_score = score;
          best = AutoArimaResult{{p, d, q}, score, std::move(model)};
        }
      }
    }
  }
  return best;
}

}  // namespace acbm::ts
