#include "ts/differencing.h"

#include <stdexcept>

namespace acbm::ts {

std::vector<double> difference(std::span<const double> xs) {
  if (xs.size() < 2) {
    throw std::invalid_argument("difference: need at least 2 points");
  }
  std::vector<double> out;
  out.reserve(xs.size() - 1);
  for (std::size_t t = 1; t < xs.size(); ++t) out.push_back(xs[t] - xs[t - 1]);
  return out;
}

std::vector<double> difference(std::span<const double> xs, std::size_t d) {
  std::vector<double> cur(xs.begin(), xs.end());
  for (std::size_t k = 0; k < d; ++k) cur = difference(cur);
  return cur;
}

std::vector<double> undifference(std::span<const double> diffs,
                                 double first_value) {
  std::vector<double> out;
  out.reserve(diffs.size() + 1);
  out.push_back(first_value);
  for (double dv : diffs) out.push_back(out.back() + dv);
  return out;
}

std::vector<double> integrate_forecast(std::span<const double> forecast_diffed,
                                       std::span<const double> tail,
                                       std::size_t d) {
  if (d == 0) return {forecast_diffed.begin(), forecast_diffed.end()};
  if (tail.size() < d) {
    throw std::invalid_argument("integrate_forecast: tail shorter than d");
  }
  // Last value of the original series at each differencing level 0..d-1.
  std::vector<double> level(tail.end() - static_cast<std::ptrdiff_t>(d),
                            tail.end());
  std::vector<double> last_at_level(d);
  for (std::size_t k = 0; k < d; ++k) {
    last_at_level[k] = level.back();
    if (level.size() >= 2) level = difference(level);
  }

  std::vector<double> f(forecast_diffed.begin(), forecast_diffed.end());
  for (std::size_t kk = d; kk-- > 0;) {
    double running = last_at_level[kk];
    for (double& v : f) {
      running += v;
      v = running;
    }
  }
  return f;
}

}  // namespace acbm::ts
