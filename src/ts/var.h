// Vector autoregression. The paper notes (§III-B1) that the three
// attacker-side variables A^f, A^b, A^s "are not completely independent on
// each other" but models them with separate ARIMAs; a VAR(p) captures the
// cross-series structure and quantifies what that simplification costs
// (DESIGN.md extension; compared against independent ARIMAs in
// bench_ext_var).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "stats/matrix.h"

namespace acbm::ts {

/// VAR(p): x_t = c + A_1 x_{t-1} + ... + A_p x_{t-p} + e_t over k series,
/// estimated equation-by-equation with OLS.
class VarModel {
 public:
  VarModel() = default;
  explicit VarModel(std::size_t order);

  /// Fits on k aligned series (series[i] is the full history of variable
  /// i; all must share one length n > k * p + p + 2).
  /// Throws std::invalid_argument on ragged/short input.
  void fit(const std::vector<std::vector<double>>& series);

  [[nodiscard]] bool fitted() const noexcept { return fitted_; }
  [[nodiscard]] std::size_t order() const noexcept { return order_; }
  [[nodiscard]] std::size_t dimension() const noexcept { return k_; }

  /// Coefficient of variable `from` at `lag` (1-based) in the equation for
  /// variable `to`.
  [[nodiscard]] double coefficient(std::size_t to, std::size_t from,
                                   std::size_t lag) const;
  [[nodiscard]] double intercept(std::size_t to) const;

  /// h-step forecast of all k variables; history rows are the aligned
  /// series as passed to fit(). Result[j] is the forecast path of
  /// variable j (length h).
  [[nodiscard]] std::vector<std::vector<double>> forecast(
      const std::vector<std::vector<double>>& history, std::size_t h) const;

  /// Causal one-step predictions of variable `which` for positions
  /// [start, n), each using all k series strictly before the predicted
  /// point.
  [[nodiscard]] std::vector<double> one_step_predictions(
      const std::vector<std::vector<double>>& series, std::size_t which,
      std::size_t start) const;

 private:
  [[nodiscard]] double predict_equation(
      const std::vector<std::vector<double>>& series, std::size_t to,
      std::size_t t) const;

  std::size_t order_ = 1;
  std::size_t k_ = 0;
  // coeff_[to] holds (k * p) lag coefficients ordered (lag-major: all
  // variables at lag 1, then lag 2, ...), then nothing; intercepts separate.
  std::vector<std::vector<double>> coeff_;
  std::vector<double> intercepts_;
  bool fitted_ = false;
};

}  // namespace acbm::ts
