// Differencing and integration — the "I" in ARIMA (Eq. 5 context, §IV-A4).
#pragma once

#include <span>
#include <vector>

namespace acbm::ts {

/// First difference: y_t = x_t - x_{t-1}; output has size() - 1 entries.
/// Throws std::invalid_argument when the input has fewer than 2 entries.
[[nodiscard]] std::vector<double> difference(std::span<const double> xs);

/// d-th order difference (d >= 0; d == 0 copies the input).
[[nodiscard]] std::vector<double> difference(std::span<const double> xs,
                                             std::size_t d);

/// Inverts a first difference given the value that preceded diffs[0].
[[nodiscard]] std::vector<double> undifference(std::span<const double> diffs,
                                               double first_value);

/// Integrates an h-step forecast made on the d-times differenced series back
/// to the original scale. `tail` must hold at least the last d values of the
/// original series (ordered oldest to newest).
[[nodiscard]] std::vector<double> integrate_forecast(
    std::span<const double> forecast_diffed, std::span<const double> tail,
    std::size_t d);

}  // namespace acbm::ts
