#include "ts/var.h"

#include <stdexcept>

#include "stats/ols.h"

namespace acbm::ts {

VarModel::VarModel(std::size_t order) : order_(order) {
  if (order == 0) throw std::invalid_argument("VarModel: order must be >= 1");
}

void VarModel::fit(const std::vector<std::vector<double>>& series) {
  k_ = series.size();
  if (k_ == 0) throw std::invalid_argument("VarModel::fit: no series");
  const std::size_t n = series.front().size();
  for (const auto& s : series) {
    if (s.size() != n) throw std::invalid_argument("VarModel::fit: ragged series");
  }
  const std::size_t params = k_ * order_ + 1;
  if (n < order_ + params + 2) {
    throw std::invalid_argument("VarModel::fit: series too short");
  }

  // Shared design matrix of lagged values for all equations.
  const std::size_t rows = n - order_;
  acbm::stats::Matrix x(rows, k_ * order_);
  for (std::size_t r = 0; r < rows; ++r) {
    const std::size_t t = order_ + r;
    std::size_t col = 0;
    for (std::size_t lag = 1; lag <= order_; ++lag) {
      for (std::size_t v = 0; v < k_; ++v) {
        x(r, col++) = series[v][t - lag];
      }
    }
  }

  coeff_.assign(k_, {});
  intercepts_.assign(k_, 0.0);
  for (std::size_t eq = 0; eq < k_; ++eq) {
    std::vector<double> y(rows);
    for (std::size_t r = 0; r < rows; ++r) y[r] = series[eq][order_ + r];
    acbm::stats::LinearRegression reg;
    reg.fit(x, y);
    coeff_[eq] = reg.coefficients();
    intercepts_[eq] = reg.intercept();
  }
  fitted_ = true;
}

double VarModel::coefficient(std::size_t to, std::size_t from,
                             std::size_t lag) const {
  if (!fitted_) throw std::logic_error("VarModel::coefficient: not fitted");
  if (to >= k_ || from >= k_ || lag == 0 || lag > order_) {
    throw std::invalid_argument("VarModel::coefficient: bad indices");
  }
  return coeff_[to][(lag - 1) * k_ + from];
}

double VarModel::intercept(std::size_t to) const {
  if (!fitted_) throw std::logic_error("VarModel::intercept: not fitted");
  if (to >= k_) throw std::invalid_argument("VarModel::intercept: bad index");
  return intercepts_[to];
}

double VarModel::predict_equation(
    const std::vector<std::vector<double>>& series, std::size_t to,
    std::size_t t) const {
  double pred = intercepts_[to];
  std::size_t col = 0;
  for (std::size_t lag = 1; lag <= order_; ++lag) {
    for (std::size_t v = 0; v < k_; ++v) {
      pred += coeff_[to][col++] * series[v][t - lag];
    }
  }
  return pred;
}

std::vector<std::vector<double>> VarModel::forecast(
    const std::vector<std::vector<double>>& history, std::size_t h) const {
  if (!fitted_) throw std::logic_error("VarModel::forecast: not fitted");
  if (history.size() != k_) {
    throw std::invalid_argument("VarModel::forecast: dimension mismatch");
  }
  const std::size_t n = history.front().size();
  if (n < order_) {
    throw std::invalid_argument("VarModel::forecast: history too short");
  }
  std::vector<std::vector<double>> extended = history;
  std::vector<std::vector<double>> out(k_);
  for (std::size_t step = 0; step < h; ++step) {
    const std::size_t t = n + step;
    for (std::size_t v = 0; v < k_; ++v) extended[v].push_back(0.0);
    for (std::size_t v = 0; v < k_; ++v) {
      const double pred = predict_equation(extended, v, t);
      extended[v][t] = pred;
      out[v].push_back(pred);
    }
  }
  return out;
}

std::vector<double> VarModel::one_step_predictions(
    const std::vector<std::vector<double>>& series, std::size_t which,
    std::size_t start) const {
  if (!fitted_) {
    throw std::logic_error("VarModel::one_step_predictions: not fitted");
  }
  if (series.size() != k_ || which >= k_) {
    throw std::invalid_argument("VarModel::one_step_predictions: bad input");
  }
  const std::size_t n = series.front().size();
  if (start < order_ || start > n) {
    throw std::invalid_argument("VarModel::one_step_predictions: bad start");
  }
  std::vector<double> out;
  out.reserve(n - start);
  for (std::size_t t = start; t < n; ++t) {
    out.push_back(predict_equation(series, which, t));
  }
  return out;
}

}  // namespace acbm::ts
