#include "ts/seasonal.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "stats/descriptive.h"
#include "stats/matrix.h"
#include "stats/ols.h"

namespace acbm::ts {

namespace {

// All differencing levels with ABSOLUTE indexing: level 0 is the original
// series; each further level is defined from `start` onward (entries before
// it are zero padding). lag[k] is the lag used to build level k+1 from k.
struct Levels {
  std::vector<std::vector<double>> values;
  std::vector<std::size_t> lags;   // lags[k]: level k+1 = diff(level k, lags[k]).
  std::vector<std::size_t> starts; // starts[k]: first defined index of level k.
};

Levels build_levels(std::span<const double> series, const SeasonalOrder& order) {
  Levels levels;
  levels.values.emplace_back(series.begin(), series.end());
  levels.starts.push_back(0);
  const auto extend = [&](std::size_t lag) {
    const auto& below = levels.values.back();
    const std::size_t start = levels.starts.back() + lag;
    if (start >= below.size()) {
      throw std::invalid_argument(
          "SeasonalArimaModel: series too short to difference");
    }
    std::vector<double> next(below.size(), 0.0);
    for (std::size_t t = start; t < below.size(); ++t) {
      next[t] = below[t] - below[t - lag];
    }
    levels.lags.push_back(lag);
    levels.values.push_back(std::move(next));
    levels.starts.push_back(start);
  };
  for (std::size_t i = 0; i < order.d; ++i) extend(1);
  for (std::size_t j = 0; j < order.D; ++j) extend(order.period);
  return levels;
}

}  // namespace

SeasonalArimaModel::SeasonalArimaModel(SeasonalOrder order) : order_(order) {
  if (order_.period < 2) {
    throw std::invalid_argument("SeasonalArimaModel: period must be >= 2");
  }
  for (std::size_t l = 1; l <= order_.p; ++l) ar_lags_.push_back(l);
  for (std::size_t k = 1; k <= order_.P; ++k) {
    ar_lags_.push_back(k * order_.period);
  }
}

std::vector<double> SeasonalArimaModel::difference_all(
    std::span<const double> series) const {
  return build_levels(series, order_).values.back();
}

double SeasonalArimaModel::predict_at(std::span<const double> diffed,
                                      std::span<const double> innovations,
                                      std::size_t t) const {
  double pred = intercept_;
  for (std::size_t i = 0; i < ar_lags_.size(); ++i) {
    if (t >= ar_lags_[i]) pred += ar_coeff_[i] * diffed[t - ar_lags_[i]];
  }
  for (std::size_t j = 0; j < ma_coeff_.size(); ++j) {
    if (t >= j + 1 && t - j - 1 < innovations.size()) {
      pred += ma_coeff_[j] * innovations[t - j - 1];
    }
  }
  return pred;
}

void SeasonalArimaModel::fit(std::span<const double> series) {
  if (ar_lags_.empty() && order_.q == 0) {
    throw std::invalid_argument("SeasonalArimaModel: degenerate order");
  }
  const Levels levels = build_levels(series, order_);
  const std::vector<double>& w = levels.values.back();
  const std::size_t w_start = levels.starts.back();
  const std::size_t max_lag =
      ar_lags_.empty() ? 1 : *std::max_element(ar_lags_.begin(), ar_lags_.end());
  const std::size_t first = w_start + std::max(max_lag, order_.q);
  const std::size_t params = ar_lags_.size() + order_.q + 1;
  if (w.size() < first + params + 8) {
    throw std::invalid_argument("SeasonalArimaModel::fit: series too short");
  }
  const std::span<const double> w_valid(w.data() + w_start,
                                        w.size() - w_start);
  fallback_mean_ = acbm::stats::mean(w_valid);

  // Stage 1 (only needed with MA terms): long-AR residual proxies.
  std::vector<double> e(w.size(), 0.0);
  if (order_.q > 0) {
    const std::size_t m = std::max<std::size_t>(max_lag, 10);
    if (w.size() > w_start + 2 * m + 4) {
      acbm::stats::Matrix x(w.size() - w_start - m, m);
      std::vector<double> y(w.size() - w_start - m);
      for (std::size_t r = 0; r < y.size(); ++r) {
        const std::size_t t = w_start + m + r;
        y[r] = w[t];
        for (std::size_t l = 0; l < m; ++l) x(r, l) = w[t - 1 - l];
      }
      acbm::stats::LinearRegression long_ar;
      long_ar.fit(x, y);
      for (std::size_t t = w_start + m; t < w.size(); ++t) {
        std::vector<double> lagged(m);
        for (std::size_t l = 0; l < m; ++l) lagged[l] = w[t - 1 - l];
        e[t] = w[t] - long_ar.predict(lagged);
      }
    }
  }

  // Stage 2: OLS over the combined lag set plus residual lags.
  const std::size_t rows = w.size() - first;
  acbm::stats::Matrix x(rows, ar_lags_.size() + order_.q);
  std::vector<double> y(rows);
  for (std::size_t r = 0; r < rows; ++r) {
    const std::size_t t = first + r;
    y[r] = w[t];
    for (std::size_t i = 0; i < ar_lags_.size(); ++i) {
      x(r, i) = w[t - ar_lags_[i]];
    }
    for (std::size_t j = 0; j < order_.q; ++j) {
      x(r, ar_lags_.size() + j) = e[t - 1 - j];
    }
  }
  acbm::stats::LinearRegression reg;
  reg.fit(x, y);
  const std::vector<double>& beta = reg.coefficients();
  ar_coeff_.assign(beta.begin(),
                   beta.begin() + static_cast<std::ptrdiff_t>(ar_lags_.size()));
  ma_coeff_.assign(beta.begin() + static_cast<std::ptrdiff_t>(ar_lags_.size()),
                   beta.end());
  intercept_ = reg.intercept();
  fitted_ = true;
}

std::vector<double> SeasonalArimaModel::forecast(
    std::span<const double> history, std::size_t h) const {
  if (!fitted_) throw std::logic_error("SeasonalArimaModel: not fitted");
  if (h == 0) return {};
  Levels levels = build_levels(history, order_);
  std::vector<double>& w = levels.values.back();
  const std::size_t w_start = levels.starts.back();

  // Innovations filter over the observed top level.
  std::vector<double> e(w.size(), 0.0);
  for (std::size_t t = w_start; t < w.size(); ++t) {
    e[t] = w[t] - predict_at(w, e, t);
  }

  std::vector<double> out;
  out.reserve(h);
  const std::size_t n = history.size();
  for (std::size_t k = 0; k < h; ++k) {
    const std::size_t t = n + k;
    for (auto& level : levels.values) level.push_back(0.0);
    e.push_back(0.0);  // Future innovations at their conditional mean.
    std::vector<double>& top = levels.values.back();
    top[t] = predict_at(top, e, t);
    // Integrate down: level_k[t] = level_{k+1}[t] + level_k[t - lag_k].
    for (std::size_t level = levels.values.size() - 1; level-- > 0;) {
      const std::size_t lag = levels.lags[level];
      levels.values[level][t] =
          levels.values[level + 1][t] + levels.values[level][t - lag];
    }
    out.push_back(levels.values.front()[t]);
  }
  return out;
}

double SeasonalArimaModel::forecast_one(std::span<const double> history) const {
  return forecast(history, 1).front();
}

std::vector<double> SeasonalArimaModel::one_step_predictions(
    std::span<const double> series, std::size_t start) const {
  if (!fitted_) throw std::logic_error("SeasonalArimaModel: not fitted");
  const Levels levels = build_levels(series, order_);
  const std::vector<double>& w = levels.values.back();
  const std::size_t w_start = levels.starts.back();
  if (start <= w_start || start > series.size()) {
    throw std::invalid_argument(
        "SeasonalArimaModel::one_step_predictions: bad start");
  }
  std::vector<double> e(w.size(), 0.0);
  std::vector<double> out;
  out.reserve(series.size() - start);
  for (std::size_t t = w_start; t < w.size(); ++t) {
    const double w_pred = predict_at(w, e, t);
    e[t] = w[t] - w_pred;
    if (t >= start) {
      // Add back the true lower-level lagged values (all strictly past).
      double value = w_pred;
      for (std::size_t level = levels.values.size() - 1; level-- > 0;) {
        value += levels.values[level][t - levels.lags[level]];
      }
      out.push_back(value);
    }
  }
  return out;
}

}  // namespace acbm::ts
