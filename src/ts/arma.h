// ARMA(p, q) estimation and forecasting — the paper's Eq. (5):
//   A_t = sum_{j=1..p} phi_j A_{t-j} + sum_{j=0..q} theta_j e_{t-j}.
// Estimation uses the Hannan-Rissanen two-stage regression (long-AR residual
// proxy, then OLS on lagged values and lagged residuals).
#pragma once

#include <cstddef>
#include <iosfwd>
#include <span>
#include <vector>

namespace acbm::ts {

struct ArmaOrder {
  std::size_t p = 1;  ///< Autoregressive order.
  std::size_t q = 0;  ///< Moving-average order.
};

/// A fitted ARMA(p, q) model with intercept.
class ArmaModel {
 public:
  ArmaModel() = default;
  explicit ArmaModel(ArmaOrder order) : order_(order) {}

  /// Fits by Hannan-Rissanen. Requires the series length to comfortably
  /// exceed p + q (at least p + q + long-AR burn-in + 2 points); throws
  /// std::invalid_argument otherwise.
  void fit(std::span<const double> series);

  /// Innovations e_t filtered through the fitted model (conditional on zero
  /// pre-sample values). Same length as `series`; the first max(p,q) entries
  /// are burn-in.
  [[nodiscard]] std::vector<double> innovations(
      std::span<const double> series) const;

  /// One-step-ahead forecast of the value following `history`.
  [[nodiscard]] double forecast_one(std::span<const double> history) const;

  /// h-step forecast after `history`; future innovations are set to zero.
  [[nodiscard]] std::vector<double> forecast(std::span<const double> history,
                                             std::size_t h) const;

  /// Walk-forward one-step predictions for series[start..], each using only
  /// data strictly before the predicted point. Useful for test-set
  /// evaluation. Requires start >= 1.
  [[nodiscard]] std::vector<double> one_step_predictions(
      std::span<const double> series, std::size_t start) const;

  [[nodiscard]] bool fitted() const noexcept { return fitted_; }
  [[nodiscard]] ArmaOrder order() const noexcept { return order_; }
  [[nodiscard]] const std::vector<double>& phi() const noexcept { return phi_; }
  [[nodiscard]] const std::vector<double>& theta() const noexcept {
    return theta_;
  }
  [[nodiscard]] double intercept() const noexcept { return intercept_; }
  [[nodiscard]] double sigma2() const noexcept { return sigma2_; }

  /// Akaike / Bayesian information criteria from the last fit (Gaussian
  /// likelihood approximation on n_eff residuals).
  [[nodiscard]] double aic() const;
  [[nodiscard]] double bic() const;

  /// Psi (MA-infinity) weights psi_0..psi_{n-1} of the fitted process:
  /// psi_0 = 1, psi_j = theta_j + sum_i phi_i psi_{j-i}.
  [[nodiscard]] std::vector<double> psi_weights(std::size_t n) const;

  /// Variance of the h-step-ahead forecast error:
  /// sigma^2 * sum_{j<h} psi_j^2. Throws std::invalid_argument for h == 0.
  [[nodiscard]] double forecast_variance(std::size_t h) const;

  /// Text serialization of the fitted state.
  void save(std::ostream& os) const;
  [[nodiscard]] static ArmaModel load(std::istream& is);

 private:
  ArmaOrder order_;
  std::vector<double> phi_;
  std::vector<double> theta_;
  double intercept_ = 0.0;
  double sigma2_ = 0.0;
  std::size_t n_fit_ = 0;
  bool fitted_ = false;
};

}  // namespace acbm::ts
