#include "ts/ar.h"

#include <stdexcept>

#include "stats/descriptive.h"
#include "stats/matrix.h"
#include "stats/ols.h"
#include "ts/pacf.h"

namespace acbm::ts {

double ArFit::forecast_one(std::span<const double> history) const {
  if (history.size() < phi.size()) {
    throw std::invalid_argument("ArFit::forecast_one: history too short");
  }
  double acc = intercept;
  for (std::size_t i = 0; i < phi.size(); ++i) {
    acc += phi[i] * history[history.size() - 1 - i];
  }
  return acc;
}

std::vector<double> ArFit::residuals(std::span<const double> series) const {
  const std::size_t p = phi.size();
  std::vector<double> out;
  if (series.size() <= p) return out;
  out.reserve(series.size() - p);
  for (std::size_t t = p; t < series.size(); ++t) {
    out.push_back(series[t] - forecast_one(series.subspan(0, t)));
  }
  return out;
}

ArFit fit_ar_yule_walker(std::span<const double> series, std::size_t p) {
  if (series.size() <= p + 1) {
    throw std::invalid_argument("fit_ar_yule_walker: series too short");
  }
  ArFit fit;
  if (p == 0) {
    fit.intercept = acbm::stats::mean(series);
    fit.sigma2 = acbm::stats::population_variance(series);
    return fit;
  }
  const std::vector<double> rho = acbm::stats::acf(series, p);
  fit.phi = durbin_levinson(rho, p);
  // The YW fit models the demeaned series; convert to intercept form.
  const double m = acbm::stats::mean(series);
  double phi_sum = 0.0;
  for (double v : fit.phi) phi_sum += v;
  fit.intercept = m * (1.0 - phi_sum);
  const std::vector<double> res = fit.residuals(series);
  fit.sigma2 = acbm::stats::population_variance(res);
  return fit;
}

ArFit fit_ar_least_squares(std::span<const double> series, std::size_t p) {
  if (series.size() < 2 * p + 2) {
    throw std::invalid_argument("fit_ar_least_squares: series too short");
  }
  ArFit fit;
  if (p == 0) {
    fit.intercept = acbm::stats::mean(series);
    fit.sigma2 = acbm::stats::population_variance(series);
    return fit;
  }
  const std::size_t n = series.size() - p;
  acbm::stats::Matrix x(n, p);
  std::vector<double> y(n);
  for (std::size_t t = 0; t < n; ++t) {
    y[t] = series[t + p];
    for (std::size_t i = 0; i < p; ++i) {
      x(t, i) = series[t + p - 1 - i];
    }
  }
  acbm::stats::LinearRegression reg;
  reg.fit(x, y);
  fit.phi = reg.coefficients();
  fit.intercept = reg.intercept();
  const std::vector<double> res = fit.residuals(series);
  fit.sigma2 = acbm::stats::population_variance(res);
  return fit;
}

}  // namespace acbm::ts
