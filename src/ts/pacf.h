// Partial autocorrelation via Durbin-Levinson; used for AR order diagnostics
// in the temporal model's order-selection grid.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace acbm::ts {

/// PACF values for lags 1..max_lag from a series (Durbin-Levinson recursion
/// over the sample ACF). Returns fewer entries if the series is too short.
[[nodiscard]] std::vector<double> pacf(std::span<const double> xs,
                                       std::size_t max_lag);

/// Durbin-Levinson solution of the Yule-Walker equations: AR(p) coefficients
/// from an autocorrelation sequence rho[0..p] (rho[0] == 1).
/// Throws std::invalid_argument when rho has fewer than p + 1 entries.
[[nodiscard]] std::vector<double> durbin_levinson(std::span<const double> rho,
                                                  std::size_t p);

}  // namespace acbm::ts
