// Middlebox data plane for the Fig. 5(b) use case: traffic traverses a
// service chain of firewall and load balancer (plus an off-path scrubber
// for diverted flows). The chain order is the knob the paper's prediction-
// guided control plane flips: load-balancer-first maximizes throughput in
// peacetime, firewall-first inspects everything during an attack.
#pragma once

#include <cstdint>
#include <vector>

#include "sdnsim/traffic.h"

namespace acbm::sdnsim {

/// What a service chain did to one minute of traffic.
struct ChainOutcome {
  double attack_delivered = 0.0;  ///< Attack units reaching the target.
  double attack_dropped = 0.0;
  double benign_delivered = 0.0;
  double benign_dropped = 0.0;    ///< Collateral damage.
  double inspected = 0.0;         ///< Units the firewall processed.
};

struct MiddleboxSpec {
  /// Maximum units/minute the firewall can deep-inspect; traffic beyond
  /// capacity passes uninspected (fail-open), as real IPS overload does.
  double firewall_capacity = 600.0;
  /// Fraction of inspected attack traffic the firewall drops.
  double firewall_attack_drop = 0.95;
  /// Fraction of inspected benign traffic wrongly dropped.
  double firewall_false_positive = 0.02;
  /// With the load balancer in front, only flagged traffic reaches the
  /// firewall: these are the flagging rates (the paper: packets can be
  /// "modified to evade detection" before the firewall — hence lower
  /// effective coverage in LB-first order).
  double lb_flag_attack = 0.55;
  double lb_flag_benign = 0.05;
};

enum class ChainOrder : std::uint8_t {
  kLoadBalancerFirst,  ///< Peacetime: only flagged traffic is inspected.
  kFirewallFirst,      ///< Hardened: everything is inspected.
};

/// Stateless per-minute chain evaluation.
[[nodiscard]] ChainOutcome process_minute(const MinuteTraffic& traffic,
                                          ChainOrder order,
                                          const MiddleboxSpec& spec);

/// Off-path scrubbing center for the Fig. 5(a) AS-filter use case: traffic
/// from diverted source ASes goes through the scrubber instead of straight
/// to the target.
struct ScrubberSpec {
  double capacity = 5000.0;     ///< Units/minute it can clean.
  double attack_removal = 0.98; ///< Fraction of attack traffic removed.
  double benign_loss = 0.01;    ///< Benign loss through the scrubbing path.
};

struct ScrubOutcome {
  double attack_delivered = 0.0;
  double attack_scrubbed = 0.0;
  double benign_delivered = 0.0;
  double benign_dropped = 0.0;
  double diverted = 0.0;  ///< Units sent through the scrubbing path.
};

/// Applies AS-diversion rules: traffic whose source AS is in `diverted`
/// goes through the scrubber; the rest flows directly to the target.
[[nodiscard]] ScrubOutcome process_with_diversion(
    const MinuteTraffic& traffic, const std::vector<net::Asn>& diverted,
    const ScrubberSpec& spec);

}  // namespace acbm::sdnsim
