#include "sdnsim/middlebox.h"

#include <algorithm>

namespace acbm::sdnsim {

namespace {

// Splits `amount` into an inspected part (up to the remaining firewall
// budget) and an uninspected overflow; updates the budget.
struct InspectSplit {
  double inspected = 0.0;
  double overflow = 0.0;
};
InspectSplit inspect(double amount, double& budget) {
  InspectSplit split;
  split.inspected = std::min(amount, budget);
  split.overflow = amount - split.inspected;
  budget -= split.inspected;
  return split;
}

}  // namespace

ChainOutcome process_minute(const MinuteTraffic& traffic, ChainOrder order,
                            const MiddleboxSpec& spec) {
  ChainOutcome out;
  double budget = spec.firewall_capacity;

  const double attack = traffic.total_attack();
  const double benign = traffic.total_benign();

  // Which share of each class reaches the firewall at all.
  const double attack_to_fw =
      order == ChainOrder::kFirewallFirst ? attack : attack * spec.lb_flag_attack;
  const double benign_to_fw =
      order == ChainOrder::kFirewallFirst ? benign : benign * spec.lb_flag_benign;

  // Inspect attack and benign proportionally out of the shared budget.
  const double total_to_fw = attack_to_fw + benign_to_fw;
  double attack_inspected = 0.0;
  double benign_inspected = 0.0;
  if (total_to_fw > 0.0) {
    const InspectSplit split = inspect(total_to_fw, budget);
    const double ratio = split.inspected / total_to_fw;
    attack_inspected = attack_to_fw * ratio;
    benign_inspected = benign_to_fw * ratio;
  }
  out.inspected = attack_inspected + benign_inspected;

  const double attack_dropped = attack_inspected * spec.firewall_attack_drop;
  const double benign_dropped = benign_inspected * spec.firewall_false_positive;
  out.attack_dropped = attack_dropped;
  out.benign_dropped = benign_dropped;
  out.attack_delivered = attack - attack_dropped;
  out.benign_delivered = benign - benign_dropped;
  return out;
}

ScrubOutcome process_with_diversion(const MinuteTraffic& traffic,
                                    const std::vector<net::Asn>& diverted,
                                    const ScrubberSpec& spec) {
  ScrubOutcome out;
  const auto is_diverted = [&](net::Asn asn) {
    return std::find(diverted.begin(), diverted.end(), asn) != diverted.end();
  };

  double scrub_attack = 0.0;
  double scrub_benign = 0.0;
  for (const auto& [asn, rate] : traffic.attack) {
    if (is_diverted(asn)) {
      scrub_attack += rate;
    } else {
      out.attack_delivered += rate;
    }
  }
  for (const auto& [asn, rate] : traffic.benign) {
    if (is_diverted(asn)) {
      scrub_benign += rate;
    } else {
      out.benign_delivered += rate;
    }
  }
  out.diverted = scrub_attack + scrub_benign;

  // The scrubber cleans up to its capacity; overload passes through raw.
  const double total = scrub_attack + scrub_benign;
  const double cleaned_ratio =
      total > 0.0 ? std::min(1.0, spec.capacity / total) : 1.0;
  const double attack_cleaned = scrub_attack * cleaned_ratio;
  const double attack_raw = scrub_attack - attack_cleaned;
  out.attack_scrubbed = attack_cleaned * spec.attack_removal;
  out.attack_delivered +=
      attack_cleaned * (1.0 - spec.attack_removal) + attack_raw;
  out.benign_dropped = scrub_benign * cleaned_ratio * spec.benign_loss;
  out.benign_delivered += scrub_benign - out.benign_dropped;
  return out;
}

}  // namespace acbm::sdnsim
