#include "sdnsim/traffic.h"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "core/features.h"

namespace acbm::sdnsim {

double MinuteTraffic::total_attack() const {
  double acc = 0.0;
  for (const auto& [asn, rate] : attack) acc += rate;
  return acc;
}

double MinuteTraffic::total_benign() const {
  double acc = 0.0;
  for (const auto& [asn, rate] : benign) acc += rate;
  return acc;
}

TargetTrafficModel::TargetTrafficModel(const trace::Dataset& dataset,
                                       const net::IpToAsnMap& ip_map,
                                       net::Asn target,
                                       const TrafficOptions& opts)
    : dataset_(&dataset), target_(target), opts_(opts) {
  for (std::size_t idx : dataset.attacks_on_asn(target)) {
    const trace::Attack& attack = dataset.attacks()[idx];
    ActiveAttack active;
    active.start = attack.start;
    active.end = attack.end();
    active.attack_index = idx;
    for (const auto& [asn, share] :
         core::source_asn_distribution(attack, ip_map)) {
      active.rate_by_as[asn] = share * opts_.rate_per_bot *
                               static_cast<double>(attack.magnitude());
    }
    attacks_.push_back(std::move(active));
  }
  std::sort(attacks_.begin(), attacks_.end(),
            [](const ActiveAttack& a, const ActiveAttack& b) {
              return a.start < b.start;
            });

  // Benign baseline: Zipf-weighted rates over a deterministic AS subset.
  acbm::stats::Rng rng(opts_.seed ^ (static_cast<std::uint64_t>(target) << 20));
  std::vector<net::Asn> pool;
  for (const auto& attack : attacks_) {
    for (const auto& [asn, rate] : attack.rate_by_as) pool.push_back(asn);
  }
  // Benign traffic comes both from ASes that also host bots (so filtering
  // them has real collateral) and from clean ASes.
  std::sort(pool.begin(), pool.end());
  pool.erase(std::unique(pool.begin(), pool.end()), pool.end());
  while (pool.size() < opts_.benign_source_ases) {
    pool.push_back(static_cast<net::Asn>(60000 + pool.size()));
  }
  rng.shuffle(pool);
  pool.resize(opts_.benign_source_ases);
  double total_weight = 0.0;
  std::vector<double> weights(pool.size());
  for (std::size_t i = 0; i < pool.size(); ++i) {
    weights[i] = 1.0 / std::pow(static_cast<double>(i + 1), 1.0);
    total_weight += weights[i];
  }
  for (std::size_t i = 0; i < pool.size(); ++i) {
    benign_rates_[pool[i]] =
        opts_.benign_base_rate * weights[i] / total_weight;
  }
}

MinuteTraffic TargetTrafficModel::minute(
    trace::EpochSeconds minute_start) const {
  MinuteTraffic out;
  const trace::EpochSeconds minute_end = minute_start + 60;
  for (const ActiveAttack& attack : attacks_) {
    if (attack.start >= minute_end) break;
    if (attack.end <= minute_start) continue;
    // Fraction of the minute the attack is live.
    const auto overlap = static_cast<double>(
        std::min(attack.end, minute_end) - std::max(attack.start, minute_start));
    const double fraction = overlap / 60.0;
    for (const auto& [asn, rate] : attack.rate_by_as) {
      out.attack[asn] += rate * fraction;
    }
  }
  // Benign diurnal modulation peaking at 14:00 UTC.
  const trace::DayHour dh =
      trace::decompose_timestamp(minute_start, dataset_->window_start());
  const double phase =
      2.0 * std::numbers::pi * (static_cast<double>(dh.hour) - 14.0) / 24.0;
  const double diurnal =
      1.0 + opts_.benign_diurnal_amplitude * std::cos(phase);
  for (const auto& [asn, rate] : benign_rates_) {
    out.benign[asn] = rate * diurnal;
  }
  return out;
}

std::vector<std::size_t> TargetTrafficModel::attacks_overlapping(
    trace::EpochSeconds start, trace::EpochSeconds end) const {
  std::vector<std::size_t> out;
  for (const ActiveAttack& attack : attacks_) {
    if (attack.start < end && attack.end > start) {
      out.push_back(attack.attack_index);
    }
  }
  return out;
}

}  // namespace acbm::sdnsim
