#include "sdnsim/policy.h"

#include <algorithm>

namespace acbm::sdnsim {

ReactivePolicy::ReactivePolicy(
    std::unordered_map<net::Asn, double> benign_baseline, ReactiveOptions opts)
    : baseline_(std::move(benign_baseline)), opts_(opts) {
  for (const auto& [asn, rate] : baseline_) baseline_total_ += rate;
}

PolicyDecision ReactivePolicy::decide(trace::EpochSeconds,
                                      const MinuteTraffic& previous) {
  // Aggregate view only: the operator sees total load per source AS.
  std::unordered_map<net::Asn, double> observed;
  double total = 0.0;
  for (const auto& [asn, rate] : previous.attack) {
    observed[asn] += rate;
    total += rate;
  }
  for (const auto& [asn, rate] : previous.benign) {
    observed[asn] += rate;
    total += rate;
  }

  const bool anomalous = total > opts_.threshold_factor * baseline_total_;
  if (anomalous) {
    ++anomalous_streak_;
    quiet_streak_ = 0;
  } else {
    anomalous_streak_ = 0;
    ++quiet_streak_;
  }

  if (!hardened_ && anomalous_streak_ >= opts_.detection_delay_min) {
    hardened_ = true;
    // Install rules for ASes visibly above their baseline share.
    std::vector<std::pair<net::Asn, double>> excess;
    for (const auto& [asn, rate] : observed) {
      const auto it = baseline_.find(asn);
      const double base = it == baseline_.end() ? 0.0 : it->second;
      if (rate > opts_.rule_factor * base + 1e-9) {
        excess.emplace_back(asn, rate - base);
      }
    }
    std::sort(excess.begin(), excess.end(), [](const auto& a, const auto& b) {
      if (a.second != b.second) return a.second > b.second;
      return a.first < b.first;
    });
    rules_.clear();
    for (std::size_t i = 0; i < excess.size() && i < opts_.max_rules; ++i) {
      rules_.push_back(excess[i].first);
    }
  }
  if (hardened_ && quiet_streak_ >= opts_.cooldown_min) {
    hardened_ = false;
    rules_.clear();
  }

  PolicyDecision decision;
  decision.order = hardened_ ? ChainOrder::kFirewallFirst
                             : ChainOrder::kLoadBalancerFirst;
  decision.diverted = rules_;
  return decision;
}

PredictivePolicy::PredictivePolicy(std::vector<PredictedWindow> schedule)
    : schedule_(std::move(schedule)) {
  std::sort(schedule_.begin(), schedule_.end(),
            [](const PredictedWindow& a, const PredictedWindow& b) {
              return a.start < b.start;
            });
}

PolicyDecision PredictivePolicy::decide(trace::EpochSeconds minute_start,
                                        const MinuteTraffic&) {
  PolicyDecision decision;
  for (const PredictedWindow& window : schedule_) {
    if (window.start > minute_start) break;
    if (minute_start < window.end) {
      decision.order = ChainOrder::kFirewallFirst;
      // Union of rules from all live windows.
      for (net::Asn asn : window.rules) {
        if (std::find(decision.diverted.begin(), decision.diverted.end(),
                      asn) == decision.diverted.end()) {
          decision.diverted.push_back(asn);
        }
      }
    }
  }
  return decision;
}

}  // namespace acbm::sdnsim
