// Minute-granularity data-plane simulation: drives one target's traffic
// through the middlebox chain and diversion rules chosen by a control
// policy, and reports what the target experienced — the measurable outcome
// of the paper's Fig. 5 use cases.
#pragma once

#include <cstdint>

#include "sdnsim/policy.h"
#include "sdnsim/traffic.h"

namespace acbm::sdnsim {

struct SimulationOptions {
  MiddleboxSpec middlebox;
  ScrubberSpec scrubber;
  /// Fraction of that minute's benign traffic lost while the chain order is
  /// being flipped (the paper's "service interruptions" the prediction is
  /// meant to minimize).
  double interruption_benign_loss = 0.3;
};

struct SimulationReport {
  double attack_total = 0.0;      ///< Attack units that arrived.
  double attack_delivered = 0.0;  ///< Units that reached the target.
  double benign_total = 0.0;
  double benign_delivered = 0.0;
  double benign_dropped = 0.0;    ///< Collateral (filtering + interruptions).
  double hardened_minutes = 0.0;  ///< Minutes in firewall-first order.
  double total_minutes = 0.0;
  std::size_t order_switches = 0;
  std::size_t rules_minutes = 0;  ///< Sum over minutes of installed rules.

  [[nodiscard]] double attack_blocked_fraction() const {
    return attack_total > 0.0 ? 1.0 - attack_delivered / attack_total : 1.0;
  }
  [[nodiscard]] double benign_loss_fraction() const {
    return benign_total > 0.0 ? benign_dropped / benign_total : 0.0;
  }
  [[nodiscard]] double hardened_fraction() const {
    return total_minutes > 0.0 ? hardened_minutes / total_minutes : 0.0;
  }
};

/// Runs the policy against the target's traffic over
/// [start, start + minutes * 60).
[[nodiscard]] SimulationReport simulate(const TargetTrafficModel& traffic,
                                        ControlPolicy& policy,
                                        trace::EpochSeconds start,
                                        std::size_t minutes,
                                        const SimulationOptions& opts = {});

}  // namespace acbm::sdnsim
