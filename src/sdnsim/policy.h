// Control-plane policies for the Fig. 5 use cases: when to flip the
// middlebox chain to firewall-first and which source ASes to divert to the
// scrubber. Static, reactive (detect-then-respond), and predictive
// (schedule built from the adversary model's forecasts) variants.
#pragma once

#include <memory>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "sdnsim/middlebox.h"

namespace acbm::sdnsim {

struct PolicyDecision {
  ChainOrder order = ChainOrder::kLoadBalancerFirst;
  std::vector<net::Asn> diverted;  ///< AS filter rules in force.
};

/// A control plane: decides each minute from what was observable the minute
/// before (no oracle access to the current minute).
class ControlPolicy {
 public:
  virtual ~ControlPolicy() = default;
  [[nodiscard]] virtual PolicyDecision decide(
      trace::EpochSeconds minute_start, const MinuteTraffic& previous) = 0;
  [[nodiscard]] virtual std::string_view name() const = 0;
};

/// Fixed configuration, never diverts.
class StaticPolicy final : public ControlPolicy {
 public:
  StaticPolicy(ChainOrder order, std::string_view name)
      : order_(order), name_(name) {}
  [[nodiscard]] PolicyDecision decide(trace::EpochSeconds,
                                      const MinuteTraffic&) override {
    return {order_, {}};
  }
  [[nodiscard]] std::string_view name() const override { return name_; }

 private:
  ChainOrder order_;
  std::string_view name_;
};

struct ReactiveOptions {
  /// Detection: total observed traffic above this multiple of the benign
  /// baseline counts as an anomaly.
  double threshold_factor = 1.6;
  /// Consecutive anomalous minutes before hardening (detection latency).
  std::size_t detection_delay_min = 5;
  /// Quiet minutes before reverting to the peacetime order.
  std::size_t cooldown_min = 15;
  /// Per-AS diversion rule installed when an AS exceeds this multiple of
  /// its baseline share during an anomaly.
  double rule_factor = 3.0;
  std::size_t max_rules = 24;
};

/// Detect-then-respond: hardens after sustained anomaly, diverts the ASes
/// that are visibly over their baseline. Knows only aggregate traffic, not
/// the attack/benign split.
class ReactivePolicy final : public ControlPolicy {
 public:
  ReactivePolicy(std::unordered_map<net::Asn, double> benign_baseline,
                 ReactiveOptions opts = {});
  [[nodiscard]] PolicyDecision decide(trace::EpochSeconds minute_start,
                                      const MinuteTraffic& previous) override;
  [[nodiscard]] std::string_view name() const override { return "reactive"; }

 private:
  std::unordered_map<net::Asn, double> baseline_;
  double baseline_total_ = 0.0;
  ReactiveOptions opts_;
  std::size_t anomalous_streak_ = 0;
  std::size_t quiet_streak_ = 0;
  bool hardened_ = false;
  std::vector<net::Asn> rules_;
};

/// A prediction-driven schedule: hardening windows with pre-installed
/// diversion rules, built ahead of time from the adversary model's
/// (causal) forecasts of each upcoming attack.
struct PredictedWindow {
  trace::EpochSeconds start = 0;
  trace::EpochSeconds end = 0;
  std::vector<net::Asn> rules;
};

class PredictivePolicy final : public ControlPolicy {
 public:
  explicit PredictivePolicy(std::vector<PredictedWindow> schedule);
  [[nodiscard]] PolicyDecision decide(trace::EpochSeconds minute_start,
                                      const MinuteTraffic& previous) override;
  [[nodiscard]] std::string_view name() const override { return "predictive"; }

 private:
  std::vector<PredictedWindow> schedule_;  // Sorted by start.
};

}  // namespace acbm::sdnsim
