// Traffic model for the SDN use-case simulations (paper §VII-B / Fig. 5):
// per-minute aggregated flows toward a protected target, split by source AS
// into attack traffic (derived from the trace's attack records: each bot
// contributes a constant rate for the attack's duration) and benign
// background traffic (stationary per-AS baseline with diurnal modulation).
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "net/ip_space.h"
#include "stats/rng.h"
#include "trace/dataset.h"

namespace acbm::sdnsim {

/// Aggregated traffic arriving in one minute, split by source AS.
struct MinuteTraffic {
  /// Units: flow-rate units (think Mbps); attack + benign per source AS.
  std::unordered_map<net::Asn, double> attack;
  std::unordered_map<net::Asn, double> benign;

  [[nodiscard]] double total_attack() const;
  [[nodiscard]] double total_benign() const;
};

struct TrafficOptions {
  double rate_per_bot = 1.0;        ///< Attack units each bot contributes.
  double benign_base_rate = 200.0;  ///< Mean benign units per minute, total.
  /// Benign diurnal swing (fraction of base, peak at 14:00 UTC).
  double benign_diurnal_amplitude = 0.4;
  std::size_t benign_source_ases = 30;
  std::uint64_t seed = 1;
};

/// Generates the per-minute traffic a single target AS receives over
/// [start, start + minutes), combining the dataset's attacks on that target
/// with synthetic benign background traffic.
class TargetTrafficModel {
 public:
  TargetTrafficModel(const trace::Dataset& dataset,
                     const net::IpToAsnMap& ip_map, net::Asn target,
                     const TrafficOptions& opts);

  /// Traffic in the minute beginning at `minute_start`.
  [[nodiscard]] MinuteTraffic minute(trace::EpochSeconds minute_start) const;

  /// All attacks on the target overlapping [start, end).
  [[nodiscard]] std::vector<std::size_t> attacks_overlapping(
      trace::EpochSeconds start, trace::EpochSeconds end) const;

  [[nodiscard]] net::Asn target() const noexcept { return target_; }

  /// Per-AS benign baseline rates (what a reactive operator knows).
  [[nodiscard]] const std::unordered_map<net::Asn, double>& benign_baseline()
      const noexcept {
    return benign_rates_;
  }

 private:
  struct ActiveAttack {
    trace::EpochSeconds start = 0;
    trace::EpochSeconds end = 0;
    std::unordered_map<net::Asn, double> rate_by_as;
    std::size_t attack_index = 0;
  };

  const trace::Dataset* dataset_;
  net::Asn target_ = 0;
  TrafficOptions opts_;
  std::vector<ActiveAttack> attacks_;  // Sorted by start.
  std::unordered_map<net::Asn, double> benign_rates_;  // Per-AS baseline.
};

}  // namespace acbm::sdnsim
