#include "sdnsim/simulator.h"

namespace acbm::sdnsim {

SimulationReport simulate(const TargetTrafficModel& traffic,
                          ControlPolicy& policy, trace::EpochSeconds start,
                          std::size_t minutes, const SimulationOptions& opts) {
  SimulationReport report;
  MinuteTraffic previous;  // Empty before the first minute.
  ChainOrder previous_order = ChainOrder::kLoadBalancerFirst;
  bool first_minute = true;

  for (std::size_t m = 0; m < minutes; ++m) {
    const trace::EpochSeconds t = start + static_cast<trace::EpochSeconds>(m) * 60;
    const PolicyDecision decision = policy.decide(t, previous);
    const MinuteTraffic current = traffic.minute(t);

    // Diversion first: traffic from filtered ASes takes the scrubbing path.
    const ScrubOutcome scrub =
        process_with_diversion(current, decision.diverted, opts.scrubber);
    // The chain then processes what still heads for the target.
    MinuteTraffic to_chain;
    // process_minute only needs class totals; feed the scrubbed residue as
    // single-entry maps (AS identity no longer matters past diversion).
    to_chain.attack[0] = scrub.attack_delivered;
    to_chain.benign[0] = scrub.benign_delivered;
    const ChainOutcome chain =
        process_minute(to_chain, decision.order, opts.middlebox);

    double benign_dropped_now = scrub.benign_dropped + chain.benign_dropped;
    double benign_delivered_now = chain.benign_delivered;
    if (!first_minute && decision.order != previous_order) {
      ++report.order_switches;
      const double interruption =
          benign_delivered_now * opts.interruption_benign_loss;
      benign_delivered_now -= interruption;
      benign_dropped_now += interruption;
    }

    report.attack_total += current.total_attack();
    report.attack_delivered += chain.attack_delivered;
    report.benign_total += current.total_benign();
    report.benign_delivered += benign_delivered_now;
    report.benign_dropped += benign_dropped_now;
    if (decision.order == ChainOrder::kFirewallFirst) {
      report.hardened_minutes += 1.0;
    }
    report.rules_minutes += decision.diverted.size();
    report.total_minutes += 1.0;

    previous = current;
    previous_order = decision.order;
    first_minute = false;
  }
  return report;
}

}  // namespace acbm::sdnsim
