// Quickstart: build a simulated Internet + DDoS trace, fit the full
// adversary-centric model, and predict the next attack on the most-attacked
// network — magnitude, duration, launch time, and source-AS distribution.
//
//   $ ./quickstart [seed]
#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "core/pipeline.h"
#include "trace/world.h"

int main(int argc, char** argv) {
  using namespace acbm;
  const std::uint64_t seed =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 42;

  // 1. A simulated world: tiered AS topology, address plan, and a verified
  //    attack trace driven by 10 botnet families (see DESIGN.md).
  std::printf("building world (seed %llu)...\n",
              static_cast<unsigned long long>(seed));
  const trace::World world = trace::build_world(trace::small_world_options(seed));
  std::printf("  %zu ASes, %zu attacks by %zu families\n\n",
              world.topology.graph.as_count(), world.dataset.size(),
              world.dataset.family_names().size());

  // 2. Fit the temporal (ARIMA), spatial (NAR), and spatiotemporal
  //    (model-tree) components on the first 80% of the trace.
  core::SpatiotemporalOptions opts;
  opts.spatial.grid_search = false;  // Faster; grid search is the default.
  core::AdversaryModel model(opts);
  const auto [train, test] = world.dataset.split(0.8);
  std::printf("fitting on %zu attacks...\n", train.size());
  model.fit(train, world.ip_map);

  // 3. Predict the next attack on the busiest target network.
  const net::Asn target = train.target_asns().front();
  const auto prediction = model.predict_next_attack(target);
  if (!prediction) {
    std::printf("no history for AS%u\n", target);
    return 1;
  }
  std::printf("\nprediction for target AS%u:\n", target);
  std::printf("  expected family    : %s\n",
              train.family_names()[prediction->assumed_family].c_str());
  std::printf("  expected magnitude : %.0f bots\n", prediction->magnitude);
  std::printf("  expected duration  : %.0f s (%.1f min)\n",
              prediction->duration_s, prediction->duration_s / 60.0);
  std::printf("  expected launch    : day %.1f, hour %.1f\n",
              prediction->day, prediction->hour);
  std::printf("  top predicted source ASes:\n");
  std::vector<std::pair<net::Asn, double>> sources(
      prediction->source_distribution.begin(),
      prediction->source_distribution.end());
  std::sort(sources.begin(), sources.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  for (std::size_t i = 0; i < sources.size() && i < 5; ++i) {
    if (sources[i].first == 0) {
      std::printf("    (unattributed)  %.1f%%\n", 100.0 * sources[i].second);
    } else {
      std::printf("    AS%-10u %.1f%%\n", sources[i].first,
                  100.0 * sources[i].second);
    }
  }

  // 4. Compare with what actually happened in the held-out 20%.
  const auto actual = test.attacks_on_asn(target);
  if (!actual.empty()) {
    const trace::Attack& next = test.attacks()[actual.front()];
    const trace::DayHour dh =
        trace::decompose_timestamp(next.start, test.window_start());
    std::printf("\nactual next attack on AS%u:\n", target);
    std::printf("  family    : %s\n",
                test.family_names()[next.family].c_str());
    std::printf("  magnitude : %zu bots\n", next.magnitude());
    std::printf("  duration  : %.0f s\n", next.duration_s);
    std::printf("  launch    : day %d, hour %d\n", dh.day, dh.hour);
  }
  return 0;
}
