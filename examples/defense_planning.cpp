// Use case (paper §VII-B): proactive defense provisioning. A mitigation
// provider protecting the 5 most-attacked networks uses the model's
// magnitude + launch-time predictions to pre-provision scrubbing capacity,
// and we compare the cost/coverage against a reactive strategy that only
// scales up after an attack is already underway and a static strategy that
// permanently over-provisions.
//
//   $ ./defense_planning [seed]
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "core/pipeline.h"
#include "trace/world.h"

namespace {

struct Strategy {
  const char* name;
  double capacity_hours = 0.0;  ///< Provisioned capacity-hours (cost).
  double absorbed = 0.0;        ///< Attack bot-hours absorbed in time.
  std::size_t attacks = 0;
  std::size_t covered = 0;      ///< Attacks fully absorbed from the start.
};

}  // namespace

int main(int argc, char** argv) {
  using namespace acbm;
  const std::uint64_t seed =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 7;
  const trace::World world = trace::build_world(trace::small_world_options(seed));
  const auto [train, test] = world.dataset.split(0.8);

  core::SpatiotemporalOptions opts;
  opts.spatial.grid_search = false;
  core::AdversaryModel model(opts);
  std::printf("fitting on %zu attacks...\n", train.size());
  model.fit(train, world.ip_map);

  std::vector<net::Asn> protected_asns = train.target_asns();
  protected_asns.resize(std::min<std::size_t>(protected_asns.size(), 5));

  Strategy proactive{"proactive (model-guided)"};
  Strategy reactive{"reactive (scale on attack)"};
  Strategy fixed{"static (always max)"};

  for (net::Asn asn : protected_asns) {
    const auto prediction = model.predict_next_attack(asn);
    const auto attacks = test.attacks_on_asn(asn);
    if (!prediction || attacks.empty()) continue;
    const trace::Attack& next = test.attacks()[attacks.front()];
    const double actual_bots = static_cast<double>(next.magnitude());
    const double duration_h = next.duration_s / 3600.0;

    // Proactive: provision predicted capacity for a 12 h window around the
    // predicted start. Full absorption if the window covers the real start
    // and capacity suffices; otherwise partial by the capacity ratio.
    {
      const double window_h = 12.0;
      const double capacity = prediction->magnitude * 1.2;  // 20% headroom.
      proactive.capacity_hours += capacity * window_h;
      const double gap_h = std::abs(static_cast<double>(next.start) -
                                    static_cast<double>(prediction->start)) /
                           3600.0;
      const bool in_window = gap_h <= window_h / 2.0;
      const double ratio = std::min(1.0, capacity / actual_bots);
      if (in_window) {
        proactive.absorbed += ratio * actual_bots * duration_h;
        if (ratio >= 1.0) ++proactive.covered;
      }
      ++proactive.attacks;
    }

    // Reactive: detection + scale-up lag of 15 minutes, then exact-size
    // capacity for the rest of the attack.
    {
      const double lag_h = 0.25;
      const double effective_h = std::max(0.0, duration_h - lag_h);
      reactive.capacity_hours += actual_bots * effective_h;
      reactive.absorbed += actual_bots * effective_h;
      ++reactive.attacks;
      if (effective_h >= duration_h) ++reactive.covered;
    }

    // Static: maximum historical magnitude provisioned around the clock for
    // the whole test window.
    {
      double max_mag = 1.0;
      for (std::size_t idx : train.attacks_on_asn(asn)) {
        max_mag = std::max(
            max_mag, static_cast<double>(train.attacks()[idx].magnitude()));
      }
      const double window_h =
          static_cast<double>(test.attacks().back().start -
                              test.attacks().front().start) /
          3600.0;
      fixed.capacity_hours += max_mag * window_h;
      fixed.absorbed += std::min(max_mag, actual_bots) * duration_h;
      ++fixed.attacks;
      if (max_mag >= actual_bots) ++fixed.covered;
    }
  }

  std::printf("\n%-28s %16s %16s %12s\n", "strategy", "capacity-hours",
              "bot-hours absorbed", "full cover");
  for (const Strategy* s : {&proactive, &reactive, &fixed}) {
    std::printf("%-28s %16.0f %16.1f %9zu/%zu\n", s->name, s->capacity_hours,
                s->absorbed, s->covered, s->attacks);
  }
  std::printf(
      "\nefficiency (absorbed per provisioned capacity-hour):\n");
  for (const Strategy* s : {&proactive, &reactive, &fixed}) {
    std::printf("  %-28s %.4f\n", s->name,
                s->capacity_hours > 0 ? s->absorbed / s->capacity_hours : 0.0);
  }
  std::printf(
      "\nProactive provisioning absorbs attacks from second zero (reactive\n"
      "loses the scale-up lag) at a fraction of the static strategy's cost\n"
      "— the paper's §VII-B argument, quantified.\n");
  return 0;
}
