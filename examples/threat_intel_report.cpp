// Threat-intel report: what a cloud mitigation provider (§VII-B) would hand
// its customers each week — per-family activity trends with model fit
// diagnostics, entropy-based early-warning status per protected network,
// and the predicted next attack (time, size, duration, sources) for each.
//
//   $ ./threat_intel_report [seed]
#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "core/detection.h"
#include "core/pipeline.h"
#include "sdnsim/traffic.h"
#include "trace/world.h"
#include "ts/diagnostics.h"

int main(int argc, char** argv) {
  using namespace acbm;
  const std::uint64_t seed =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 21;
  const trace::World world = trace::build_world(trace::small_world_options(seed));
  const auto [history, upcoming] = world.dataset.split(0.8);

  std::printf("=== ACBM THREAT INTELLIGENCE REPORT ===\n");
  std::printf("observation window: %zu verified attacks, %zu families\n\n",
              history.size(), history.family_names().size());

  // --- Section 1: family activity & model fit quality -------------------
  std::printf("-- botnet family activity --\n");
  std::printf("%-12s %9s %7s   %s\n", "family", "avg/day", "trend",
              "ARIMA residual diagnosis (Ljung-Box)");
  for (std::uint32_t f = 0; f < history.family_names().size(); ++f) {
    const core::FamilySeries series =
        core::extract_family_series(history, f, world.ip_map, nullptr);
    if (series.magnitude.size() < 60) continue;
    const trace::FamilyActivityStats stats = trace::activity_stats(history, f);

    // Trend: compare the last quarter's rate to the overall average.
    const std::size_t n = series.day.size();
    const double last_day = series.day.back();
    std::size_t recent = 0;
    for (std::size_t i = 0; i < n; ++i) {
      if (series.day[i] > last_day - 14.0) ++recent;
    }
    const double recent_rate = static_cast<double>(recent) / 14.0;
    const char* trend = recent_rate > 1.2 * stats.avg_per_day ? "RISING"
                        : recent_rate < 0.8 * stats.avg_per_day ? "falling"
                                                                : "stable";

    core::TemporalModel model;
    model.fit(series);
    std::string diagnosis = "n/a (mean fallback)";
    if (const auto& arima = model.model(core::TemporalSeries::kMagnitude)) {
      const auto innov = arima->arma().innovations(series.magnitude);
      const std::vector<double> resid(innov.begin() + 10, innov.end());
      const ts::LjungBoxResult lb = ts::ljung_box(resid, 10, 3);
      char buffer[64];
      std::snprintf(buffer, sizeof buffer, "Q=%.1f p=%.3f %s", lb.statistic,
                    lb.p_value,
                    lb.p_value > 0.05 ? "(white residuals)" : "(structure left)");
      diagnosis = buffer;
    }
    std::printf("%-12s %9.2f %7s   %s\n", history.family_names()[f].c_str(),
                stats.avg_per_day, trend, diagnosis.c_str());
  }

  // --- Section 2: per-network early-warning + forecast ------------------
  core::SpatiotemporalOptions opts;
  opts.spatial.grid_search = false;
  core::AdversaryModel model(opts);
  std::printf("\nfitting predictive models...\n");
  model.fit(history, world.ip_map);

  std::vector<net::Asn> protected_asns = history.target_asns();
  protected_asns.resize(std::min<std::size_t>(protected_asns.size(), 5));

  std::printf("\n-- protected networks --\n");
  for (net::Asn asn : protected_asns) {
    const auto pred = model.predict_next_attack(asn);
    if (!pred) continue;
    std::printf("AS%u:\n", asn);
    std::printf("  next attack  : day %.0f, %02.0f:00 UTC (family %s)\n",
                pred->day, pred->hour,
                history.family_names()[pred->assumed_family].c_str());
    std::printf("  expected size: %.0f bots for %.0f min\n", pred->magnitude,
                pred->duration_s / 60.0);
    std::vector<std::pair<net::Asn, double>> sources(
        pred->source_distribution.begin(), pred->source_distribution.end());
    std::sort(sources.begin(), sources.end(),
              [](const auto& a, const auto& b) { return a.second > b.second; });
    std::printf("  watch list   : ");
    for (std::size_t i = 0; i < sources.size() && i < 4; ++i) {
      if (sources[i].first != 0) {
        std::printf("AS%u (%.0f%%)  ", sources[i].first,
                    100.0 * sources[i].second);
      }
    }
    std::printf("\n");

    // Early-warning calibration on the live feed: warm the entropy
    // detector on quiet traffic, report its readiness.
    const sdnsim::TargetTrafficModel traffic(world.dataset, world.ip_map, asn,
                                             {});
    core::EntropyDetector detector({.warmup = 120});
    const trace::EpochSeconds quiet =
        world.dataset.window_start() - 7 * 86400;
    for (int m = 0; m < 150; ++m) {
      const auto minute = traffic.minute(quiet + m * 60);
      (void)detector.observe(minute.benign);
    }
    std::printf("  early warning: entropy detector %s (baseline H=%.2f)\n",
                detector.armed() ? "ARMED" : "warming up",
                detector.last_entropy());
  }
  return 0;
}
