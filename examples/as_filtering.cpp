// Use case (paper Fig. 5a): SDN AS-based filtering. The control plane asks
// the model where the next attack on a protected network will come from and
// installs diversion rules for those source ASes; when the attack arrives
// we measure how much of it is steered through the scrubbing path and how
// many benign ASes were caught in the diversion.
//
//   $ ./as_filtering [seed]
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <unordered_set>
#include <vector>

#include "core/pipeline.h"
#include "trace/world.h"

int main(int argc, char** argv) {
  using namespace acbm;
  const std::uint64_t seed =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 11;
  const trace::World world = trace::build_world(trace::small_world_options(seed));
  const auto [train, test] = world.dataset.split(0.8);

  core::SpatiotemporalOptions opts;
  opts.spatial.grid_search = false;
  core::AdversaryModel model(opts);
  std::printf("fitting on %zu attacks...\n\n", train.size());
  model.fit(train, world.ip_map);

  std::printf("%-10s %-12s %8s %10s %12s\n", "target", "next family",
              "rules", "caught", "collateral");

  double total_caught = 0.0;
  double total_rules = 0.0;
  std::size_t evaluated = 0;
  std::vector<net::Asn> targets = train.target_asns();
  targets.resize(std::min<std::size_t>(targets.size(), 10));

  for (net::Asn asn : targets) {
    const auto prediction = model.predict_next_attack(asn);
    const auto attacks = test.attacks_on_asn(asn);
    if (!prediction || attacks.empty()) continue;

    // Install diversion rules for the ASes carrying 90% of predicted mass.
    std::vector<std::pair<net::Asn, double>> ranked;
    for (const auto& [src, share] : prediction->source_distribution) {
      if (src != 0) ranked.emplace_back(src, share);
    }
    std::sort(ranked.begin(), ranked.end(),
              [](const auto& a, const auto& b) { return a.second > b.second; });
    std::unordered_set<net::Asn> rules;
    double mass = 0.0;
    for (const auto& [src, share] : ranked) {
      if (mass >= 0.9) break;
      rules.insert(src);
      mass += share;
    }

    // The actual next attack: fraction of its bots diverted.
    const trace::Attack& next = test.attacks()[attacks.front()];
    std::size_t diverted = 0;
    for (const net::Ipv4& bot : next.bots) {
      const auto src = world.ip_map.lookup(bot);
      if (src && rules.contains(*src)) ++diverted;
    }
    const double caught = next.bots.empty()
                              ? 0.0
                              : static_cast<double>(diverted) /
                                    static_cast<double>(next.bots.size());
    // Collateral: diverted ASes that contributed no attack traffic.
    std::unordered_set<net::Asn> actual_sources;
    for (const net::Ipv4& bot : next.bots) {
      if (const auto src = world.ip_map.lookup(bot)) actual_sources.insert(*src);
    }
    std::size_t collateral = 0;
    for (net::Asn rule : rules) {
      if (!actual_sources.contains(rule)) ++collateral;
    }

    std::printf("AS%-8u %-12s %8zu %9.1f%% %12zu\n", asn,
                train.family_names()[prediction->assumed_family].c_str(),
                rules.size(), 100.0 * caught, collateral);
    total_caught += caught;
    total_rules += static_cast<double>(rules.size());
    ++evaluated;
  }

  if (evaluated > 0) {
    std::printf("\naverage: %.1f%% of attack traffic pre-emptively diverted "
                "with %.1f rules per target\n",
                100.0 * total_caught / static_cast<double>(evaluated),
                total_rules / static_cast<double>(evaluated));
  }
  return 0;
}
