// Family explorer: the §III feature analysis as a command-line report —
// per-family activity statistics (Table I style), launch-hour profiles,
// multistage chain structure, and source-AS concentration (A^s).
//
//   $ ./family_explorer [seed]
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "core/features.h"
#include "net/routing.h"
#include "stats/descriptive.h"
#include "trace/generator.h"
#include "trace/world.h"

int main(int argc, char** argv) {
  using namespace acbm;
  const std::uint64_t seed =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 3;
  const trace::World world = trace::build_world(trace::small_world_options(seed));
  const trace::Dataset& ds = world.dataset;
  std::printf("trace: %zu attacks over %zu families\n\n", ds.size(),
              ds.family_names().size());

  // Activity levels (Table I's three statistics).
  std::printf("%-12s %10s %8s %6s %10s %10s\n", "family", "avg/day", "days",
              "CV", "med. bots", "med. dur");
  for (std::uint32_t f = 0; f < ds.family_names().size(); ++f) {
    const trace::FamilyActivityStats stats = trace::activity_stats(ds, f);
    const core::FamilySeries series =
        core::extract_family_series(ds, f, world.ip_map, nullptr);
    const double med_bots =
        series.magnitude.empty() ? 0.0 : stats::median(series.magnitude);
    const double med_dur =
        series.duration_s.empty() ? 0.0 : stats::median(series.duration_s);
    std::printf("%-12s %10.2f %8zu %6.2f %10.0f %9.0fs\n",
                ds.family_names()[f].c_str(), stats.avg_per_day,
                stats.active_days, stats.cv, med_bots, med_dur);
  }

  // Launch-hour profile of the three busiest families.
  net::ValleyFreeDistance distance(world.topology.graph);
  for (const char* name : {"DirtJumper", "Pandora", "BlackEnergy"}) {
    const std::uint32_t f = ds.family_index(name);
    const core::FamilySeries series =
        core::extract_family_series(ds, f, world.ip_map, &distance);
    std::vector<int> hours(24, 0);
    for (double h : series.hour) ++hours[static_cast<int>(h) % 24];
    const int peak = *std::max_element(hours.begin(), hours.end());
    std::printf("\n%s launch hours (UTC):\n", name);
    for (int h = 0; h < 24; ++h) {
      std::printf("  %02d:00 %5d |", h, hours[h]);
      for (int b = 0; b < 40 * hours[h] / std::max(peak, 1); ++b) {
        std::fputc('#', stdout);
      }
      std::fputc('\n', stdout);
    }
    std::printf("  A^s source concentration: mean %.4f, sd %.4f\n",
                stats::mean(series.source_coeff),
                stats::stddev(series.source_coeff));
  }

  // Multistage chains (30 s - 24 h same-target windows, §III-A2).
  const auto chains = core::multistage_chains(ds);
  std::size_t multi = 0;
  std::size_t longest = 0;
  for (const auto& chain : chains) {
    if (chain.size() > 1) ++multi;
    longest = std::max(longest, chain.size());
  }
  std::printf("\nmultistage structure: %zu chains, %zu with 2+ stages, "
              "longest %zu stages\n",
              chains.size(), multi, longest);
  return 0;
}
