file(REMOVE_RECURSE
  "CMakeFiles/threat_intel_report.dir/threat_intel_report.cpp.o"
  "CMakeFiles/threat_intel_report.dir/threat_intel_report.cpp.o.d"
  "threat_intel_report"
  "threat_intel_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/threat_intel_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
