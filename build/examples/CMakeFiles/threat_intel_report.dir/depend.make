# Empty dependencies file for threat_intel_report.
# This may be replaced when dependencies are built.
