# Empty dependencies file for defense_planning.
# This may be replaced when dependencies are built.
