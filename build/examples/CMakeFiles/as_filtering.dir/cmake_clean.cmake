file(REMOVE_RECURSE
  "CMakeFiles/as_filtering.dir/as_filtering.cpp.o"
  "CMakeFiles/as_filtering.dir/as_filtering.cpp.o.d"
  "as_filtering"
  "as_filtering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/as_filtering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
