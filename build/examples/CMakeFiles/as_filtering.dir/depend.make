# Empty dependencies file for as_filtering.
# This may be replaced when dependencies are built.
