# Empty compiler generated dependencies file for test_nn_nar.
# This may be replaced when dependencies are built.
