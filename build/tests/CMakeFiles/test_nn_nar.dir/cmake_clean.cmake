file(REMOVE_RECURSE
  "CMakeFiles/test_nn_nar.dir/nn/nar_test.cpp.o"
  "CMakeFiles/test_nn_nar.dir/nn/nar_test.cpp.o.d"
  "test_nn_nar"
  "test_nn_nar.pdb"
  "test_nn_nar[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_nn_nar.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
