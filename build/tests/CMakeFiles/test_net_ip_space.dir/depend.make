# Empty dependencies file for test_net_ip_space.
# This may be replaced when dependencies are built.
