file(REMOVE_RECURSE
  "CMakeFiles/test_net_ip_space.dir/net/ip_space_test.cpp.o"
  "CMakeFiles/test_net_ip_space.dir/net/ip_space_test.cpp.o.d"
  "test_net_ip_space"
  "test_net_ip_space.pdb"
  "test_net_ip_space[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_net_ip_space.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
