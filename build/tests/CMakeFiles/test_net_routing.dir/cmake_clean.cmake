file(REMOVE_RECURSE
  "CMakeFiles/test_net_routing.dir/net/routing_test.cpp.o"
  "CMakeFiles/test_net_routing.dir/net/routing_test.cpp.o.d"
  "test_net_routing"
  "test_net_routing.pdb"
  "test_net_routing[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_net_routing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
