file(REMOVE_RECURSE
  "CMakeFiles/test_ts_diagnostics.dir/ts/diagnostics_test.cpp.o"
  "CMakeFiles/test_ts_diagnostics.dir/ts/diagnostics_test.cpp.o.d"
  "test_ts_diagnostics"
  "test_ts_diagnostics.pdb"
  "test_ts_diagnostics[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ts_diagnostics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
