file(REMOVE_RECURSE
  "CMakeFiles/test_sdnsim_middlebox.dir/sdnsim/middlebox_test.cpp.o"
  "CMakeFiles/test_sdnsim_middlebox.dir/sdnsim/middlebox_test.cpp.o.d"
  "test_sdnsim_middlebox"
  "test_sdnsim_middlebox.pdb"
  "test_sdnsim_middlebox[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sdnsim_middlebox.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
