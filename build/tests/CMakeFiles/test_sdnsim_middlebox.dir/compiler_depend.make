# Empty compiler generated dependencies file for test_sdnsim_middlebox.
# This may be replaced when dependencies are built.
