file(REMOVE_RECURSE
  "CMakeFiles/test_trace_generator.dir/trace/generator_test.cpp.o"
  "CMakeFiles/test_trace_generator.dir/trace/generator_test.cpp.o.d"
  "test_trace_generator"
  "test_trace_generator.pdb"
  "test_trace_generator[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_trace_generator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
