file(REMOVE_RECURSE
  "CMakeFiles/test_net_gao.dir/net/gao_test.cpp.o"
  "CMakeFiles/test_net_gao.dir/net/gao_test.cpp.o.d"
  "test_net_gao"
  "test_net_gao.pdb"
  "test_net_gao[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_net_gao.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
