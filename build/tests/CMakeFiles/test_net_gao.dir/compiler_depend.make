# Empty compiler generated dependencies file for test_net_gao.
# This may be replaced when dependencies are built.
