# Empty compiler generated dependencies file for test_ts_differencing.
# This may be replaced when dependencies are built.
