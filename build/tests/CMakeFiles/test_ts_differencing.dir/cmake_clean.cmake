file(REMOVE_RECURSE
  "CMakeFiles/test_ts_differencing.dir/ts/differencing_test.cpp.o"
  "CMakeFiles/test_ts_differencing.dir/ts/differencing_test.cpp.o.d"
  "test_ts_differencing"
  "test_ts_differencing.pdb"
  "test_ts_differencing[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ts_differencing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
