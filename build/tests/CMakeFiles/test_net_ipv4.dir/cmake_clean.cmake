file(REMOVE_RECURSE
  "CMakeFiles/test_net_ipv4.dir/net/ipv4_test.cpp.o"
  "CMakeFiles/test_net_ipv4.dir/net/ipv4_test.cpp.o.d"
  "test_net_ipv4"
  "test_net_ipv4.pdb"
  "test_net_ipv4[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_net_ipv4.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
