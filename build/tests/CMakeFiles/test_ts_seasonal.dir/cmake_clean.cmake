file(REMOVE_RECURSE
  "CMakeFiles/test_ts_seasonal.dir/ts/seasonal_test.cpp.o"
  "CMakeFiles/test_ts_seasonal.dir/ts/seasonal_test.cpp.o.d"
  "test_ts_seasonal"
  "test_ts_seasonal.pdb"
  "test_ts_seasonal[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ts_seasonal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
