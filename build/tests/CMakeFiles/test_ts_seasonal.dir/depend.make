# Empty dependencies file for test_ts_seasonal.
# This may be replaced when dependencies are built.
