file(REMOVE_RECURSE
  "CMakeFiles/test_sdnsim_traffic.dir/sdnsim/traffic_test.cpp.o"
  "CMakeFiles/test_sdnsim_traffic.dir/sdnsim/traffic_test.cpp.o.d"
  "test_sdnsim_traffic"
  "test_sdnsim_traffic.pdb"
  "test_sdnsim_traffic[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sdnsim_traffic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
