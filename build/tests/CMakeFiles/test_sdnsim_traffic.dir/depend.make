# Empty dependencies file for test_sdnsim_traffic.
# This may be replaced when dependencies are built.
