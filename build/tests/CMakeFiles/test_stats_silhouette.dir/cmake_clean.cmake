file(REMOVE_RECURSE
  "CMakeFiles/test_stats_silhouette.dir/stats/silhouette_test.cpp.o"
  "CMakeFiles/test_stats_silhouette.dir/stats/silhouette_test.cpp.o.d"
  "test_stats_silhouette"
  "test_stats_silhouette.pdb"
  "test_stats_silhouette[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_stats_silhouette.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
