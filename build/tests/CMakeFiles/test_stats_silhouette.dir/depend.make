# Empty dependencies file for test_stats_silhouette.
# This may be replaced when dependencies are built.
