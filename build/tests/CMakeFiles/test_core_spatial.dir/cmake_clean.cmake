file(REMOVE_RECURSE
  "CMakeFiles/test_core_spatial.dir/core/spatial_model_test.cpp.o"
  "CMakeFiles/test_core_spatial.dir/core/spatial_model_test.cpp.o.d"
  "test_core_spatial"
  "test_core_spatial.pdb"
  "test_core_spatial[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_spatial.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
