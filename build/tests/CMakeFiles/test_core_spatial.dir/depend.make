# Empty dependencies file for test_core_spatial.
# This may be replaced when dependencies are built.
