# Empty compiler generated dependencies file for test_ts_ar.
# This may be replaced when dependencies are built.
