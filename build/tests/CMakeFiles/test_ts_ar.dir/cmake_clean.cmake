file(REMOVE_RECURSE
  "CMakeFiles/test_ts_ar.dir/ts/ar_test.cpp.o"
  "CMakeFiles/test_ts_ar.dir/ts/ar_test.cpp.o.d"
  "test_ts_ar"
  "test_ts_ar.pdb"
  "test_ts_ar[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ts_ar.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
