# Empty compiler generated dependencies file for test_tree_cart.
# This may be replaced when dependencies are built.
