file(REMOVE_RECURSE
  "CMakeFiles/test_tree_cart.dir/tree/cart_test.cpp.o"
  "CMakeFiles/test_tree_cart.dir/tree/cart_test.cpp.o.d"
  "test_tree_cart"
  "test_tree_cart.pdb"
  "test_tree_cart[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tree_cart.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
