file(REMOVE_RECURSE
  "CMakeFiles/test_trace_dataset.dir/trace/dataset_test.cpp.o"
  "CMakeFiles/test_trace_dataset.dir/trace/dataset_test.cpp.o.d"
  "test_trace_dataset"
  "test_trace_dataset.pdb"
  "test_trace_dataset[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_trace_dataset.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
