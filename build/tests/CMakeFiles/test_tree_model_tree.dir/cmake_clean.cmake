file(REMOVE_RECURSE
  "CMakeFiles/test_tree_model_tree.dir/tree/model_tree_test.cpp.o"
  "CMakeFiles/test_tree_model_tree.dir/tree/model_tree_test.cpp.o.d"
  "test_tree_model_tree"
  "test_tree_model_tree.pdb"
  "test_tree_model_tree[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tree_model_tree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
