# Empty compiler generated dependencies file for test_stats_ols.
# This may be replaced when dependencies are built.
