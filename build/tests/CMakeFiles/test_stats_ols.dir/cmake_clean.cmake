file(REMOVE_RECURSE
  "CMakeFiles/test_stats_ols.dir/stats/ols_test.cpp.o"
  "CMakeFiles/test_stats_ols.dir/stats/ols_test.cpp.o.d"
  "test_stats_ols"
  "test_stats_ols.pdb"
  "test_stats_ols[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_stats_ols.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
