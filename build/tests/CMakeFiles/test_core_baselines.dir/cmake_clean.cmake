file(REMOVE_RECURSE
  "CMakeFiles/test_core_baselines.dir/core/baselines_test.cpp.o"
  "CMakeFiles/test_core_baselines.dir/core/baselines_test.cpp.o.d"
  "test_core_baselines"
  "test_core_baselines.pdb"
  "test_core_baselines[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
