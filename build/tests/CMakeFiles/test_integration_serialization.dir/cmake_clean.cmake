file(REMOVE_RECURSE
  "CMakeFiles/test_integration_serialization.dir/integration/serialization_test.cpp.o"
  "CMakeFiles/test_integration_serialization.dir/integration/serialization_test.cpp.o.d"
  "test_integration_serialization"
  "test_integration_serialization.pdb"
  "test_integration_serialization[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_integration_serialization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
