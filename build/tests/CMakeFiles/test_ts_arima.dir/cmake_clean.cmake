file(REMOVE_RECURSE
  "CMakeFiles/test_ts_arima.dir/ts/arima_test.cpp.o"
  "CMakeFiles/test_ts_arima.dir/ts/arima_test.cpp.o.d"
  "test_ts_arima"
  "test_ts_arima.pdb"
  "test_ts_arima[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ts_arima.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
