# Empty compiler generated dependencies file for test_sdnsim_simulator.
# This may be replaced when dependencies are built.
