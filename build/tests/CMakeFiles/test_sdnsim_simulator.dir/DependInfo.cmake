
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/sdnsim/simulator_test.cpp" "tests/CMakeFiles/test_sdnsim_simulator.dir/sdnsim/simulator_test.cpp.o" "gcc" "tests/CMakeFiles/test_sdnsim_simulator.dir/sdnsim/simulator_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cli/CMakeFiles/acbm_cli.dir/DependInfo.cmake"
  "/root/repo/build/src/sdnsim/CMakeFiles/acbm_sdnsim.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/acbm_core.dir/DependInfo.cmake"
  "/root/repo/build/src/ts/CMakeFiles/acbm_ts.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/acbm_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/tree/CMakeFiles/acbm_tree.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/acbm_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/acbm_net.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/acbm_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
