file(REMOVE_RECURSE
  "CMakeFiles/test_sdnsim_simulator.dir/sdnsim/simulator_test.cpp.o"
  "CMakeFiles/test_sdnsim_simulator.dir/sdnsim/simulator_test.cpp.o.d"
  "test_sdnsim_simulator"
  "test_sdnsim_simulator.pdb"
  "test_sdnsim_simulator[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sdnsim_simulator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
