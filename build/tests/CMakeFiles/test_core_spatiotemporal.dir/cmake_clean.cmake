file(REMOVE_RECURSE
  "CMakeFiles/test_core_spatiotemporal.dir/core/spatiotemporal_model_test.cpp.o"
  "CMakeFiles/test_core_spatiotemporal.dir/core/spatiotemporal_model_test.cpp.o.d"
  "test_core_spatiotemporal"
  "test_core_spatiotemporal.pdb"
  "test_core_spatiotemporal[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_spatiotemporal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
