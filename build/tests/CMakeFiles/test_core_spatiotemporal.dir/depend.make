# Empty dependencies file for test_core_spatiotemporal.
# This may be replaced when dependencies are built.
