# Empty dependencies file for test_sdnsim_policy.
# This may be replaced when dependencies are built.
