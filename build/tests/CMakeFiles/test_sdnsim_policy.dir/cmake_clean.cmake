file(REMOVE_RECURSE
  "CMakeFiles/test_sdnsim_policy.dir/sdnsim/policy_test.cpp.o"
  "CMakeFiles/test_sdnsim_policy.dir/sdnsim/policy_test.cpp.o.d"
  "test_sdnsim_policy"
  "test_sdnsim_policy.pdb"
  "test_sdnsim_policy[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sdnsim_policy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
