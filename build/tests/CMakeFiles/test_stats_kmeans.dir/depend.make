# Empty dependencies file for test_stats_kmeans.
# This may be replaced when dependencies are built.
