file(REMOVE_RECURSE
  "CMakeFiles/test_stats_distribution.dir/stats/distribution_test.cpp.o"
  "CMakeFiles/test_stats_distribution.dir/stats/distribution_test.cpp.o.d"
  "test_stats_distribution"
  "test_stats_distribution.pdb"
  "test_stats_distribution[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_stats_distribution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
