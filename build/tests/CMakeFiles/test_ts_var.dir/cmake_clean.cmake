file(REMOVE_RECURSE
  "CMakeFiles/test_ts_var.dir/ts/var_test.cpp.o"
  "CMakeFiles/test_ts_var.dir/ts/var_test.cpp.o.d"
  "test_ts_var"
  "test_ts_var.pdb"
  "test_ts_var[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ts_var.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
