# Empty compiler generated dependencies file for test_ts_var.
# This may be replaced when dependencies are built.
