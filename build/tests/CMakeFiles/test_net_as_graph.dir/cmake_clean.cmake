file(REMOVE_RECURSE
  "CMakeFiles/test_net_as_graph.dir/net/as_graph_test.cpp.o"
  "CMakeFiles/test_net_as_graph.dir/net/as_graph_test.cpp.o.d"
  "test_net_as_graph"
  "test_net_as_graph.pdb"
  "test_net_as_graph[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_net_as_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
