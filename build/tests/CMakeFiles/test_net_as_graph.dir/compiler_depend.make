# Empty compiler generated dependencies file for test_net_as_graph.
# This may be replaced when dependencies are built.
