file(REMOVE_RECURSE
  "CMakeFiles/test_stats_split.dir/stats/split_test.cpp.o"
  "CMakeFiles/test_stats_split.dir/stats/split_test.cpp.o.d"
  "test_stats_split"
  "test_stats_split.pdb"
  "test_stats_split[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_stats_split.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
