# Empty compiler generated dependencies file for test_stats_split.
# This may be replaced when dependencies are built.
