# Empty dependencies file for test_stats_metrics.
# This may be replaced when dependencies are built.
