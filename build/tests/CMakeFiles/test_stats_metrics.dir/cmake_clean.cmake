file(REMOVE_RECURSE
  "CMakeFiles/test_stats_metrics.dir/stats/metrics_test.cpp.o"
  "CMakeFiles/test_stats_metrics.dir/stats/metrics_test.cpp.o.d"
  "test_stats_metrics"
  "test_stats_metrics.pdb"
  "test_stats_metrics[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_stats_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
