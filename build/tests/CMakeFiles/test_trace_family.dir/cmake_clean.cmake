file(REMOVE_RECURSE
  "CMakeFiles/test_trace_family.dir/trace/family_test.cpp.o"
  "CMakeFiles/test_trace_family.dir/trace/family_test.cpp.o.d"
  "test_trace_family"
  "test_trace_family.pdb"
  "test_trace_family[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_trace_family.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
