# Empty dependencies file for test_core_temporal.
# This may be replaced when dependencies are built.
