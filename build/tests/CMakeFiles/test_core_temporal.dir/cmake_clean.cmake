file(REMOVE_RECURSE
  "CMakeFiles/test_core_temporal.dir/core/temporal_model_test.cpp.o"
  "CMakeFiles/test_core_temporal.dir/core/temporal_model_test.cpp.o.d"
  "test_core_temporal"
  "test_core_temporal.pdb"
  "test_core_temporal[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_temporal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
