# Empty dependencies file for test_core_detection.
# This may be replaced when dependencies are built.
