file(REMOVE_RECURSE
  "CMakeFiles/test_core_detection.dir/core/detection_test.cpp.o"
  "CMakeFiles/test_core_detection.dir/core/detection_test.cpp.o.d"
  "test_core_detection"
  "test_core_detection.pdb"
  "test_core_detection[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_detection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
