# Empty compiler generated dependencies file for test_trace_botnet.
# This may be replaced when dependencies are built.
