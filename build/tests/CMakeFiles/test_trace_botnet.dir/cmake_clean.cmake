file(REMOVE_RECURSE
  "CMakeFiles/test_trace_botnet.dir/trace/botnet_test.cpp.o"
  "CMakeFiles/test_trace_botnet.dir/trace/botnet_test.cpp.o.d"
  "test_trace_botnet"
  "test_trace_botnet.pdb"
  "test_trace_botnet[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_trace_botnet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
