file(REMOVE_RECURSE
  "CMakeFiles/test_ts_arma.dir/ts/arma_test.cpp.o"
  "CMakeFiles/test_ts_arma.dir/ts/arma_test.cpp.o.d"
  "test_ts_arma"
  "test_ts_arma.pdb"
  "test_ts_arma[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ts_arma.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
