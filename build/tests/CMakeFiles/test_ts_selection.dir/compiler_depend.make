# Empty compiler generated dependencies file for test_ts_selection.
# This may be replaced when dependencies are built.
