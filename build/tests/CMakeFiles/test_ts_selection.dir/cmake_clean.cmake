file(REMOVE_RECURSE
  "CMakeFiles/test_ts_selection.dir/ts/selection_test.cpp.o"
  "CMakeFiles/test_ts_selection.dir/ts/selection_test.cpp.o.d"
  "test_ts_selection"
  "test_ts_selection.pdb"
  "test_ts_selection[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ts_selection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
