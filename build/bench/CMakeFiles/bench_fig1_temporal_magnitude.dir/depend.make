# Empty dependencies file for bench_fig1_temporal_magnitude.
# This may be replaced when dependencies are built.
