# Empty dependencies file for bench_table1_activity.
# This may be replaced when dependencies are built.
