file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_activity.dir/bench_table1_activity.cpp.o"
  "CMakeFiles/bench_table1_activity.dir/bench_table1_activity.cpp.o.d"
  "bench_table1_activity"
  "bench_table1_activity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_activity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
