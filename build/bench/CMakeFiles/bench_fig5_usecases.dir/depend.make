# Empty dependencies file for bench_fig5_usecases.
# This may be replaced when dependencies are built.
