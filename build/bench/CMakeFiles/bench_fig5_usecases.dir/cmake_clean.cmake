file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_usecases.dir/bench_fig5_usecases.cpp.o"
  "CMakeFiles/bench_fig5_usecases.dir/bench_fig5_usecases.cpp.o.d"
  "bench_fig5_usecases"
  "bench_fig5_usecases.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_usecases.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
