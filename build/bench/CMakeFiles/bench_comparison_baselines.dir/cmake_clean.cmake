file(REMOVE_RECURSE
  "CMakeFiles/bench_comparison_baselines.dir/bench_comparison_baselines.cpp.o"
  "CMakeFiles/bench_comparison_baselines.dir/bench_comparison_baselines.cpp.o.d"
  "bench_comparison_baselines"
  "bench_comparison_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_comparison_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
