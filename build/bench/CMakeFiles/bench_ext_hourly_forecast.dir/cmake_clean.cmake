file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_hourly_forecast.dir/bench_ext_hourly_forecast.cpp.o"
  "CMakeFiles/bench_ext_hourly_forecast.dir/bench_ext_hourly_forecast.cpp.o.d"
  "bench_ext_hourly_forecast"
  "bench_ext_hourly_forecast.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_hourly_forecast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
