file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_attribution.dir/bench_ext_attribution.cpp.o"
  "CMakeFiles/bench_ext_attribution.dir/bench_ext_attribution.cpp.o.d"
  "bench_ext_attribution"
  "bench_ext_attribution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_attribution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
