# Empty compiler generated dependencies file for bench_perf_models.
# This may be replaced when dependencies are built.
