file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_spatial_sources.dir/bench_fig2_spatial_sources.cpp.o"
  "CMakeFiles/bench_fig2_spatial_sources.dir/bench_fig2_spatial_sources.cpp.o.d"
  "bench_fig2_spatial_sources"
  "bench_fig2_spatial_sources.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_spatial_sources.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
