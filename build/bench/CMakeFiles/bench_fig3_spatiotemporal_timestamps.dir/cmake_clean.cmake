file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_spatiotemporal_timestamps.dir/bench_fig3_spatiotemporal_timestamps.cpp.o"
  "CMakeFiles/bench_fig3_spatiotemporal_timestamps.dir/bench_fig3_spatiotemporal_timestamps.cpp.o.d"
  "bench_fig3_spatiotemporal_timestamps"
  "bench_fig3_spatiotemporal_timestamps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_spatiotemporal_timestamps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
