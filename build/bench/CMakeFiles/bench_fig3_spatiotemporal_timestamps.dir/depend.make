# Empty dependencies file for bench_fig3_spatiotemporal_timestamps.
# This may be replaced when dependencies are built.
