# Empty dependencies file for bench_fig4_error_distributions.
# This may be replaced when dependencies are built.
