file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_error_distributions.dir/bench_fig4_error_distributions.cpp.o"
  "CMakeFiles/bench_fig4_error_distributions.dir/bench_fig4_error_distributions.cpp.o.d"
  "bench_fig4_error_distributions"
  "bench_fig4_error_distributions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_error_distributions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
