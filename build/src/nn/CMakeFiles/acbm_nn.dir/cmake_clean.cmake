file(REMOVE_RECURSE
  "CMakeFiles/acbm_nn.dir/grid_search.cpp.o"
  "CMakeFiles/acbm_nn.dir/grid_search.cpp.o.d"
  "CMakeFiles/acbm_nn.dir/mlp.cpp.o"
  "CMakeFiles/acbm_nn.dir/mlp.cpp.o.d"
  "CMakeFiles/acbm_nn.dir/nar.cpp.o"
  "CMakeFiles/acbm_nn.dir/nar.cpp.o.d"
  "libacbm_nn.a"
  "libacbm_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/acbm_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
