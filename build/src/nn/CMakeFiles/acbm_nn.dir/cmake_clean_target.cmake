file(REMOVE_RECURSE
  "libacbm_nn.a"
)
