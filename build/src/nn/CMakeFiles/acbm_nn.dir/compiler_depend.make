# Empty compiler generated dependencies file for acbm_nn.
# This may be replaced when dependencies are built.
