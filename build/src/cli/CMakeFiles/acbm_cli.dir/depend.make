# Empty dependencies file for acbm_cli.
# This may be replaced when dependencies are built.
