file(REMOVE_RECURSE
  "libacbm_cli.a"
)
