file(REMOVE_RECURSE
  "CMakeFiles/acbm_cli.dir/cli.cpp.o"
  "CMakeFiles/acbm_cli.dir/cli.cpp.o.d"
  "libacbm_cli.a"
  "libacbm_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/acbm_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
