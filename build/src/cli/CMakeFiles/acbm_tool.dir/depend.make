# Empty dependencies file for acbm_tool.
# This may be replaced when dependencies are built.
