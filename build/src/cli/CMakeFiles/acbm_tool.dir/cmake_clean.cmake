file(REMOVE_RECURSE
  "CMakeFiles/acbm_tool.dir/main.cpp.o"
  "CMakeFiles/acbm_tool.dir/main.cpp.o.d"
  "acbm"
  "acbm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/acbm_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
