file(REMOVE_RECURSE
  "CMakeFiles/acbm_ts.dir/ar.cpp.o"
  "CMakeFiles/acbm_ts.dir/ar.cpp.o.d"
  "CMakeFiles/acbm_ts.dir/arima.cpp.o"
  "CMakeFiles/acbm_ts.dir/arima.cpp.o.d"
  "CMakeFiles/acbm_ts.dir/arma.cpp.o"
  "CMakeFiles/acbm_ts.dir/arma.cpp.o.d"
  "CMakeFiles/acbm_ts.dir/diagnostics.cpp.o"
  "CMakeFiles/acbm_ts.dir/diagnostics.cpp.o.d"
  "CMakeFiles/acbm_ts.dir/differencing.cpp.o"
  "CMakeFiles/acbm_ts.dir/differencing.cpp.o.d"
  "CMakeFiles/acbm_ts.dir/pacf.cpp.o"
  "CMakeFiles/acbm_ts.dir/pacf.cpp.o.d"
  "CMakeFiles/acbm_ts.dir/seasonal.cpp.o"
  "CMakeFiles/acbm_ts.dir/seasonal.cpp.o.d"
  "CMakeFiles/acbm_ts.dir/selection.cpp.o"
  "CMakeFiles/acbm_ts.dir/selection.cpp.o.d"
  "CMakeFiles/acbm_ts.dir/var.cpp.o"
  "CMakeFiles/acbm_ts.dir/var.cpp.o.d"
  "libacbm_ts.a"
  "libacbm_ts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/acbm_ts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
