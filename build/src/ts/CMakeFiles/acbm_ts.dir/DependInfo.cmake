
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ts/ar.cpp" "src/ts/CMakeFiles/acbm_ts.dir/ar.cpp.o" "gcc" "src/ts/CMakeFiles/acbm_ts.dir/ar.cpp.o.d"
  "/root/repo/src/ts/arima.cpp" "src/ts/CMakeFiles/acbm_ts.dir/arima.cpp.o" "gcc" "src/ts/CMakeFiles/acbm_ts.dir/arima.cpp.o.d"
  "/root/repo/src/ts/arma.cpp" "src/ts/CMakeFiles/acbm_ts.dir/arma.cpp.o" "gcc" "src/ts/CMakeFiles/acbm_ts.dir/arma.cpp.o.d"
  "/root/repo/src/ts/diagnostics.cpp" "src/ts/CMakeFiles/acbm_ts.dir/diagnostics.cpp.o" "gcc" "src/ts/CMakeFiles/acbm_ts.dir/diagnostics.cpp.o.d"
  "/root/repo/src/ts/differencing.cpp" "src/ts/CMakeFiles/acbm_ts.dir/differencing.cpp.o" "gcc" "src/ts/CMakeFiles/acbm_ts.dir/differencing.cpp.o.d"
  "/root/repo/src/ts/pacf.cpp" "src/ts/CMakeFiles/acbm_ts.dir/pacf.cpp.o" "gcc" "src/ts/CMakeFiles/acbm_ts.dir/pacf.cpp.o.d"
  "/root/repo/src/ts/seasonal.cpp" "src/ts/CMakeFiles/acbm_ts.dir/seasonal.cpp.o" "gcc" "src/ts/CMakeFiles/acbm_ts.dir/seasonal.cpp.o.d"
  "/root/repo/src/ts/selection.cpp" "src/ts/CMakeFiles/acbm_ts.dir/selection.cpp.o" "gcc" "src/ts/CMakeFiles/acbm_ts.dir/selection.cpp.o.d"
  "/root/repo/src/ts/var.cpp" "src/ts/CMakeFiles/acbm_ts.dir/var.cpp.o" "gcc" "src/ts/CMakeFiles/acbm_ts.dir/var.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/stats/CMakeFiles/acbm_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
