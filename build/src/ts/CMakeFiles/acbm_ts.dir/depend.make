# Empty dependencies file for acbm_ts.
# This may be replaced when dependencies are built.
