file(REMOVE_RECURSE
  "libacbm_ts.a"
)
