file(REMOVE_RECURSE
  "libacbm_sdnsim.a"
)
