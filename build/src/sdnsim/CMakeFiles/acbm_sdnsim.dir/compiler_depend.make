# Empty compiler generated dependencies file for acbm_sdnsim.
# This may be replaced when dependencies are built.
