file(REMOVE_RECURSE
  "CMakeFiles/acbm_sdnsim.dir/middlebox.cpp.o"
  "CMakeFiles/acbm_sdnsim.dir/middlebox.cpp.o.d"
  "CMakeFiles/acbm_sdnsim.dir/policy.cpp.o"
  "CMakeFiles/acbm_sdnsim.dir/policy.cpp.o.d"
  "CMakeFiles/acbm_sdnsim.dir/simulator.cpp.o"
  "CMakeFiles/acbm_sdnsim.dir/simulator.cpp.o.d"
  "CMakeFiles/acbm_sdnsim.dir/traffic.cpp.o"
  "CMakeFiles/acbm_sdnsim.dir/traffic.cpp.o.d"
  "libacbm_sdnsim.a"
  "libacbm_sdnsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/acbm_sdnsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
