file(REMOVE_RECURSE
  "CMakeFiles/acbm_stats.dir/descriptive.cpp.o"
  "CMakeFiles/acbm_stats.dir/descriptive.cpp.o.d"
  "CMakeFiles/acbm_stats.dir/distribution.cpp.o"
  "CMakeFiles/acbm_stats.dir/distribution.cpp.o.d"
  "CMakeFiles/acbm_stats.dir/kmeans.cpp.o"
  "CMakeFiles/acbm_stats.dir/kmeans.cpp.o.d"
  "CMakeFiles/acbm_stats.dir/matrix.cpp.o"
  "CMakeFiles/acbm_stats.dir/matrix.cpp.o.d"
  "CMakeFiles/acbm_stats.dir/metrics.cpp.o"
  "CMakeFiles/acbm_stats.dir/metrics.cpp.o.d"
  "CMakeFiles/acbm_stats.dir/ols.cpp.o"
  "CMakeFiles/acbm_stats.dir/ols.cpp.o.d"
  "CMakeFiles/acbm_stats.dir/rng.cpp.o"
  "CMakeFiles/acbm_stats.dir/rng.cpp.o.d"
  "CMakeFiles/acbm_stats.dir/silhouette.cpp.o"
  "CMakeFiles/acbm_stats.dir/silhouette.cpp.o.d"
  "CMakeFiles/acbm_stats.dir/split.cpp.o"
  "CMakeFiles/acbm_stats.dir/split.cpp.o.d"
  "libacbm_stats.a"
  "libacbm_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/acbm_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
