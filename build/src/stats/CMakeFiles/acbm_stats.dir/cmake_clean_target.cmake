file(REMOVE_RECURSE
  "libacbm_stats.a"
)
