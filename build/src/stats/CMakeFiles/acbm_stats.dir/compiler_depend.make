# Empty compiler generated dependencies file for acbm_stats.
# This may be replaced when dependencies are built.
