file(REMOVE_RECURSE
  "CMakeFiles/acbm_tree.dir/cart.cpp.o"
  "CMakeFiles/acbm_tree.dir/cart.cpp.o.d"
  "CMakeFiles/acbm_tree.dir/model_tree.cpp.o"
  "CMakeFiles/acbm_tree.dir/model_tree.cpp.o.d"
  "libacbm_tree.a"
  "libacbm_tree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/acbm_tree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
