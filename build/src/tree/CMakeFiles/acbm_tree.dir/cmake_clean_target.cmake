file(REMOVE_RECURSE
  "libacbm_tree.a"
)
