# Empty dependencies file for acbm_tree.
# This may be replaced when dependencies are built.
