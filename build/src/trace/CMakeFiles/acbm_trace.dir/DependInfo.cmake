
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/trace/botnet.cpp" "src/trace/CMakeFiles/acbm_trace.dir/botnet.cpp.o" "gcc" "src/trace/CMakeFiles/acbm_trace.dir/botnet.cpp.o.d"
  "/root/repo/src/trace/dataset.cpp" "src/trace/CMakeFiles/acbm_trace.dir/dataset.cpp.o" "gcc" "src/trace/CMakeFiles/acbm_trace.dir/dataset.cpp.o.d"
  "/root/repo/src/trace/family.cpp" "src/trace/CMakeFiles/acbm_trace.dir/family.cpp.o" "gcc" "src/trace/CMakeFiles/acbm_trace.dir/family.cpp.o.d"
  "/root/repo/src/trace/generator.cpp" "src/trace/CMakeFiles/acbm_trace.dir/generator.cpp.o" "gcc" "src/trace/CMakeFiles/acbm_trace.dir/generator.cpp.o.d"
  "/root/repo/src/trace/world.cpp" "src/trace/CMakeFiles/acbm_trace.dir/world.cpp.o" "gcc" "src/trace/CMakeFiles/acbm_trace.dir/world.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/stats/CMakeFiles/acbm_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/acbm_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
