file(REMOVE_RECURSE
  "libacbm_trace.a"
)
