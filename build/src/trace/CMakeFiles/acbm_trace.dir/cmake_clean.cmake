file(REMOVE_RECURSE
  "CMakeFiles/acbm_trace.dir/botnet.cpp.o"
  "CMakeFiles/acbm_trace.dir/botnet.cpp.o.d"
  "CMakeFiles/acbm_trace.dir/dataset.cpp.o"
  "CMakeFiles/acbm_trace.dir/dataset.cpp.o.d"
  "CMakeFiles/acbm_trace.dir/family.cpp.o"
  "CMakeFiles/acbm_trace.dir/family.cpp.o.d"
  "CMakeFiles/acbm_trace.dir/generator.cpp.o"
  "CMakeFiles/acbm_trace.dir/generator.cpp.o.d"
  "CMakeFiles/acbm_trace.dir/world.cpp.o"
  "CMakeFiles/acbm_trace.dir/world.cpp.o.d"
  "libacbm_trace.a"
  "libacbm_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/acbm_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
