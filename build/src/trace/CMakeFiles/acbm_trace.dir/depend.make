# Empty dependencies file for acbm_trace.
# This may be replaced when dependencies are built.
