file(REMOVE_RECURSE
  "libacbm_net.a"
)
