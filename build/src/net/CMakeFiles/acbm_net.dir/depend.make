# Empty dependencies file for acbm_net.
# This may be replaced when dependencies are built.
