
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/as_graph.cpp" "src/net/CMakeFiles/acbm_net.dir/as_graph.cpp.o" "gcc" "src/net/CMakeFiles/acbm_net.dir/as_graph.cpp.o.d"
  "/root/repo/src/net/gao.cpp" "src/net/CMakeFiles/acbm_net.dir/gao.cpp.o" "gcc" "src/net/CMakeFiles/acbm_net.dir/gao.cpp.o.d"
  "/root/repo/src/net/ip_space.cpp" "src/net/CMakeFiles/acbm_net.dir/ip_space.cpp.o" "gcc" "src/net/CMakeFiles/acbm_net.dir/ip_space.cpp.o.d"
  "/root/repo/src/net/ipv4.cpp" "src/net/CMakeFiles/acbm_net.dir/ipv4.cpp.o" "gcc" "src/net/CMakeFiles/acbm_net.dir/ipv4.cpp.o.d"
  "/root/repo/src/net/routing.cpp" "src/net/CMakeFiles/acbm_net.dir/routing.cpp.o" "gcc" "src/net/CMakeFiles/acbm_net.dir/routing.cpp.o.d"
  "/root/repo/src/net/topology.cpp" "src/net/CMakeFiles/acbm_net.dir/topology.cpp.o" "gcc" "src/net/CMakeFiles/acbm_net.dir/topology.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/stats/CMakeFiles/acbm_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
