file(REMOVE_RECURSE
  "CMakeFiles/acbm_net.dir/as_graph.cpp.o"
  "CMakeFiles/acbm_net.dir/as_graph.cpp.o.d"
  "CMakeFiles/acbm_net.dir/gao.cpp.o"
  "CMakeFiles/acbm_net.dir/gao.cpp.o.d"
  "CMakeFiles/acbm_net.dir/ip_space.cpp.o"
  "CMakeFiles/acbm_net.dir/ip_space.cpp.o.d"
  "CMakeFiles/acbm_net.dir/ipv4.cpp.o"
  "CMakeFiles/acbm_net.dir/ipv4.cpp.o.d"
  "CMakeFiles/acbm_net.dir/routing.cpp.o"
  "CMakeFiles/acbm_net.dir/routing.cpp.o.d"
  "CMakeFiles/acbm_net.dir/topology.cpp.o"
  "CMakeFiles/acbm_net.dir/topology.cpp.o.d"
  "libacbm_net.a"
  "libacbm_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/acbm_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
