
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/baselines.cpp" "src/core/CMakeFiles/acbm_core.dir/baselines.cpp.o" "gcc" "src/core/CMakeFiles/acbm_core.dir/baselines.cpp.o.d"
  "/root/repo/src/core/detection.cpp" "src/core/CMakeFiles/acbm_core.dir/detection.cpp.o" "gcc" "src/core/CMakeFiles/acbm_core.dir/detection.cpp.o.d"
  "/root/repo/src/core/evaluation.cpp" "src/core/CMakeFiles/acbm_core.dir/evaluation.cpp.o" "gcc" "src/core/CMakeFiles/acbm_core.dir/evaluation.cpp.o.d"
  "/root/repo/src/core/features.cpp" "src/core/CMakeFiles/acbm_core.dir/features.cpp.o" "gcc" "src/core/CMakeFiles/acbm_core.dir/features.cpp.o.d"
  "/root/repo/src/core/pipeline.cpp" "src/core/CMakeFiles/acbm_core.dir/pipeline.cpp.o" "gcc" "src/core/CMakeFiles/acbm_core.dir/pipeline.cpp.o.d"
  "/root/repo/src/core/spatial_model.cpp" "src/core/CMakeFiles/acbm_core.dir/spatial_model.cpp.o" "gcc" "src/core/CMakeFiles/acbm_core.dir/spatial_model.cpp.o.d"
  "/root/repo/src/core/spatiotemporal_model.cpp" "src/core/CMakeFiles/acbm_core.dir/spatiotemporal_model.cpp.o" "gcc" "src/core/CMakeFiles/acbm_core.dir/spatiotemporal_model.cpp.o.d"
  "/root/repo/src/core/temporal_model.cpp" "src/core/CMakeFiles/acbm_core.dir/temporal_model.cpp.o" "gcc" "src/core/CMakeFiles/acbm_core.dir/temporal_model.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/stats/CMakeFiles/acbm_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/ts/CMakeFiles/acbm_ts.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/acbm_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/tree/CMakeFiles/acbm_tree.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/acbm_net.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/acbm_trace.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
