file(REMOVE_RECURSE
  "libacbm_core.a"
)
