# Empty dependencies file for acbm_core.
# This may be replaced when dependencies are built.
