file(REMOVE_RECURSE
  "CMakeFiles/acbm_core.dir/baselines.cpp.o"
  "CMakeFiles/acbm_core.dir/baselines.cpp.o.d"
  "CMakeFiles/acbm_core.dir/detection.cpp.o"
  "CMakeFiles/acbm_core.dir/detection.cpp.o.d"
  "CMakeFiles/acbm_core.dir/evaluation.cpp.o"
  "CMakeFiles/acbm_core.dir/evaluation.cpp.o.d"
  "CMakeFiles/acbm_core.dir/features.cpp.o"
  "CMakeFiles/acbm_core.dir/features.cpp.o.d"
  "CMakeFiles/acbm_core.dir/pipeline.cpp.o"
  "CMakeFiles/acbm_core.dir/pipeline.cpp.o.d"
  "CMakeFiles/acbm_core.dir/spatial_model.cpp.o"
  "CMakeFiles/acbm_core.dir/spatial_model.cpp.o.d"
  "CMakeFiles/acbm_core.dir/spatiotemporal_model.cpp.o"
  "CMakeFiles/acbm_core.dir/spatiotemporal_model.cpp.o.d"
  "CMakeFiles/acbm_core.dir/temporal_model.cpp.o"
  "CMakeFiles/acbm_core.dir/temporal_model.cpp.o.d"
  "libacbm_core.a"
  "libacbm_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/acbm_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
